//! Workspace umbrella crate; see individual datalens-* crates.

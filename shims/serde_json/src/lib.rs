//! Offline shim for `serde_json`, backed by the serde shim's
//! `JsonValue` model: `to_string`/`to_string_pretty`/`to_vec`,
//! `from_str`/`from_slice`/`from_value`/`to_value`, the [`json!`] macro,
//! and the [`Value`] alias.

use serde::de::DeserializeOwned;
use serde::Serialize;

pub use serde::JsonValue as Value;

/// serde_json-compatible error type.
#[derive(Debug)]
pub struct Error(serde::Error);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_json_value()
}

pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T> {
    T::from_json_value(value).map_err(Error)
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(serde::to_compact_string(&value.to_json_value()))
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    Ok(serde::to_pretty_string(&value.to_json_value()))
}

pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let v = serde::parse_json(text)?;
    T::from_json_value(&v).map_err(Error)
}

pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| Error(serde::Error::new(format!("invalid UTF-8: {e}"))))?;
    from_str(text)
}

/// Build a [`Value`] from a JSON-ish literal. Keys must be string
/// literals; values may be JSON literals, nested objects/arrays, or
/// arbitrary serialisable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_internal!(@array [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_internal!(@object [] $($tt)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // Arrays: collect comma-separated value tts.
    (@array [$($done:expr),*]) => { $crate::Value::Arr(vec![$($done),*]) };
    (@array [$($done:expr),*] $val:tt) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!($val)])
    };
    (@array [$($done:expr),*] $val:tt , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!($val)] $($rest)*)
    };

    // Objects: `"key": value` pairs; the value is re-munched token by
    // token until the next top-level comma so it may be an arbitrary
    // expression or nested json literal.
    (@object [$($done:expr),*]) => { $crate::Value::Obj(vec![$($done),*]) };
    (@object [$($done:expr),*] $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@value [$($done),*] $key () $($rest)*)
    };
    // Value munching: accumulate tokens into the paren group.
    (@value [$($done:expr),*] $key:literal ($($val:tt)+)) => {
        $crate::json_internal!(@object [$($done,)* (String::from($key), $crate::json!($($val)+))])
    };
    (@value [$($done:expr),*] $key:literal ($($val:tt)+) , $($rest:tt)*) => {
        $crate::json_internal!(@object [$($done,)* (String::from($key), $crate::json!($($val)+))] $($rest)*)
    };
    (@value [$($done:expr),*] $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@value [$($done),*] $key ($($val)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({"pong": true});
        assert_eq!(v["pong"], true);
        let msg = "no such tool";
        let v = json!({ "error": msg });
        assert_eq!(v["error"], "no such tool");
        let opt: Option<&String> = None;
        let v = json!({"q": opt, "n": 1 + 4, "nested": {"a": [1, 2, 3]}, "lit": "x"});
        assert!(v["q"].is_null());
        assert_eq!(v["n"], 5);
        assert_eq!(v["nested"]["a"][2], 3);
        assert_eq!(v["lit"], "x");
        let v = json!([1, "two", null, {"k": false}]);
        assert_eq!(v[1], "two");
        assert_eq!(v[3]["k"], false);
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(7), Value::I64(7));
    }

    #[test]
    fn string_round_trip() {
        let v = json!({"a": [1.5, true], "b": "x"});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let bytes = to_vec(&v).unwrap();
        let back: Value = from_slice(&bytes).unwrap();
        assert_eq!(back, v);
        assert!(from_str::<Value>("{oops").is_err());
    }

    #[test]
    fn pretty_contains_spaced_colon() {
        let v = json!({"dataset_name": "nasa"});
        assert!(to_string_pretty(&v)
            .unwrap()
            .contains("\"dataset_name\": \"nasa\""));
    }
}

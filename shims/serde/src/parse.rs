//! A small recursive-descent JSON parser for the shim value model.

use crate::{Error, JsonValue};

const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                // Multi-byte UTF-8: copy the full sequence through.
                c if c >= 0x80 => {
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                c => out.push(c as char),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::U64(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_documents() {
        let v =
            parse_json(r#"{"a": [1, -2.5, "x\n", null, true], "b": {"c": 18446744073709551615}}"#)
                .unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2.5);
        assert_eq!(v["a"][2], "x\n");
        assert!(v["a"][3].is_null());
        assert_eq!(v["a"][4], true);
        assert_eq!(v["b"]["c"], u64::MAX);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "{oops",
            "",
            "[1,",
            "{\"a\":}",
            "nul",
            "\"abc",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse_json(r#""é""#).unwrap(), "é");
        assert_eq!(parse_json(r#""😀""#).unwrap(), "😀");
        assert_eq!(parse_json("\"héllo\"").unwrap(), "héllo");
    }
}

//! Offline shim for `serde`: the workspace cannot fetch crates, so this
//! crate provides the `Serialize`/`Deserialize` trait surface the code
//! uses, backed by a concrete JSON value model ([`JsonValue`]) instead of
//! serde's generic data model. The companion `serde_derive` shim generates
//! impls of these traits, and the `serde_json` shim prints/parses the
//! value model.
//!
//! Supported serde attributes: `#[serde(default)]` on fields and
//! `#[serde(rename_all = "camelCase")]` on containers — exactly what this
//! workspace uses.

mod impls;
mod parse;
mod print;
mod value;

pub use parse::parse_json;
pub use print::{to_compact_string, to_pretty_string};
pub use serde_derive::{Deserialize, Serialize};
pub use value::JsonValue;

/// Shared (de)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the JSON value model (the shim's `serde::Serialize`).
pub trait Serialize {
    fn to_json_value(&self) -> JsonValue;
}

/// Conversion from the JSON value model (the shim's `serde::Deserialize`).
pub trait Deserialize: Sized {
    fn from_json_value(v: &JsonValue) -> Result<Self, Error>;

    /// Value to use when a field is absent from the input object.
    /// `None` means "absence is an error" (serde's default); `Option<T>`
    /// overrides this to `Some(None)`, replicating serde's implicit
    /// defaulting of `Option` fields.
    fn missing_field() -> Option<Self> {
        None
    }

    /// Parse from a JSON object *key*. Non-string keys are encoded as
    /// compact JSON inside the key string (like serde_json does for
    /// integer keys); `String` overrides this to the identity.
    fn from_json_key(key: &str) -> Result<Self, Error> {
        Self::from_json_value(&parse_json(key)?)
    }
}

pub mod de {
    //! `serde::de` compatibility: the `DeserializeOwned` bound alias.
    pub use crate::Error;

    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! `serde::ser` compatibility.
    pub use crate::Error;
}

// ---------------------------------------------------------------------
// Helpers called by `serde_derive`-generated code. Not public API.
// ---------------------------------------------------------------------

#[doc(hidden)]
pub fn __obj<'a>(v: &'a JsonValue, ty: &str) -> Result<&'a [(String, JsonValue)], Error> {
    match v {
        JsonValue::Obj(fields) => Ok(fields),
        other => Err(Error::new(format!(
            "expected object for `{ty}`, found {}",
            other.kind_name()
        ))),
    }
}

#[doc(hidden)]
pub fn __get<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[doc(hidden)]
pub fn __field<T: Deserialize>(
    fields: &[(String, JsonValue)],
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    match __get(fields, key) {
        Some(v) => {
            T::from_json_value(v).map_err(|e| Error::new(format!("field `{key}` of `{ty}`: {e}")))
        }
        None => {
            T::missing_field().ok_or_else(|| Error::new(format!("missing field `{key}` of `{ty}`")))
        }
    }
}

#[doc(hidden)]
pub fn __field_default<T: Deserialize + Default>(
    fields: &[(String, JsonValue)],
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    match __get(fields, key) {
        Some(v) => {
            T::from_json_value(v).map_err(|e| Error::new(format!("field `{key}` of `{ty}`: {e}")))
        }
        None => Ok(T::default()),
    }
}

/// Encode a map key: strings pass through, everything else becomes
/// compact JSON (mirrors `from_json_key`).
#[doc(hidden)]
pub fn __key_string(v: &JsonValue) -> String {
    match v {
        JsonValue::Str(s) => s.clone(),
        other => to_compact_string(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_helpers() {
        let fields = vec![
            ("a".to_string(), JsonValue::I64(3)),
            ("b".to_string(), JsonValue::Null),
        ];
        let a: i64 = __field(&fields, "a", "T").unwrap();
        assert_eq!(a, 3);
        let missing: Result<i64, _> = __field(&fields, "zz", "T");
        assert!(missing.unwrap_err().to_string().contains("missing field"));
        let opt: Option<i64> = __field(&fields, "zz", "T").unwrap();
        assert_eq!(opt, None);
        let dflt: Vec<i64> = __field_default(&fields, "zz", "T").unwrap();
        assert!(dflt.is_empty());
    }
}

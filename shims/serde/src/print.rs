//! Compact and pretty JSON printers (serde_json-compatible formatting:
//! 2-space pretty indent, floats always with a decimal point or exponent,
//! non-finite floats printed as `null`).

use crate::JsonValue;

pub fn to_compact_string(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

pub fn to_pretty_string(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &JsonValue, indent: Option<usize>, level: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::I64(n) => out.push_str(&n.to_string()),
        JsonValue::U64(n) => out.push_str(&n.to_string()),
        JsonValue::F64(n) => write_f64(out, *n),
        JsonValue::Str(s) => write_string(out, s),
        JsonValue::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        // serde_json cannot represent NaN/Inf; emit null like its
        // `Value` printer does for arbitrary-precision fallbacks.
        out.push_str("null");
        return;
    }
    let s = format!("{n}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_json;

    #[test]
    fn compact_round_trip() {
        let v = parse_json(r#"{"a":[1,2.5,"x\n"],"b":null,"c":-3}"#).unwrap();
        let printed = to_compact_string(&v);
        assert_eq!(parse_json(&printed).unwrap(), v);
        assert_eq!(printed, r#"{"a":[1,2.5,"x\n"],"b":null,"c":-3}"#);
    }

    #[test]
    fn pretty_formatting() {
        let v = parse_json(r#"{"name":"nasa","xs":[1]}"#).unwrap();
        let pretty = to_pretty_string(&v);
        assert!(pretty.contains("\"name\": \"nasa\""), "{pretty}");
        assert!(pretty.starts_with("{\n  "), "{pretty}");
        assert_eq!(parse_json(&pretty).unwrap(), v);
    }

    #[test]
    fn float_always_floats() {
        assert_eq!(to_compact_string(&JsonValue::F64(1.0)), "1.0");
        assert_eq!(to_compact_string(&JsonValue::F64(f64::NAN)), "null");
        let back = parse_json("1.0").unwrap();
        assert!(matches!(back, JsonValue::F64(_)));
    }
}

//! The JSON value model shared by the serde/serde_json shims.

use crate::{Deserialize, Error, Serialize};

/// A JSON document. Objects preserve insertion order (which, for derived
//  structs, is field-declaration order — matching serde_json's output).
#[derive(Debug, Clone, Default)]
pub enum JsonValue {
    #[default]
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

static NULL: JsonValue = JsonValue::Null;

impl JsonValue {
    pub fn kind_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::I64(_) | JsonValue::U64(_) | JsonValue::F64(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::I64(n) => Some(*n),
            JsonValue::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::I64(n) => u64::try_from(*n).ok(),
            JsonValue::U64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::I64(n) => Some(*n as f64),
            JsonValue::U64(n) => Some(*n as f64),
            JsonValue::F64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn is_number(&self) -> bool {
        matches!(
            self,
            JsonValue::I64(_) | JsonValue::U64(_) | JsonValue::F64(_)
        )
    }

    fn num_eq(&self, other: &JsonValue) -> bool {
        use JsonValue::*;
        match (self, other) {
            (I64(a), I64(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (I64(a), U64(b)) | (U64(b), I64(a)) => {
                u64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            (F64(a), F64(b)) => a == b,
            (F64(f), I64(i)) | (I64(i), F64(f)) => *f == *i as f64,
            (F64(f), U64(u)) | (U64(u), F64(f)) => *f == *u as f64,
            _ => false,
        }
    }
}

impl PartialEq for JsonValue {
    fn eq(&self, other: &JsonValue) -> bool {
        use JsonValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Arr(a), Arr(b)) => a == b,
            (Obj(a), Obj(b)) => a == b,
            (a, b) if a.is_number() && b.is_number() => a.num_eq(b),
            _ => false,
        }
    }
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::to_compact_string(self))
    }
}

impl std::ops::Index<&str> for JsonValue {
    type Output = JsonValue;
    fn index(&self, key: &str) -> &JsonValue {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for JsonValue {
    type Output = JsonValue;
    fn index(&self, idx: usize) -> &JsonValue {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! eq_via {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl PartialEq<$t> for JsonValue {
            #[allow(clippy::redundant_closure_call)]
            fn eq(&self, other: &$t) -> bool {
                self == &(($conv)(other.clone()))
            }
        }
        impl PartialEq<JsonValue> for $t {
            fn eq(&self, other: &JsonValue) -> bool {
                other == self
            }
        }
    )*};
}

eq_via! {
    bool => JsonValue::Bool,
    i32 => |v: i32| JsonValue::I64(v as i64),
    i64 => JsonValue::I64,
    u32 => |v: u32| JsonValue::U64(v as u64),
    u64 => JsonValue::U64,
    usize => |v: usize| JsonValue::U64(v as u64),
    f64 => JsonValue::F64,
    String => JsonValue::Str,
}

impl PartialEq<&str> for JsonValue {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<JsonValue> for &str {
    fn eq(&self, other: &JsonValue) -> bool {
        other == self
    }
}

impl PartialEq<str> for JsonValue {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl Serialize for JsonValue {
    fn to_json_value(&self) -> JsonValue {
        self.clone()
    }
}

impl Deserialize for JsonValue {
    fn from_json_value(v: &JsonValue) -> Result<JsonValue, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_eq() {
        let v = JsonValue::Obj(vec![
            ("ok".into(), JsonValue::Bool(true)),
            ("n".into(), JsonValue::I64(5)),
            (
                "arr".into(),
                JsonValue::Arr(vec![JsonValue::Str("x".into())]),
            ),
        ]);
        assert_eq!(v["ok"], true);
        assert_eq!(v["n"], 5);
        assert_eq!(v["n"], 5i64);
        assert_eq!(v["arr"][0], "x");
        assert!(v["missing"].is_null());
        assert!(v["arr"][9].is_null());
    }

    #[test]
    fn cross_variant_number_eq() {
        assert_eq!(JsonValue::I64(5), JsonValue::U64(5));
        assert_eq!(JsonValue::F64(2.0), JsonValue::I64(2));
        assert_ne!(JsonValue::I64(-1), JsonValue::U64(u64::MAX));
    }
}

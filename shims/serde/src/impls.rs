//! `Serialize`/`Deserialize` impls for the std types the workspace
//! (de)serialises.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::{Deserialize, Error, JsonValue, Serialize};

// ----- integers --------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<$t, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::new(format!("expected integer, found {}", v.kind_name()))
                })?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => JsonValue::I64(i),
                    Err(_) => JsonValue::U64(v),
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<$t, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::new(format!(
                        "expected unsigned integer, found {}",
                        v.kind_name()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

// ----- floats, bool, strings ------------------------------------------

impl Serialize for f64 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &JsonValue) -> Result<f64, Error> {
        // serde_json prints non-finite floats as null; accept the
        // round trip back.
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| Error::new(format!("expected number, found {}", v.kind_name())))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &JsonValue) -> Result<f32, Error> {
        f64::from_json_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &JsonValue) -> Result<bool, Error> {
        v.as_bool()
            .ok_or_else(|| Error::new(format!("expected boolean, found {}", v.kind_name())))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &JsonValue) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new(format!("expected string, found {}", v.kind_name())))
    }

    fn from_json_key(key: &str) -> Result<String, Error> {
        Ok(key.to_string())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &JsonValue) -> Result<char, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::new(format!("expected string, found {}", v.kind_name())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected a single character")),
        }
    }
}

// ----- references and smart pointers ----------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &JsonValue) -> Result<Box<T>, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json_value(v: &JsonValue) -> Result<Arc<T>, Error> {
        T::from_json_value(v).map(Arc::new)
    }
}

// ----- Option ----------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &JsonValue) -> Result<Option<T>, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json_value(v).map(Some)
        }
    }

    fn missing_field() -> Option<Option<T>> {
        // serde treats a missing field as `None` for Option fields.
        Some(None)
    }
}

// ----- sequences -------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &JsonValue) -> Result<Vec<T>, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::new(format!("expected array, found {}", v.kind_name())))?;
        items.iter().map(T::from_json_value).collect()
    }
}

// ----- tuples ----------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:literal),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Arr(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &JsonValue) -> Result<($($name,)+), Error> {
                let items = v.as_array().ok_or_else(|| {
                    Error::new(format!("expected array, found {}", v.kind_name()))
                })?;
                if items.len() != $len {
                    return Err(Error::new(format!(
                        "expected a tuple of {} elements, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple! {
    (A: 0) => 1,
    (A: 0, B: 1) => 2,
    (A: 0, B: 1, C: 2) => 3,
    (A: 0, B: 1, C: 2, D: 3) => 4,
}

// ----- maps -------------------------------------------------------------

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(
            self.iter()
                .map(|(k, v)| (crate::__key_string(&k.to_json_value()), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &JsonValue) -> Result<BTreeMap<K, V>, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::new(format!("expected object, found {}", v.kind_name())))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_json_key(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> JsonValue {
        // Sort keys so HashMap serialisation is deterministic.
        let mut fields: Vec<(String, JsonValue)> = self
            .iter()
            .map(|(k, v)| (crate::__key_string(&k.to_json_value()), v.to_json_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        JsonValue::Obj(fields)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(v: &JsonValue) -> Result<HashMap<K, V, S>, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::new(format!("expected object, found {}", v.kind_name())))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_json_key(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

// ----- unit -------------------------------------------------------------

impl Serialize for () {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Null
    }
}

impl Deserialize for () {
    fn from_json_value(v: &JsonValue) -> Result<(), Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected null, found {}",
                v.kind_name()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let json = v.to_json_value();
        assert_eq!(T::from_json_value(&json).unwrap(), v);
    }

    #[test]
    fn std_round_trips() {
        round_trip(42i64);
        round_trip(7u32);
        round_trip(-1i8);
        round_trip(usize::MAX);
        round_trip(2.5f64);
        round_trip(true);
        round_trip("hi".to_string());
        round_trip(Some(3i64));
        round_trip(Option::<i64>::None);
        round_trip(vec![1u8, 2, 3]);
        round_trip((1usize, 2usize));
        round_trip(Arc::new(vec!["a".to_string()]));
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1.5f64);
        round_trip(m);
    }

    #[test]
    fn non_string_keys_round_trip() {
        let mut m: BTreeMap<(u32, u32), String> = BTreeMap::new();
        m.insert((1, 2), "x".into());
        m.insert((3, 4), "y".into());
        let json = m.to_json_value();
        match &json {
            JsonValue::Obj(fields) => assert_eq!(fields[0].0, "[1,2]"),
            other => panic!("{other:?}"),
        }
        assert_eq!(BTreeMap::from_json_value(&json).unwrap(), m);
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_json_value(&JsonValue::I64(300)).is_err());
        assert!(u64::from_json_value(&JsonValue::I64(-1)).is_err());
        assert!(i64::from_json_value(&JsonValue::Str("5".into())).is_err());
    }
}

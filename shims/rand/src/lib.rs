//! Offline shim for the `rand` crate (0.10-era API surface): a
//! deterministic xoshiro256** generator behind the `StdRng` name, the
//! `Rng`/`RngExt`/`SeedableRng` traits, and the slice helpers
//! (`choose`, `shuffle`) the workspace uses.
//!
//! The stream is fully deterministic per seed (and stable across
//! platforms), which is what the reproduction relies on; it makes no
//! cryptographic claims.

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::random`] (the `StandardUniform`
/// distribution in real rand).
pub trait Standard: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

/// Object-safe core: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Element types with uniform range sampling. The blanket
/// [`SampleRange`] impls below tie the range's element type to the
/// sampled type (as real rand does), which is what lets float-literal
/// ranges like `-4.0..4.0` infer as `f64`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// A uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire-style unbiased-enough scaling of a `u64` into `[0, span)`.
fn scale_u64(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + scale_u64(rng.next_u64(), span) as i128) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + scale_u64(rng.next_u64(), span as u64) as i128) as $t
            }
        }
        impl Standard for $t {
            fn from_rng(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        lo + (hi - lo) * unit_f64(rng)
    }
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(lo: f32, hi: f32, rng: &mut dyn RngCore) -> f32 {
        lo + (hi - lo) * unit_f64(rng) as f32
    }
    fn sample_inclusive(lo: f32, hi: f32, rng: &mut dyn RngCore) -> f32 {
        lo + (hi - lo) * unit_f64(rng) as f32
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng(rng: &mut dyn RngCore) -> f32 {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator trait (merged `Rng` + `RngExt` of rand 0.10).
pub trait Rng: RngCore + Sized {
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// rand 0.10 moved the sampling methods to an extension trait; some call
/// sites import it by that name.
pub use Rng as RngExt;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let (mut n0, mut n1, mut n2, mut n3) = (s0, s1, s2, s3);
            n2 ^= n0;
            n3 ^= n1;
            n1 ^= n2;
            n0 ^= n3;
            n2 ^= t;
            n3 = n3.rotate_left(45);
            self.s = [n0, n1, n2, n3];
            result
        }
    }
}

/// Slice helper: uniform choice (rand's `IndexedRandom`).
pub trait IndexedRandom {
    type Item;
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// Slice helper: Fisher–Yates shuffle (rand's `SliceRandom`).
pub trait SliceRandom {
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{IndexedRandom, Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..17);
            assert!(v < 17);
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn uniform_enough() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
        let heads = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&heads), "{heads}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}

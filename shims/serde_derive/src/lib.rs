//! Offline shim for `serde_derive`: derive macros that generate impls of
//! the shim `serde::Serialize`/`serde::Deserialize` traits (a concrete
//! JSON value model, not serde's generic data model).
//!
//! The input TokenStream is parsed by hand — no `syn`/`quote`, since the
//! build environment has no network access. Supported shapes are exactly
//! what this workspace uses:
//!
//! - structs with named fields (plus unit and single-field tuple structs);
//! - enums with unit, newtype, and struct variants (externally tagged);
//! - `#[serde(default)]` on fields;
//! - `#[serde(rename_all = "camelCase")]` on containers (renames fields
//!   of structs and *variants* of enums, like real serde).
//!
//! Unsupported shapes produce a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    has_default: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    /// Single-field tuple struct.
    NewtypeStruct,
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    rename_all_camel: bool,
    body: Body,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_container(input) {
        Ok(c) => generate(&c, mode).parse().unwrap_or_else(|e| {
            compile_error(&format!("serde_derive shim generated invalid code: {e}"))
        }),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Scan an attribute group's tokens for `serde(...)` contents and record
/// the flags we understand.
fn scan_attr(group: &proc_macro::Group, default: &mut bool, rename_all_camel: &mut bool) {
    let mut tokens = group.stream().into_iter();
    let Some(TokenTree::Ident(name)) = tokens.next() else {
        return;
    };
    if name.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = tokens.next() else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        if let TokenTree::Ident(id) = &args[i] {
            match id.to_string().as_str() {
                "default" => *default = true,
                "rename_all" => {
                    // rename_all = "camelCase"
                    if let Some(TokenTree::Literal(lit)) = args.get(i + 2) {
                        if lit.to_string().contains("camelCase") {
                            *rename_all_camel = true;
                        }
                    }
                    i += 2;
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Consume leading attributes from `tokens[*pos..]`, updating flags.
fn skip_attrs(
    tokens: &[TokenTree],
    pos: &mut usize,
    default: &mut bool,
    rename_all_camel: &mut bool,
) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                    scan_attr(g, default, rename_all_camel);
                    *pos += 2;
                } else {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Consume an optional visibility (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_container(input: TokenStream) -> Result<Container, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let mut rename_all_camel = false;
    let mut unused = false;
    skip_attrs(&tokens, &mut pos, &mut unused, &mut rename_all_camel);
    skip_vis(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "serde shim: expected struct or enum, got {other:?}"
            ))
        }
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected type name, got {other:?}")),
    };
    pos += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim: generic type `{name}` is not supported"
            ));
        }
    }

    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Body::NamedStruct(parse_fields(&inner)?)
            } else {
                Body::Enum(parse_variants(&inner)?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind == "enum" {
                return Err("serde shim: malformed enum".into());
            }
            let has_comma = g
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Punct(p) if p.as_char() == ','));
            if has_comma {
                return Err(format!(
                    "serde shim: multi-field tuple struct `{name}` is not supported"
                ));
            }
            Body::NewtypeStruct
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
        other => return Err(format!("serde shim: unsupported {kind} body: {other:?}")),
    };

    Ok(Container {
        name,
        rename_all_camel,
        body,
    })
}

/// Parse named fields: `attrs vis name : Type,` — the type tokens are
/// skipped with angle-bracket depth tracking (commas inside generics are
/// not field separators).
fn parse_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let mut has_default = false;
        let mut unused = false;
        skip_attrs(tokens, &mut pos, &mut has_default, &mut unused);
        skip_vis(tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde shim: expected field name, got {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("serde shim: expected `:`, got {other:?}")),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(pos) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            pos += 1;
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(Field { name, has_default });
    }
    Ok(fields)
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let mut unused_a = false;
        let mut unused_b = false;
        skip_attrs(tokens, &mut pos, &mut unused_a, &mut unused_b);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde shim: expected variant name, got {other:?}")),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                let mut angle_depth = 0i32;
                let mut multi = false;
                for t in g.stream() {
                    if let TokenTree::Punct(p) = &t {
                        match p.as_char() {
                            '<' => angle_depth += 1,
                            '>' => angle_depth -= 1,
                            ',' if angle_depth == 0 => multi = true,
                            _ => {}
                        }
                    }
                }
                if multi {
                    return Err(format!(
                        "serde shim: multi-field tuple variant `{name}` is not supported"
                    ));
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantKind::Struct(parse_fields(&inner)?)
            }
            _ => VariantKind::Unit,
        };
        // Discriminant (`= expr`) and trailing comma.
        while let Some(t) = tokens.get(pos) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn camel_case(snake: &str) -> String {
    let mut out = String::new();
    let mut upper_next = false;
    for c in snake.chars() {
        if c == '_' {
            upper_next = true;
        } else if upper_next {
            out.extend(c.to_uppercase());
            upper_next = false;
        } else {
            out.push(c);
        }
    }
    out
}

/// serde's camelCase rule for variant names: lower-case the leading
/// character of the PascalCase identifier.
fn variant_camel_case(pascal: &str) -> String {
    let mut chars = pascal.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().chain(chars).collect(),
        None => String::new(),
    }
}

fn field_key(f: &Field, rename_all_camel: bool) -> String {
    if rename_all_camel {
        camel_case(&f.name)
    } else {
        f.name.clone()
    }
}

fn variant_key(v: &Variant, rename_all_camel: bool) -> String {
    if rename_all_camel {
        variant_camel_case(&v.name)
    } else {
        v.name.clone()
    }
}

fn gen_struct_ser_fields(fields: &[Field], rename: bool, access_prefix: &str) -> String {
    let mut out = String::new();
    for f in fields {
        out.push_str(&format!(
            "(String::from({key:?}), ::serde::Serialize::to_json_value(&{access_prefix}{name})),",
            key = field_key(f, rename),
            name = f.name,
        ));
    }
    out
}

fn gen_struct_de_fields(fields: &[Field], rename: bool, ty_label: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let helper = if f.has_default {
            "__field_default"
        } else {
            "__field"
        };
        out.push_str(&format!(
            "{name}: ::serde::{helper}(__fields, {key:?}, {ty:?})?,",
            name = f.name,
            key = field_key(f, rename),
            ty = ty_label,
        ));
    }
    out
}

fn generate(c: &Container, mode: Mode) -> String {
    let name = &c.name;
    match mode {
        Mode::Serialize => {
            let body = match &c.body {
                Body::NamedStruct(fields) => format!(
                    "::serde::JsonValue::Obj(vec![{}])",
                    gen_struct_ser_fields(fields, c.rename_all_camel, "self.")
                ),
                Body::NewtypeStruct => "::serde::Serialize::to_json_value(&self.0)".to_string(),
                Body::UnitStruct => "::serde::JsonValue::Null".to_string(),
                Body::Enum(variants) => {
                    let mut arms = String::new();
                    for v in variants {
                        let key = variant_key(v, c.rename_all_camel);
                        match &v.kind {
                            VariantKind::Unit => arms.push_str(&format!(
                                "{name}::{v} => ::serde::JsonValue::Str(String::from({key:?})),",
                                v = v.name
                            )),
                            VariantKind::Newtype => arms.push_str(&format!(
                                "{name}::{v}(__x) => ::serde::JsonValue::Obj(vec![(String::from({key:?}), ::serde::Serialize::to_json_value(__x))]),",
                                v = v.name
                            )),
                            VariantKind::Struct(fields) => {
                                let bindings: Vec<&str> =
                                    fields.iter().map(|f| f.name.as_str()).collect();
                                arms.push_str(&format!(
                                    "{name}::{v} {{ {binds} }} => ::serde::JsonValue::Obj(vec![(String::from({key:?}), ::serde::JsonValue::Obj(vec![{inner}]))]),",
                                    v = v.name,
                                    binds = bindings.join(", "),
                                    inner = gen_struct_ser_fields(fields, false, "")
                                ));
                            }
                        }
                    }
                    format!("match self {{ {arms} }}")
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::JsonValue {{ {body} }}\n\
                 }}"
            )
        }
        Mode::Deserialize => {
            let body = match &c.body {
                Body::NamedStruct(fields) => format!(
                    "let __fields = ::serde::__obj(__v, {name:?})?;\n\
                     ::std::result::Result::Ok({name} {{ {inits} }})",
                    inits = gen_struct_de_fields(fields, c.rename_all_camel, name)
                ),
                Body::NewtypeStruct => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(__v)?))"
                ),
                Body::UnitStruct => format!(
                    "if __v.is_null() {{ ::std::result::Result::Ok({name}) }} else {{ \
                     ::std::result::Result::Err(::serde::Error::new(\"expected null\")) }}"
                ),
                Body::Enum(variants) => {
                    let mut unit_arms = String::new();
                    let mut obj_arms = String::new();
                    for v in variants {
                        let key = variant_key(v, c.rename_all_camel);
                        match &v.kind {
                            VariantKind::Unit => unit_arms.push_str(&format!(
                                "{key:?} => ::std::result::Result::Ok({name}::{v}),",
                                v = v.name
                            )),
                            VariantKind::Newtype => obj_arms.push_str(&format!(
                                "{key:?} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_json_value(__val)?)),",
                                v = v.name
                            )),
                            VariantKind::Struct(fields) => {
                                let label = format!("{name}::{}", v.name);
                                obj_arms.push_str(&format!(
                                    "{key:?} => {{ let __fields = ::serde::__obj(__val, {label:?})?; ::std::result::Result::Ok({name}::{v} {{ {inits} }}) }},",
                                    v = v.name,
                                    inits = gen_struct_de_fields(fields, false, &label)
                                ));
                            }
                        }
                    }
                    format!(
                        "match __v {{\n\
                           ::serde::JsonValue::Str(__s) => match __s.as_str() {{\n\
                             {unit_arms}\n\
                             __other => ::std::result::Result::Err(::serde::Error::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                           }},\n\
                           ::serde::JsonValue::Obj(__o) if __o.len() == 1 => {{\n\
                             let (__k, __val) = &__o[0];\n\
                             let _ = __val;\n\
                             match __k.as_str() {{\n\
                               {obj_arms}\n\
                               __other => ::std::result::Result::Err(::serde::Error::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }}\n\
                           }},\n\
                           __other => ::std::result::Result::Err(::serde::Error::new(format!(\"expected a {name} variant, found {{}}\", __other.kind_name()))),\n\
                         }}"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(__v: &::serde::JsonValue) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

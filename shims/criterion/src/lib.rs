//! Offline shim for `criterion`: a minimal wall-clock bench harness with
//! the same call surface (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `criterion_group!`, `criterion_main!`). It runs a
//! short warm-up, then `sample_size` timed samples, and prints
//! median/min/max per benchmark. No statistics beyond that — it exists
//! so `cargo bench` works without the network.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(name: S, param: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter<P: Display>(param: P) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter`] but with an untimed per-sample setup step.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut f: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(f(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(f(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            return;
        }
        s.sort_unstable();
        let median = s[s.len() / 2];
        println!(
            "bench {}/{id}: median {median:?}  (min {:?}, max {:?}, n={})",
            self.name,
            s[0],
            s[s.len() - 1],
            s.len()
        );
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").run(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_function("f", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        // one warm-up + three samples
        assert_eq!(calls, 4);
    }
}

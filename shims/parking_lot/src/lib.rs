//! Offline shim for the `parking_lot` crate: the subset of its API this
//! workspace uses, implemented over `std::sync`. Unlike std, `lock()`
//! does not return a poison `Result` — a poisoned mutex is recovered
//! transparently, matching parking_lot's no-poisoning semantics.

use std::sync::TryLockError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// parking_lot-style mutex: `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Result of a [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// parking_lot-style condition variable: waits on a `&mut MutexGuard`
/// (no consume-and-return dance, no poison `Result`).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

/// The waits below move the guard out from behind `&mut` to hand it to
/// std's consuming API, then move the re-acquired guard back in. If
/// that window unwound, dropping the duplicated guard would unlock the
/// mutex twice — so any panic there becomes an abort.
struct AbortOnUnwind;

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        std::process::abort();
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified, releasing `guard`'s mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let bomb = AbortOnUnwind;
        // SAFETY: the guard read out of `*guard` is given to std's
        // `wait`, which returns the (re-acquired) guard; writing it
        // back restores the invariant that `*guard` owns the lock
        // exactly once. `bomb` aborts if `wait` unwinds in between.
        unsafe {
            let g = std::ptr::read(guard);
            let g = self.0.wait(g).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, g);
        }
        std::mem::forget(bomb);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let bomb = AbortOnUnwind;
        let timed_out;
        // SAFETY: as in `wait` — guard moves out, std re-acquires, and
        // the result moves back in before anything can observe `*guard`.
        unsafe {
            let g = std::ptr::read(guard);
            let (g, res) = match self.0.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            timed_out = res.timed_out();
            std::ptr::write(guard, g);
        }
        std::mem::forget(bomb);
        WaitTimeoutResult(timed_out)
    }
}

/// parking_lot-style reader-writer lock: `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_wakes_on_notify() {
        use std::sync::Arc;
        use std::time::Duration;

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waker = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*waker;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            let res = cv.wait_for(&mut ready, Duration::from_secs(5));
            assert!(!res.timed_out(), "notify should arrive well within 5s");
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(0u8);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(res.timed_out());
        // The guard still owns the lock after the wait.
        *g = 7;
        drop(g);
        assert_eq!(*m.lock(), 7);
    }
}

//! Offline shim for the `parking_lot` crate: the subset of its API this
//! workspace uses, implemented over `std::sync`. Unlike std, `lock()`
//! does not return a poison `Result` — a poisoned mutex is recovered
//! transparently, matching parking_lot's no-poisoning semantics.

use std::sync::TryLockError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// parking_lot-style mutex: `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// parking_lot-style reader-writer lock: `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}

//! Offline shim for `rand_distr`: just the `Normal` distribution (via
//! Box–Muller) and the `Distribution` trait, which is all the workspace
//! uses.

use rand::Rng;

/// A distribution samplable with any [`rand::Rng`].
pub trait Distribution<T> {
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

/// Errors constructing a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// Standard deviation was not finite and non-negative.
    BadVariance,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// The normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; u1 bounded away from zero so ln() is finite.
        let u1: f64 = rng.random_range(1e-12..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn rejects_bad_std() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn moments_are_close() {
        let normal = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}

//! Offline shim for `proptest`: deterministic random property testing
//! with the same call surface the workspace uses — the [`proptest!`]
//! macro, range/`any`/tuple strategies, `collection::vec`, `option::of`,
//! `sample::select`, `string::string_regex`, `prop_map`/`prop_flat_map`,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike the real crate there is no shrinking: cases are generated from
//! an RNG seeded from the test's name, so failures reproduce exactly
//! across runs.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration; only `cases` matters here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic RNG derived from the test name (FNV-1a).
    pub fn rng_for(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
    }

    // A &str literal is a strategy producing strings that match it as a
    // regex-like pattern (see the `string` module for the grammar).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::string_regex(self)
                .expect("invalid string pattern")
                .generate(rng)
        }
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};

    use crate::strategy::Strategy;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.random_bool(0.5)
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Inclusive length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            let hi = r.end.saturating_sub(1).max(r.start);
            SizeRange { lo: r.start, hi }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod sample {
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.random_range(0..self.0.len())].clone()
        }
    }

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select needs at least one item");
        Select(items)
    }
}

pub mod string {
    //! Generator for the small regex subset the workspace uses:
    //! sequences of atoms — a character class `[a-z!x]`, the category
    //! escape `\PC` (any non-control character), or a literal character —
    //! each with an optional `{n}` / `{lo,hi}` repetition.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    #[derive(Debug)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "bad string pattern: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Clone, Debug)]
    enum CharSet {
        /// Inclusive character ranges (single chars are one-char ranges).
        Ranges(Vec<(char, char)>),
        /// `\PC`: any character outside Unicode category C (control etc.).
        NotControl,
    }

    #[derive(Clone, Debug)]
    struct Part {
        set: CharSet,
        lo: usize,
        hi: usize,
    }

    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy {
        parts: Vec<Part>,
    }

    /// Mostly printable ASCII, sometimes a multi-byte character — enough
    /// spread to exercise UTF-8 handling without leaving `\PC`.
    const WIDE_CHARS: &[char] = &['à', 'ß', 'λ', 'Ж', '中', '€', '…', '🦀'];

    fn gen_char(set: &CharSet, rng: &mut StdRng) -> char {
        match set {
            CharSet::Ranges(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut pick = rng.random_range(0..total);
                for &(lo, hi) in ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick).unwrap_or(lo);
                    }
                    pick -= span;
                }
                unreachable!("pick within total span")
            }
            CharSet::NotControl => {
                if rng.random_bool(0.85) {
                    char::from_u32(rng.random_range(0x20u32..=0x7e)).unwrap()
                } else {
                    WIDE_CHARS[rng.random_range(0..WIDE_CHARS.len())]
                }
            }
        }
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for part in &self.parts {
                let n = if part.lo == part.hi {
                    part.lo
                } else {
                    rng.random_range(part.lo..=part.hi)
                };
                for _ in 0..n {
                    out.push(gen_char(&part.set, rng));
                }
            }
            out
        }
    }

    fn parse_class(chars: &[char], mut i: usize) -> Result<(CharSet, usize), Error> {
        let mut ranges = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let lo = if chars[i] == '\\' {
                i += 1;
                *chars
                    .get(i)
                    .ok_or_else(|| Error("trailing backslash in class".into()))?
            } else {
                chars[i]
            };
            if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                let hi = chars[i + 2];
                if hi < lo {
                    return Err(Error(format!("inverted range {lo}-{hi}")));
                }
                ranges.push((lo, hi));
                i += 3;
            } else {
                ranges.push((lo, lo));
                i += 1;
            }
        }
        if i >= chars.len() {
            return Err(Error("unterminated character class".into()));
        }
        if ranges.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok((CharSet::Ranges(ranges), i + 1))
    }

    fn parse_repeat(chars: &[char], mut i: usize) -> Result<((usize, usize), usize), Error> {
        let start = i;
        while i < chars.len() && chars[i] != '}' {
            i += 1;
        }
        if i >= chars.len() {
            return Err(Error("unterminated repetition".into()));
        }
        let body: String = chars[start..i].iter().collect();
        let parse_n = |s: &str| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| Error(format!("bad repetition count {s:?}")))
        };
        let (lo, hi) = match body.split_once(',') {
            Some((a, b)) => (parse_n(a)?, parse_n(b)?),
            None => {
                let n = parse_n(&body)?;
                (n, n)
            }
        };
        if hi < lo {
            return Err(Error(format!("inverted repetition {{{body}}}")));
        }
        Ok(((lo, hi), i + 1))
    }

    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut parts = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1)?;
                    i = next;
                    set
                }
                '\\' => match chars.get(i + 1) {
                    Some('P') => {
                        if chars.get(i + 2) == Some(&'C') {
                            i += 3;
                            CharSet::NotControl
                        } else {
                            return Err(Error("only \\PC category escape is supported".into()));
                        }
                    }
                    Some(&c) => {
                        i += 2;
                        CharSet::Ranges(vec![(c, c)])
                    }
                    None => return Err(Error("trailing backslash".into())),
                },
                c => {
                    i += 1;
                    CharSet::Ranges(vec![(c, c)])
                }
            };
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let (rep, next) = parse_repeat(&chars, i + 1)?;
                i = next;
                rep
            } else {
                (1, 1)
            };
            parts.push(Part { set, lo, hi });
        }
        Ok(RegexGeneratorStrategy { parts })
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Run each contained `fn name(binding in strategy, ...) { body }` as a
/// `#[test]` over `cases` generated inputs. No shrinking; the RNG is
/// seeded from the test name so runs are reproducible.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $parm = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*); };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*); };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng_for("ranges_stay_in_bounds");
        for _ in 0..200 {
            let v = Strategy::generate(&(2usize..5), &mut rng);
            assert!((2..5).contains(&v));
            let f = Strategy::generate(&(0.0f64..0.3), &mut rng);
            assert!((0.0..0.3).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = rng_for("vec_strategy_sizes");
        let s = crate::collection::vec(0i64..3, 0..30);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 30);
            assert!(v.iter().all(|&x| (0..3).contains(&x)));
        }
        let fixed = crate::collection::vec(any::<u8>(), 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
    }

    #[test]
    fn string_patterns_match() {
        let mut rng = rng_for("string_patterns_match");
        let ascii = crate::string::string_regex("[ -~]{0,12}").unwrap();
        let word = crate::string::string_regex("[a-z]{1,8}").unwrap();
        let printable = crate::string::string_regex("\\PC{0,64}").unwrap();
        for _ in 0..200 {
            let s = ascii.generate(&mut rng);
            assert!(s.len() <= 12 && s.chars().all(|c| (' '..='~').contains(&c)));
            let w = word.generate(&mut rng);
            assert!((1..=8).contains(&w.len()) && w.chars().all(|c| c.is_ascii_lowercase()));
            let p = printable.generate(&mut rng);
            assert!(p.chars().count() <= 64 && p.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = rng_for("combinators_compose");
        let s = (1usize..4, 1usize..4)
            .prop_flat_map(|(a, b)| crate::collection::vec(0usize..10, a * b))
            .prop_map(|v| v.len());
        for _ in 0..50 {
            let n = s.generate(&mut rng);
            assert!((1..=9).contains(&n));
        }
        let opt = crate::option::of(crate::sample::select(vec!["a", "b"]));
        let mut some = 0;
        for _ in 0..200 {
            if let Some(v) = opt.generate(&mut rng) {
                assert!(v == "a" || v == "b");
                some += 1;
            }
        }
        assert!(some > 50 && some < 150);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, trailing comma.
        #[test]
        fn macro_binds_values(
            (a, b) in (0usize..5, 0usize..5),
            mut v in crate::collection::vec(any::<bool>(), 0..4),
        ) {
            v.push(a + b < 10);
            prop_assert!(v.last() == Some(&true));
            prop_assert_eq!(a + b, b + a);
        }
    }
}

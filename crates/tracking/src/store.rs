//! The filesystem-backed tracking store.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Tracking-store errors.
#[derive(Debug)]
pub enum TrackingError {
    Io(io::Error),
    /// Experiment or run not found / malformed.
    NotFound(String),
    Corrupt(String),
}

impl fmt::Display for TrackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackingError::Io(e) => write!(f, "I/O error: {e}"),
            TrackingError::NotFound(w) => write!(f, "not found: {w}"),
            TrackingError::Corrupt(w) => write!(f, "corrupt store: {w}"),
        }
    }
}

impl std::error::Error for TrackingError {}

impl From<io::Error> for TrackingError {
    fn from(e: io::Error) -> Self {
        TrackingError::Io(e)
    }
}

/// An experiment (a named group of runs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Experiment {
    pub id: String,
    pub name: String,
}

/// Run lifecycle state (mirrors MLflow's, including KILLED for runs
/// terminated by user cancellation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    Running,
    Finished,
    Failed,
    Killed,
}

/// Run metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunInfo {
    pub run_id: String,
    pub experiment_id: String,
    pub name: String,
    pub status: RunStatus,
    pub start_time: u64,
    pub end_time: Option<u64>,
}

/// One recorded metric observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    pub timestamp: u64,
    pub value: f64,
    pub step: u64,
}

/// The tracking store root.
#[derive(Debug)]
pub struct TrackingStore {
    root: PathBuf,
    /// Monotonic id counter (process-local), protecting against two runs
    /// starting within the same millisecond.
    counter: Mutex<u64>,
}

impl TrackingStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<TrackingStore, TrackingError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(TrackingStore {
            root,
            counter: Mutex::new(0),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn exp_dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// Create an experiment; fails if the name exists.
    pub fn create_experiment(&self, name: &str) -> Result<Experiment, TrackingError> {
        if self.find_experiment(name)?.is_some() {
            return Err(TrackingError::Corrupt(format!(
                "experiment {name:?} already exists"
            )));
        }
        let id = format!("exp-{}", sanitize(name));
        let exp = Experiment {
            id: id.clone(),
            name: name.to_string(),
        };
        let dir = self.exp_dir(&id);
        fs::create_dir_all(&dir)?;
        fs::write(
            dir.join("meta.json"),
            serde_json::to_string_pretty(&exp)
                .map_err(|e| TrackingError::Corrupt(e.to_string()))?,
        )?;
        Ok(exp)
    }

    /// Find an experiment by name.
    pub fn find_experiment(&self, name: &str) -> Result<Option<Experiment>, TrackingError> {
        Ok(self
            .list_experiments()?
            .into_iter()
            .find(|e| e.name == name))
    }

    /// Idempotent create.
    pub fn get_or_create_experiment(&self, name: &str) -> Result<Experiment, TrackingError> {
        match self.find_experiment(name)? {
            Some(e) => Ok(e),
            None => self.create_experiment(name),
        }
    }

    /// All experiments, sorted by name.
    pub fn list_experiments(&self) -> Result<Vec<Experiment>, TrackingError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let dir = entry?.path();
            let meta = dir.join("meta.json");
            if meta.is_file() {
                let text = fs::read_to_string(meta)?;
                let exp: Experiment = serde_json::from_str(&text)
                    .map_err(|e| TrackingError::Corrupt(e.to_string()))?;
                out.push(exp);
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    /// Start a run in an experiment.
    pub fn start_run(&self, experiment: &Experiment, name: &str) -> Result<Run, TrackingError> {
        let seq = {
            let mut c = self.counter.lock();
            *c += 1;
            *c
        };
        let run_id = format!("run-{:013}-{seq:04}", now_millis());
        let dir = self.exp_dir(&experiment.id).join(&run_id);
        fs::create_dir_all(dir.join("params"))?;
        fs::create_dir_all(dir.join("metrics"))?;
        fs::create_dir_all(dir.join("tags"))?;
        fs::create_dir_all(dir.join("artifacts"))?;
        let info = RunInfo {
            run_id: run_id.clone(),
            experiment_id: experiment.id.clone(),
            name: name.to_string(),
            status: RunStatus::Running,
            start_time: now_millis(),
            end_time: None,
        };
        write_run_info(&dir, &info)?;
        Ok(Run { dir, info })
    }

    /// All runs of an experiment, oldest first.
    pub fn list_runs(&self, experiment: &Experiment) -> Result<Vec<RunInfo>, TrackingError> {
        let dir = self.exp_dir(&experiment.id);
        let mut out = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let p = entry?.path();
            let meta = p.join("run.json");
            if meta.is_file() {
                let text = fs::read_to_string(meta)?;
                let info: RunInfo = serde_json::from_str(&text)
                    .map_err(|e| TrackingError::Corrupt(e.to_string()))?;
                out.push(info);
            }
        }
        out.sort_by(|a, b| a.run_id.cmp(&b.run_id));
        Ok(out)
    }

    /// Reopen an existing run for reading.
    pub fn get_run(&self, experiment: &Experiment, run_id: &str) -> Result<Run, TrackingError> {
        let dir = self.exp_dir(&experiment.id).join(run_id);
        let meta = dir.join("run.json");
        if !meta.is_file() {
            return Err(TrackingError::NotFound(format!("run {run_id}")));
        }
        let text = fs::read_to_string(meta)?;
        let info: RunInfo =
            serde_json::from_str(&text).map_err(|e| TrackingError::Corrupt(e.to_string()))?;
        Ok(Run { dir, info })
    }
}

/// A live (or reopened) run handle.
#[derive(Debug)]
pub struct Run {
    dir: PathBuf,
    info: RunInfo,
}

impl Run {
    pub fn info(&self) -> &RunInfo {
        &self.info
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Record a parameter (single value per key; last write wins).
    pub fn log_param(&self, key: &str, value: &str) -> Result<(), TrackingError> {
        fs::write(self.dir.join("params").join(sanitize(key)), value)?;
        Ok(())
    }

    /// Record a metric observation at `step`.
    pub fn log_metric(&self, key: &str, value: f64, step: u64) -> Result<(), TrackingError> {
        use std::io::Write;
        let path = self.dir.join("metrics").join(sanitize(key));
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{} {} {}", now_millis(), value, step)?;
        Ok(())
    }

    /// Set a tag.
    pub fn set_tag(&self, key: &str, value: &str) -> Result<(), TrackingError> {
        fs::write(self.dir.join("tags").join(sanitize(key)), value)?;
        Ok(())
    }

    /// Store an artifact file under `artifacts/<name>`.
    pub fn log_artifact(&self, name: &str, content: &[u8]) -> Result<(), TrackingError> {
        let path = self.dir.join("artifacts").join(sanitize(name));
        fs::write(path, content)?;
        Ok(())
    }

    /// All recorded params.
    pub fn params(&self) -> Result<BTreeMap<String, String>, TrackingError> {
        read_kv_dir(&self.dir.join("params"))
    }

    /// All recorded tags.
    pub fn tags(&self) -> Result<BTreeMap<String, String>, TrackingError> {
        read_kv_dir(&self.dir.join("tags"))
    }

    /// Full history of one metric, in log order.
    pub fn metric_history(&self, key: &str) -> Result<Vec<MetricPoint>, TrackingError> {
        let path = self.dir.join("metrics").join(sanitize(key));
        if !path.is_file() {
            return Ok(Vec::new());
        }
        let text = fs::read_to_string(path)?;
        let mut out = Vec::new();
        for line in text.lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(TrackingError::Corrupt(format!("metric line {line:?}")));
            }
            out.push(MetricPoint {
                timestamp: parts[0]
                    .parse()
                    .map_err(|_| TrackingError::Corrupt(format!("timestamp in {line:?}")))?,
                value: parts[1]
                    .parse()
                    .map_err(|_| TrackingError::Corrupt(format!("value in {line:?}")))?,
                step: parts[2]
                    .parse()
                    .map_err(|_| TrackingError::Corrupt(format!("step in {line:?}")))?,
            });
        }
        Ok(out)
    }

    /// Read an artifact back.
    pub fn artifact(&self, name: &str) -> Result<Vec<u8>, TrackingError> {
        let path = self.dir.join("artifacts").join(sanitize(name));
        if !path.is_file() {
            return Err(TrackingError::NotFound(format!("artifact {name}")));
        }
        Ok(fs::read(path)?)
    }

    /// List artifact names.
    pub fn list_artifacts(&self) -> Result<Vec<String>, TrackingError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.dir.join("artifacts"))? {
            out.push(entry?.file_name().to_string_lossy().to_string());
        }
        out.sort();
        Ok(out)
    }

    /// Finish the run.
    pub fn end(mut self, status: RunStatus) -> Result<RunInfo, TrackingError> {
        self.info.status = status;
        self.info.end_time = Some(now_millis());
        write_run_info(&self.dir, &self.info)?;
        Ok(self.info)
    }
}

fn write_run_info(dir: &Path, info: &RunInfo) -> Result<(), TrackingError> {
    fs::write(
        dir.join("run.json"),
        serde_json::to_string_pretty(info).map_err(|e| TrackingError::Corrupt(e.to_string()))?,
    )?;
    Ok(())
}

fn read_kv_dir(dir: &Path) -> Result<BTreeMap<String, String>, TrackingError> {
    let mut out = BTreeMap::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_file() {
            let key = p
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            out.insert(key, fs::read_to_string(p)?);
        }
    }
    Ok(out)
}

/// Keep keys filesystem-safe.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(name: &str) -> TrackingStore {
        let root =
            std::env::temp_dir().join(format!("datalens_tracking_{}_{name}", std::process::id()));
        fs::remove_dir_all(&root).ok();
        TrackingStore::new(root).unwrap()
    }

    #[test]
    fn experiment_lifecycle() {
        let s = store("exp");
        let det = s.create_experiment("Detection").unwrap();
        let rep = s.create_experiment("Repair").unwrap();
        assert_ne!(det.id, rep.id);
        assert!(s.create_experiment("Detection").is_err());
        let found = s.get_or_create_experiment("Detection").unwrap();
        assert_eq!(found, det);
        let names: Vec<String> = s
            .list_experiments()
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["Detection", "Repair"]);
        fs::remove_dir_all(s.root()).ok();
    }

    #[test]
    fn run_logging_round_trip() {
        let s = store("runs");
        let exp = s.get_or_create_experiment("Detection").unwrap();
        let run = s.start_run(&exp, "sd on nasa").unwrap();
        run.log_param("detector", "sd").unwrap();
        run.log_param("k", "3.0").unwrap();
        run.set_tag("dataset", "nasa").unwrap();
        run.log_metric("precision", 0.8, 0).unwrap();
        run.log_metric("precision", 0.85, 1).unwrap();
        run.log_artifact("detections.json", b"[1,2,3]").unwrap();
        let run_id = run.info().run_id.clone();
        let info = run.end(RunStatus::Finished).unwrap();
        assert_eq!(info.status, RunStatus::Finished);
        assert!(info.end_time.is_some());

        let reopened = s.get_run(&exp, &run_id).unwrap();
        assert_eq!(reopened.params().unwrap()["detector"], "sd");
        assert_eq!(reopened.tags().unwrap()["dataset"], "nasa");
        let hist = reopened.metric_history("precision").unwrap();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[1].value, 0.85);
        assert_eq!(hist[1].step, 1);
        assert_eq!(reopened.artifact("detections.json").unwrap(), b"[1,2,3]");
        assert_eq!(reopened.list_artifacts().unwrap(), vec!["detections.json"]);
        fs::remove_dir_all(s.root()).ok();
    }

    #[test]
    fn list_runs_ordered() {
        let s = store("list");
        let exp = s.get_or_create_experiment("Repair").unwrap();
        let a = s.start_run(&exp, "first").unwrap();
        let b = s.start_run(&exp, "second").unwrap();
        a.end(RunStatus::Finished).unwrap();
        b.end(RunStatus::Failed).unwrap();
        let runs = s.list_runs(&exp).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].name, "first");
        assert_eq!(runs[1].status, RunStatus::Failed);
        fs::remove_dir_all(s.root()).ok();
    }

    #[test]
    fn missing_run_and_artifact_error() {
        let s = store("missing");
        let exp = s.get_or_create_experiment("Detection").unwrap();
        assert!(matches!(
            s.get_run(&exp, "run-nope"),
            Err(TrackingError::NotFound(_))
        ));
        let run = s.start_run(&exp, "r").unwrap();
        assert!(matches!(
            run.artifact("ghost"),
            Err(TrackingError::NotFound(_))
        ));
        assert!(run.metric_history("never_logged").unwrap().is_empty());
        fs::remove_dir_all(s.root()).ok();
    }

    #[test]
    fn keys_are_sanitised() {
        let s = store("sanitise");
        let exp = s.get_or_create_experiment("Detection").unwrap();
        let run = s.start_run(&exp, "r").unwrap();
        run.log_param("weird/key name", "v").unwrap();
        let params = run.params().unwrap();
        assert_eq!(params["weird_key_name"], "v");
        fs::remove_dir_all(s.root()).ok();
    }

    #[test]
    fn concurrent_run_ids_unique() {
        let s = store("unique");
        let exp = s.get_or_create_experiment("Detection").unwrap();
        let ids: Vec<String> = (0..20)
            .map(|_| s.start_run(&exp, "r").unwrap().info().run_id.clone())
            .collect();
        let distinct: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(distinct.len(), ids.len());
        fs::remove_dir_all(s.root()).ok();
    }
}

//! # datalens-tracking
//!
//! Experiment tracking — the reproduction's stand-in for MLflow (§5):
//! "Each time an error detection or repair operation is executed, the
//! specific parameters and artifacts are logged and locally stored …
//! runs are segmented into distinct groups, referred to as 'experiments' …
//! specifically categorized under 'Detection' and 'Repair'."
//!
//! The store mirrors MLflow's filesystem backend: one directory per
//! experiment, one per run, with `params/<key>` and `tags/<key>`
//! single-value files, `metrics/<key>` append-only `timestamp value step`
//! lines, and an `artifacts/` folder.

pub mod store;

pub use store::{Experiment, MetricPoint, Run, RunInfo, RunStatus, TrackingError, TrackingStore};

/// The experiment groups the dashboard logs into.
pub const EXPERIMENT_DETECTION: &str = "Detection";
pub const EXPERIMENT_REPAIR: &str = "Repair";
/// Job-service lifecycle runs (one run per submitted job).
pub const EXPERIMENT_JOBS: &str = "Jobs";

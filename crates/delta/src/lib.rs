//! # datalens-delta
//!
//! Dataset versioning — the reproduction's stand-in for Delta Lake /
//! delta-rs (§5 "Reproducible Data Quality"). A [`DeltaTable`] is a
//! directory holding full-snapshot data files plus an append-only
//! `_delta_log/` of JSON commits (protocol / metaData / commitInfo / add /
//! remove actions, the delta-rs action vocabulary). Supported operations:
//! create, commit, time travel by version, append-only rollback, history,
//! and integrity checking (contiguous versions, parseable actions).
//!
//! Substitution note: data files are CSV rather than parquet — the
//! versioning semantics the paper depends on (immutable versions,
//! rollback, DataSheet version references) are format-independent.
//!
//! ```
//! use datalens_delta::DeltaTable;
//! use datalens_table::{Column, Table};
//!
//! let dir = std::env::temp_dir().join(format!("dl_doc_{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let t0 = Table::new("d", vec![Column::from_i64("x", [Some(1)])]).unwrap();
//! let dt = DeltaTable::create(&dir, &t0, "CREATE").unwrap();
//! let t1 = Table::new("d", vec![Column::from_i64("x", [Some(2)])]).unwrap();
//! dt.commit(&t1, "REPAIR").unwrap();
//! assert_eq!(dt.load_version(0).unwrap(), t0);
//! assert_eq!(dt.load().unwrap(), t1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod log;
pub mod table_store;

pub use log::{Action, CommitInfo, DeltaError, MetaData};
pub use table_store::{DeltaTable, HistoryEntry};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use datalens_table::{Column, Table};

    use crate::DeltaTable;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any sequence of commits time-travels back exactly.
        #[test]
        fn every_version_round_trips(
            snapshots in proptest::collection::vec(
                proptest::collection::vec(proptest::option::of(-1000i64..1000), 1..8),
                1..6,
            ),
            tag in 0u32..1_000_000,
        ) {
            let root = std::env::temp_dir().join(format!(
                "datalens_delta_prop_{}_{tag}",
                std::process::id()
            ));
            std::fs::remove_dir_all(&root).ok();
            let tables: Vec<Table> = snapshots
                .iter()
                .map(|vals| {
                    Table::new("p", vec![Column::from_i64("x", vals.clone())]).unwrap()
                })
                .collect();
            let dt = DeltaTable::create(&root, &tables[0], "CREATE").unwrap();
            for t in &tables[1..] {
                dt.commit(t, "WRITE").unwrap();
            }
            for (v, t) in tables.iter().enumerate() {
                prop_assert_eq!(&dt.load_version(v as u64).unwrap(), t);
            }
            prop_assert_eq!(dt.latest_version().unwrap() as usize, tables.len() - 1);
            std::fs::remove_dir_all(&root).ok();
        }
    }
}

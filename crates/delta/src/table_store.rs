//! The versioned table: create / commit / time travel / rollback.
//!
//! §5 of the paper: "Upon the initial upload of a dataset, a Delta Lake is
//! instantiated … Each iteration of the dataset is preserved … allowing
//! historical tracking, comparison across versions, and the ability to
//! revert to earlier versions." Every repair commits a new version;
//! rollback is itself a new commit (history is append-only, exactly as the
//! paper requires: "this process does not overwrite or erase previous
//! versions").

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use datalens_table::csv::{read_csv_str, write_csv_str, CsvOptions};
use datalens_table::Table;

use crate::log::{
    latest_version, now_millis, read_commit, write_commit, Action, AddFile, CommitInfo, DeltaError,
    MetaData, RemoveFile,
};

/// A versioned table rooted at a directory.
#[derive(Debug, Clone)]
pub struct DeltaTable {
    root: PathBuf,
}

/// One history entry as returned by [`DeltaTable::history`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    pub version: u64,
    pub info: CommitInfo,
}

impl DeltaTable {
    /// Create a new versioned table at `root` with `table` as version 0.
    ///
    /// Fails if a log already exists there.
    pub fn create(
        root: impl Into<PathBuf>,
        table: &Table,
        operation: &str,
    ) -> Result<DeltaTable, DeltaError> {
        let root = root.into();
        if latest_version(&root)?.is_some() {
            return Err(DeltaError::Corrupt(format!(
                "a delta table already exists at {}",
                root.display()
            )));
        }
        let dt = DeltaTable { root };
        let meta = MetaData {
            id: format!("dl-{:016x}", now_millis()),
            name: table.name().to_string(),
            schema_string: schema_string(table),
            created_time: now_millis(),
        };
        dt.write_version(0, table, operation, Some(meta), None)?;
        Ok(dt)
    }

    /// Open an existing versioned table.
    pub fn open(root: impl Into<PathBuf>) -> Result<DeltaTable, DeltaError> {
        let root = root.into();
        latest_version(&root)?
            .ok_or_else(|| DeltaError::Corrupt(format!("no delta log at {}", root.display())))?;
        Ok(DeltaTable { root })
    }

    /// Open if a log exists, otherwise create with `table` as version 0.
    pub fn open_or_create(
        root: impl Into<PathBuf>,
        table: &Table,
        operation: &str,
    ) -> Result<DeltaTable, DeltaError> {
        let root = root.into();
        if latest_version(&root)?.is_some() {
            Ok(DeltaTable { root })
        } else {
            DeltaTable::create(root, table, operation)
        }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Latest committed version.
    pub fn latest_version(&self) -> Result<u64, DeltaError> {
        latest_version(&self.root)?.ok_or_else(|| DeltaError::Corrupt("log disappeared".into()))
    }

    /// Commit `table` as a new version. Returns the new version number.
    pub fn commit(&self, table: &Table, operation: &str) -> Result<u64, DeltaError> {
        self.commit_with(table, operation, BTreeMap::new())
    }

    /// Commit with operation parameters (recorded in commitInfo).
    ///
    /// Optimistic concurrency: if another writer committed the same
    /// version number since we read the log, the commit is rejected
    /// rather than silently overwritten (delta-rs's conflict semantics).
    pub fn commit_with(
        &self,
        table: &Table,
        operation: &str,
        params: BTreeMap<String, String>,
    ) -> Result<u64, DeltaError> {
        let version = self.latest_version()? + 1;
        let prev_file = self.data_file_of(version - 1)?;
        self.write_version_with_params(version, table, operation, None, prev_file, params)?;
        Ok(version)
    }

    /// Load the latest snapshot.
    pub fn load(&self) -> Result<Table, DeltaError> {
        self.load_version(self.latest_version()?)
    }

    /// Load the snapshot at `version` (time travel).
    pub fn load_version(&self, version: u64) -> Result<Table, DeltaError> {
        let path = self
            .data_file_of(version)?
            .ok_or_else(|| DeltaError::Corrupt(format!("version {version} has no data file")))?;
        let text = fs::read_to_string(self.root.join(&path))?;
        let name = path.trim_end_matches(".csv").to_string();
        let mut t = read_csv_str(&name, &text, &CsvOptions::default())?;
        // Restore the logical name and recorded column types from
        // metadata — CSV inference cannot type an all-null column.
        if let Some(meta) = self.metadata()? {
            t.set_name(meta.name);
            for entry in meta.schema_string.split(',') {
                let Some((col_name, dtype_name)) = entry.split_once(':') else {
                    continue;
                };
                let Some(dtype) = datalens_table::DataType::from_name(dtype_name) else {
                    continue;
                };
                if let Some(col) = t.column_by_name(col_name) {
                    if col.dtype() != dtype {
                        let cast = col.cast(dtype);
                        t.replace_column(cast)?;
                    }
                }
            }
        }
        Ok(t)
    }

    /// Roll back to `version`: commits that old snapshot as a brand-new
    /// version (history preserved). Returns the new version number.
    pub fn rollback(&self, version: u64) -> Result<u64, DeltaError> {
        let old = self.load_version(version)?;
        let mut params = BTreeMap::new();
        params.insert("rollback_to".to_string(), version.to_string());
        self.commit_with(&old, "ROLLBACK", params)
    }

    /// Full commit history, oldest first.
    pub fn history(&self) -> Result<Vec<HistoryEntry>, DeltaError> {
        let latest = self.latest_version()?;
        let mut out = Vec::new();
        for v in 0..=latest {
            let actions = read_commit(&self.root, v)?;
            let info = actions
                .into_iter()
                .find_map(|a| match a {
                    Action::CommitInfo(ci) => Some(ci),
                    _ => None,
                })
                .ok_or_else(|| DeltaError::Corrupt(format!("version {v} lacks commitInfo")))?;
            out.push(HistoryEntry { version: v, info });
        }
        Ok(out)
    }

    /// Table metadata (recorded at version 0).
    pub fn metadata(&self) -> Result<Option<MetaData>, DeltaError> {
        let actions = read_commit(&self.root, 0)?;
        Ok(actions.into_iter().find_map(|a| match a {
            Action::MetaData(m) => Some(m),
            _ => None,
        }))
    }

    /// The data file path recorded by `version`'s add action.
    fn data_file_of(&self, version: u64) -> Result<Option<String>, DeltaError> {
        let actions = read_commit(&self.root, version)?;
        Ok(actions.into_iter().find_map(|a| match a {
            Action::Add(add) => Some(add.path),
            _ => None,
        }))
    }

    fn write_version(
        &self,
        version: u64,
        table: &Table,
        operation: &str,
        meta: Option<MetaData>,
        remove: Option<String>,
    ) -> Result<(), DeltaError> {
        self.write_version_with_params(version, table, operation, meta, remove, BTreeMap::new())
    }

    fn write_version_with_params(
        &self,
        version: u64,
        table: &Table,
        operation: &str,
        meta: Option<MetaData>,
        remove: Option<String>,
        params: BTreeMap<String, String>,
    ) -> Result<(), DeltaError> {
        // Write the data snapshot first, then the commit (readers resolve
        // through the log, so a torn write never exposes a half version).
        let data_name = format!("part-{version:05}.csv");
        fs::create_dir_all(&self.root)?;
        let csv = write_csv_str(table);
        fs::write(self.root.join(&data_name), &csv)?;

        let mut actions = Vec::new();
        if version == 0 {
            actions.push(Action::Protocol {
                min_reader_version: 1,
                min_writer_version: 2,
            });
        }
        if let Some(meta) = meta {
            actions.push(Action::MetaData(meta));
        }
        actions.push(Action::CommitInfo(CommitInfo {
            timestamp: now_millis(),
            operation: operation.to_string(),
            operation_parameters: params,
        }));
        if let Some(prev) = remove {
            actions.push(Action::Remove(RemoveFile {
                path: prev,
                data_change: true,
            }));
        }
        actions.push(Action::Add(AddFile {
            path: data_name,
            size: csv.len() as u64,
            data_change: true,
        }));
        write_commit(&self.root, version, &actions)
    }
}

/// Compact textual schema fingerprint recorded in metadata.
fn schema_string(table: &Table) -> String {
    table
        .schema()
        .fields()
        .iter()
        .map(|f| format!("{}:{}", f.name, f.dtype))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::{CellRef, Column, Value};

    fn tmp(name: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("datalens_delta_tbl_{}_{name}", std::process::id()));
        fs::remove_dir_all(&p).ok();
        p
    }

    fn sample(v: i64) -> Table {
        Table::new(
            "cities",
            vec![
                Column::from_i64("id", [Some(1), Some(2)]),
                Column::from_i64("x", [Some(v), Some(v * 2)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn create_commit_time_travel() {
        let root = tmp("basic");
        let dt = DeltaTable::create(&root, &sample(10), "CREATE").unwrap();
        assert_eq!(dt.latest_version().unwrap(), 0);
        let v1 = dt.commit(&sample(20), "REPAIR").unwrap();
        assert_eq!(v1, 1);
        let v2 = dt.commit(&sample(30), "REPAIR").unwrap();
        assert_eq!(v2, 2);

        assert_eq!(
            dt.load_version(0).unwrap().get_at(0, "x").unwrap(),
            Value::Int(10)
        );
        assert_eq!(
            dt.load_version(1).unwrap().get_at(0, "x").unwrap(),
            Value::Int(20)
        );
        assert_eq!(dt.load().unwrap().get_at(0, "x").unwrap(), Value::Int(30));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn time_travel_is_byte_identical() {
        let root = tmp("identical");
        let original = sample(7);
        let dt = DeltaTable::create(&root, &original, "CREATE").unwrap();
        dt.commit(&sample(99), "REPAIR").unwrap();
        let back = dt.load_version(0).unwrap();
        assert_eq!(back, original);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rollback_is_a_new_version() {
        let root = tmp("rollback");
        let dt = DeltaTable::create(&root, &sample(1), "CREATE").unwrap();
        dt.commit(&sample(2), "REPAIR").unwrap();
        let v = dt.rollback(0).unwrap();
        assert_eq!(v, 2);
        assert_eq!(dt.load().unwrap(), sample(1));
        // Old versions still readable — nothing was erased.
        assert_eq!(dt.load_version(1).unwrap(), sample(2));
        let hist = dt.history().unwrap();
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[2].info.operation, "ROLLBACK");
        assert_eq!(hist[2].info.operation_parameters["rollback_to"], "0");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let root = tmp("clobber");
        DeltaTable::create(&root, &sample(1), "CREATE").unwrap();
        assert!(DeltaTable::create(&root, &sample(2), "CREATE").is_err());
        // open_or_create opens instead.
        let dt = DeltaTable::open_or_create(&root, &sample(3), "CREATE").unwrap();
        assert_eq!(dt.load().unwrap(), sample(1));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_missing_fails() {
        assert!(DeltaTable::open(tmp("nothing")).is_err());
    }

    #[test]
    fn unknown_version_errors() {
        let root = tmp("unknown");
        let dt = DeltaTable::create(&root, &sample(1), "CREATE").unwrap();
        assert!(matches!(
            dt.load_version(5),
            Err(DeltaError::UnknownVersion(5))
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn history_and_metadata() {
        let root = tmp("history");
        let dt = DeltaTable::create(&root, &sample(1), "CREATE").unwrap();
        let mut params = BTreeMap::new();
        params.insert("tool".into(), "ml_imputer".into());
        dt.commit_with(&sample(2), "REPAIR", params).unwrap();
        let hist = dt.history().unwrap();
        assert_eq!(hist[0].info.operation, "CREATE");
        assert_eq!(hist[1].info.operation_parameters["tool"], "ml_imputer");
        let meta = dt.metadata().unwrap().unwrap();
        assert_eq!(meta.name, "cities");
        assert!(meta.schema_string.contains("id:int"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn truncated_log_detected() {
        let root = tmp("truncated");
        let dt = DeltaTable::create(&root, &sample(1), "CREATE").unwrap();
        dt.commit(&sample(2), "REPAIR").unwrap();
        // Delete version 1's commit file → gap if there were a v2, here it
        // just shortens; delete v0 instead to corrupt.
        fs::remove_file(crate::log::commit_path(&root, 0)).unwrap();
        assert!(matches!(
            DeltaTable::open(&root),
            Err(DeltaError::Corrupt(_))
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn racing_writers_conflict_instead_of_overwriting() {
        let root = tmp("race");
        DeltaTable::create(&root, &sample(1), "CREATE").unwrap();
        // Two writers that both decided on version 1: the second write
        // must fail with a conflict, never overwrite.
        crate::log::write_commit(&root, 1, &[]).unwrap();
        let err = crate::log::write_commit(&root, 1, &[]);
        assert!(
            matches!(err, Err(DeltaError::Corrupt(ref m)) if m.contains("concurrent")),
            "{err:?}"
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn mutations_do_not_leak_across_versions() {
        let root = tmp("leak");
        let dt = DeltaTable::create(&root, &sample(1), "CREATE").unwrap();
        let mut t = dt.load().unwrap();
        t.set(CellRef::new(0, 1), Value::Int(555)).unwrap();
        dt.commit(&t, "EDIT").unwrap();
        assert_eq!(
            dt.load_version(0).unwrap().get_at(0, "x").unwrap(),
            Value::Int(1)
        );
        fs::remove_dir_all(&root).ok();
    }
}

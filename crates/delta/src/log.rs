//! The transaction log: JSON-lines action files, one per version, in
//! `_delta_log/` — the delta-rs on-disk protocol shape (with CSV data
//! files instead of parquet; see DESIGN.md for the substitution note).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Subdirectory holding the commit log.
pub const LOG_DIR: &str = "_delta_log";

/// Errors from the versioned store.
#[derive(Debug)]
pub enum DeltaError {
    Io(io::Error),
    /// The log is malformed (bad JSON, missing actions…).
    Corrupt(String),
    /// A requested version does not exist.
    UnknownVersion(u64),
    /// The underlying table failed to parse.
    Table(datalens_table::TableError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Io(e) => write!(f, "I/O error: {e}"),
            DeltaError::Corrupt(m) => write!(f, "corrupt delta log: {m}"),
            DeltaError::UnknownVersion(v) => write!(f, "version {v} does not exist"),
            DeltaError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<io::Error> for DeltaError {
    fn from(e: io::Error) -> Self {
        DeltaError::Io(e)
    }
}

impl From<datalens_table::TableError> for DeltaError {
    fn from(e: datalens_table::TableError) -> Self {
        DeltaError::Table(e)
    }
}

/// Table metadata recorded at creation (version 0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct MetaData {
    pub id: String,
    pub name: String,
    pub schema_string: String,
    pub created_time: u64,
}

/// Commit provenance (every version).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct CommitInfo {
    pub timestamp: u64,
    pub operation: String,
    #[serde(default)]
    pub operation_parameters: std::collections::BTreeMap<String, String>,
}

/// A file added to the snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct AddFile {
    pub path: String,
    pub size: u64,
    pub data_change: bool,
}

/// A file removed from the snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct RemoveFile {
    pub path: String,
    pub data_change: bool,
}

/// One action line in a commit file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub enum Action {
    Protocol {
        min_reader_version: u32,
        min_writer_version: u32,
    },
    MetaData(MetaData),
    CommitInfo(CommitInfo),
    Add(AddFile),
    Remove(RemoveFile),
}

/// Path of the commit file for `version` under `root`.
pub fn commit_path(root: &Path, version: u64) -> PathBuf {
    root.join(LOG_DIR).join(format!("{version:020}.json"))
}

/// Write a commit: one JSON action per line. The commit file is claimed
/// with `create_new`, so two writers racing for the same version number
/// cannot silently overwrite each other — the loser gets a conflict
/// (delta-rs's optimistic-concurrency semantics).
pub fn write_commit(root: &Path, version: u64, actions: &[Action]) -> Result<(), DeltaError> {
    use std::io::Write;
    let path = commit_path(root, version);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = String::new();
    for a in actions {
        out.push_str(
            &serde_json::to_string(a)
                .map_err(|e| DeltaError::Corrupt(format!("serialise action: {e}")))?,
        );
        out.push('\n');
    }
    let mut file = fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&path)
        .map_err(|e| {
            if e.kind() == io::ErrorKind::AlreadyExists {
                DeltaError::Corrupt(format!(
                    "concurrent commit detected: version {version} already exists"
                ))
            } else {
                DeltaError::Io(e)
            }
        })?;
    file.write_all(out.as_bytes())?;
    Ok(())
}

/// Read the actions of one commit.
pub fn read_commit(root: &Path, version: u64) -> Result<Vec<Action>, DeltaError> {
    let path = commit_path(root, version);
    if !path.is_file() {
        return Err(DeltaError::UnknownVersion(version));
    }
    let text = fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            serde_json::from_str(l)
                .map_err(|e| DeltaError::Corrupt(format!("version {version}: {e}")))
        })
        .collect()
}

/// Latest contiguous version in the log, or `None` for an empty log.
pub fn latest_version(root: &Path) -> Result<Option<u64>, DeltaError> {
    let dir = root.join(LOG_DIR);
    if !dir.is_dir() {
        return Ok(None);
    }
    let mut versions: Vec<u64> = Vec::new();
    for entry in fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name.strip_suffix(".json") {
            if let Ok(v) = stem.parse::<u64>() {
                versions.push(v);
            }
        }
    }
    if versions.is_empty() {
        return Ok(None);
    }
    versions.sort_unstable();
    // Contiguity check: versions must be 0..=max.
    for (i, v) in versions.iter().enumerate() {
        if *v != i as u64 {
            return Err(DeltaError::Corrupt(format!(
                "log gap: expected version {i}, found {v}"
            )));
        }
    }
    Ok(versions.last().copied())
}

/// Milliseconds since the epoch (commit timestamps).
pub fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("datalens_delta_log_{}_{name}", std::process::id()));
        fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn commit_round_trip() {
        let root = tmp("rt");
        let actions = vec![
            Action::Protocol {
                min_reader_version: 1,
                min_writer_version: 2,
            },
            Action::CommitInfo(CommitInfo {
                timestamp: 123,
                operation: "WRITE".into(),
                operation_parameters: Default::default(),
            }),
            Action::Add(AddFile {
                path: "part-0.csv".into(),
                size: 42,
                data_change: true,
            }),
        ];
        write_commit(&root, 0, &actions).unwrap();
        let back = read_commit(&root, 0).unwrap();
        assert_eq!(back, actions);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_version_errors() {
        let root = tmp("missing");
        assert!(matches!(
            read_commit(&root, 7),
            Err(DeltaError::UnknownVersion(7))
        ));
    }

    #[test]
    fn latest_version_checks_contiguity() {
        let root = tmp("contig");
        write_commit(&root, 0, &[]).unwrap();
        write_commit(&root, 1, &[]).unwrap();
        assert_eq!(latest_version(&root).unwrap(), Some(1));
        // Introduce a gap.
        write_commit(&root, 3, &[]).unwrap();
        assert!(matches!(latest_version(&root), Err(DeltaError::Corrupt(_))));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_log_is_none() {
        let root = tmp("empty");
        assert_eq!(latest_version(&root).unwrap(), None);
    }

    #[test]
    fn corrupt_json_surfaces() {
        let root = tmp("corrupt");
        let path = commit_path(&root, 0);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, "{not json\n").unwrap();
        assert!(matches!(read_commit(&root, 0), Err(DeltaError::Corrupt(_))));
        fs::remove_dir_all(&root).ok();
    }
}

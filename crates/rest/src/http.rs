//! Minimal HTTP/1.1 message types and wire parsing.
//!
//! Supports what a tool-integration bus needs — GET/POST/PUT/DELETE,
//! headers, Content-Length bodies, JSON helpers, HTTP/1.1 keep-alive
//! (persistent connections with `Connection: close` / `keep-alive`
//! negotiation), and **long-lived streaming responses** ([`Body::Stream`]
//! — the transport under Server-Sent-Events) — and nothing more (no
//! chunked encoding, no pipelining of unanswered requests).
//!
//! Parsing is strict where sloppiness would desynchronize a persistent
//! connection: a malformed or duplicate `Content-Length` is a hard
//! [`HttpError::Malformed`] (answered as 400 and closed by the server)
//! rather than a silently assumed empty body that would make the body
//! bytes parse as the next request's start.
//!
//! A streaming body has no `Content-Length`; the message is delimited by
//! connection teardown (`Connection: close`), so a stream always ends
//! the connection it was served on.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::time::Duration;

/// Supported methods: the three the paper's integration layer uses plus
/// DELETE for cancelling jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    Get,
    Post,
    Put,
    Delete,
}

impl Method {
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP errors surfaced by parsing or I/O.
#[derive(Debug)]
pub enum HttpError {
    Io(io::Error),
    /// Malformed request or response on the wire.
    Malformed(String),
    /// Body larger than the configured cap.
    BodyTooLarge(usize),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "I/O error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed HTTP: {m}"),
            HttpError::BodyTooLarge(n) => write!(f, "body of {n} bytes exceeds cap"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Default maximum accepted body size (16 MiB — dashboard-scale CSVs fit
/// easily). Servers can lower or raise the cap per listener; see
/// [`Request::read_from_capped`].
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: Method,
    /// Path without query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
    /// Protocol version from the request line (`"HTTP/1.1"` when absent).
    pub version: String,
}

impl Request {
    /// Build an outgoing request.
    pub fn new(method: Method, path_and_query: &str, body: Vec<u8>) -> Request {
        let (path, query) = split_query(path_and_query);
        Request {
            method,
            path,
            query,
            headers: BTreeMap::new(),
            body,
            version: "HTTP/1.1".into(),
        }
    }

    /// Whether the client asked (or defaulted) to keep the connection
    /// open after this request: an explicit `Connection` header wins,
    /// otherwise HTTP/1.1 defaults to keep-alive and older versions to
    /// close.
    ///
    /// The header value is a comma-separated token list (RFC 9110
    /// §7.6.1) and is compared token-by-token: `close-notify` is *not* a
    /// close request, and `keep-alive, upgrade` still keeps the
    /// connection. (A substring `contains` here used to misclassify any
    /// value that merely embedded `close` or `keep-alive`.)
    pub fn wants_keep_alive(&self) -> bool {
        if let Some(v) = self.headers.get("connection") {
            let mut keep = false;
            for token in v.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    // `close` wins over any other token in the list.
                    return false;
                }
                if token.eq_ignore_ascii_case("keep-alive") {
                    keep = true;
                }
            }
            if keep {
                return true;
            }
        }
        self.version == "HTTP/1.1"
    }

    /// Parse the request body as JSON.
    pub fn json<T: serde::de::DeserializeOwned>(&self) -> Result<T, HttpError> {
        serde_json::from_slice(&self.body)
            .map_err(|e| HttpError::Malformed(format!("JSON body: {e}")))
    }

    /// Read one request off a stream with the default body cap.
    pub fn read_from(stream: impl Read) -> Result<Request, HttpError> {
        Request::read_from_capped(stream, MAX_BODY)
    }

    /// Read one request off a stream, rejecting any declared
    /// `Content-Length` above `max_body` *before* buffering the body.
    pub fn read_from_capped(stream: impl Read, max_body: usize) -> Result<Request, HttpError> {
        let mut reader = BufReader::new(stream);
        Request::read_from_buffered(&mut reader, max_body)?
            .ok_or_else(|| HttpError::Malformed("empty request".into()))
    }

    /// Read one request off a persistent (keep-alive) connection.
    /// Returns `Ok(None)` on a clean close — EOF before any request
    /// byte — which is how a keep-alive peer ends the conversation.
    pub fn read_from_buffered(
        reader: &mut impl BufRead,
        max_body: usize,
    ) -> Result<Option<Request>, HttpError> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or_else(|| HttpError::Malformed(format!("request line {line:?}")))?;
        let target = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
            .to_string();
        let version = parts.next().unwrap_or("HTTP/1.1").to_string();
        let headers = read_headers(reader)?;
        let body = read_body(reader, &headers, max_body)?;
        let (path, query) = split_query(&target);
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            body,
            version,
        }))
    }

    /// Serialise onto a stream (client side), closing after the
    /// exchange.
    pub fn write_to(&self, w: impl Write, host: &str) -> Result<(), HttpError> {
        self.write_to_conn(w, host, false)
    }

    /// Serialise onto a stream (client side), negotiating `keep_alive`
    /// via the `Connection` header.
    pub fn write_to_conn(
        &self,
        mut w: impl Write,
        host: &str,
        keep_alive: bool,
    ) -> Result<(), HttpError> {
        let mut target = self.path.clone();
        if !self.query.is_empty() {
            let q: Vec<String> = self
                .query
                .iter()
                .map(|(k, v)| format!("{}={}", urlencode(k), urlencode(v)))
                .collect();
            target = format!("{target}?{}", q.join("&"));
        }
        write!(w, "{} {} HTTP/1.1\r\n", self.method, target)?;
        write!(w, "host: {host}\r\n")?;
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(
            w,
            "connection: {}\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }
}

/// One pull from a [`StreamSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamChunk {
    /// Bytes to write and flush to the peer immediately.
    Data(Vec<u8>),
    /// Nothing available within the wait window — the caller may emit a
    /// heartbeat comment and poll again.
    Pending,
    /// The stream finished cleanly; tear the connection down.
    End,
}

/// A pull-based producer of streaming body chunks.
///
/// The *server* owns pacing: it calls [`StreamSource::next_chunk`] with
/// a bounded wait so it can interleave heartbeats, per-write deadlines,
/// and shutdown checks between chunks. Implementations block at most
/// `wait` before answering (returning [`StreamChunk::Pending`] when
/// nothing new arrived). Dropping the source is the unsubscribe signal
/// — implementations release any broadcast registration in `Drop`.
pub trait StreamSource: Send {
    /// Produce the next chunk, waiting up to `wait` for one.
    fn next_chunk(&mut self, wait: Duration) -> StreamChunk;
}

/// A streaming response body: an open-ended sequence of chunks written
/// incrementally (flush per chunk) on a connection that closes when the
/// stream ends.
pub struct StreamBody {
    /// The chunk producer. Boxed so handlers can return any source.
    pub source: Box<dyn StreamSource>,
}

impl fmt::Debug for StreamBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StreamBody { .. }")
    }
}

/// A response body: either fully buffered bytes (delimited by
/// `Content-Length`) or an incremental stream (delimited by connection
/// close).
#[derive(Debug)]
pub enum Body {
    Bytes(Vec<u8>),
    Stream(StreamBody),
}

impl Body {
    /// The buffered bytes, or empty for a stream (whose bytes are
    /// produced incrementally and never buffered).
    pub fn bytes(&self) -> &[u8] {
        match self {
            Body::Bytes(b) => b,
            Body::Stream(_) => &[],
        }
    }

    pub fn is_stream(&self) -> bool {
        matches!(self, Body::Stream(_))
    }
}

impl From<Vec<u8>> for Body {
    fn from(b: Vec<u8>) -> Body {
        Body::Bytes(b)
    }
}

/// A response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: BTreeMap<String, String>,
    pub body: Body,
}

impl Response {
    pub fn new(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: BTreeMap::new(),
            body: Body::Bytes(body),
        }
    }

    /// A `200` streaming response over `source`. The server writes the
    /// head (no `Content-Length`, `Connection: close`, `Cache-Control:
    /// no-cache`) and then pumps chunks with per-write deadlines until
    /// the source ends or the peer disconnects.
    pub fn stream(content_type: &str, source: impl StreamSource + 'static) -> Response {
        let mut headers = BTreeMap::new();
        headers.insert("content-type".into(), content_type.to_string());
        headers.insert("cache-control".into(), "no-cache".into());
        Response {
            status: 200,
            headers,
            body: Body::Stream(StreamBody {
                source: Box::new(source),
            }),
        }
    }

    /// The buffered body bytes (empty for streaming responses).
    pub fn body_bytes(&self) -> &[u8] {
        self.body.bytes()
    }

    /// 200 with a JSON body. A value that fails to serialise becomes a
    /// 500 instead of panicking the HTTP worker.
    pub fn json<T: serde::Serialize>(value: &T) -> Response {
        match serde_json::to_vec(value) {
            Ok(body) => {
                let mut r = Response::new(200, body);
                r.headers
                    .insert("content-type".into(), "application/json".into());
                r
            }
            Err(e) => Response::error(500, &format!("response serialisation failed: {e}")),
        }
    }

    /// An error response with a JSON `{"error": …}` body. The body is
    /// built by hand (with escaping) so the error path is panic-free no
    /// matter what the message contains.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::with_capacity(message.len() + 16);
        body.push_str("{\"error\": \"");
        for c in message.chars() {
            match c {
                '"' => body.push_str("\\\""),
                '\\' => body.push_str("\\\\"),
                '\n' => body.push_str("\\n"),
                '\r' => body.push_str("\\r"),
                '\t' => body.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    body.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => body.push(c),
            }
        }
        body.push_str("\"}");
        let mut r = Response::new(status, body.into_bytes());
        r.headers
            .insert("content-type".into(), "application/json".into());
        r
    }

    /// Attach a `Retry-After` header (whole seconds, floor 1) — the
    /// back-off contract on load-shedding 429/503 responses.
    pub fn with_retry_after(mut self, secs: u64) -> Response {
        self.headers
            .insert("retry-after".into(), secs.max(1).to_string());
        self
    }

    /// Parse the response body as JSON.
    pub fn json_body<T: serde::de::DeserializeOwned>(&self) -> Result<T, HttpError> {
        serde_json::from_slice(self.body.bytes())
            .map_err(|e| HttpError::Malformed(format!("JSON body: {e}")))
    }

    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Read one response off a stream (client side).
    pub fn read_from(stream: impl Read) -> Result<Response, HttpError> {
        let mut reader = BufReader::new(stream);
        Response::read_from_buffered(&mut reader)
    }

    /// Read one response off a persistent (keep-alive) connection whose
    /// buffered reader outlives the exchange.
    pub fn read_from_buffered(reader: &mut impl BufRead) -> Result<Response, HttpError> {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let mut parts = line.split_whitespace();
        let version = parts.next().unwrap_or_default();
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!("status line {line:?}")));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::Malformed(format!("status in {line:?}")))?;
        let headers = read_headers(reader)?;
        let body = read_body(reader, &headers, MAX_BODY)?;
        Ok(Response {
            status,
            headers,
            body: Body::Bytes(body),
        })
    }

    /// Serialise onto a stream (server side), closing after the
    /// exchange.
    pub fn write_to(&mut self, w: impl Write) -> Result<(), HttpError> {
        self.write_to_conn(w, false)
    }

    /// Serialise onto a stream (server side), advertising whether the
    /// server will keep the connection open.
    ///
    /// A streaming body ignores `keep_alive` (the message is delimited
    /// by connection close) and is drained to completion inline —
    /// useful for in-memory tests. The live server instead writes the
    /// head with [`Response::write_stream_head`] and pumps chunks
    /// itself so it can interleave heartbeats and per-write deadlines.
    pub fn write_to_conn(&mut self, mut w: impl Write, keep_alive: bool) -> Result<(), HttpError> {
        if self.body.is_stream() {
            self.write_stream_head(&mut w)?;
        } else {
            write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
            write!(w, "content-length: {}\r\n", self.body.bytes().len())?;
            write!(
                w,
                "connection: {}\r\n",
                if keep_alive { "keep-alive" } else { "close" }
            )?;
            for (k, v) in &self.headers {
                write!(w, "{k}: {v}\r\n")?;
            }
            write!(w, "\r\n")?;
        }
        match &mut self.body {
            Body::Bytes(body) => {
                w.write_all(body)?;
                w.flush()?;
            }
            Body::Stream(stream) => loop {
                match stream.source.next_chunk(Duration::from_millis(50)) {
                    StreamChunk::Data(bytes) => {
                        w.write_all(&bytes)?;
                        w.flush()?;
                    }
                    StreamChunk::Pending => continue,
                    StreamChunk::End => break,
                }
            },
        }
        Ok(())
    }

    /// Write just the head of a streaming response: status line, the
    /// response headers, `Connection: close`, and **no**
    /// `Content-Length` — the body that follows is delimited by
    /// connection teardown.
    pub fn write_stream_head(&self, mut w: impl Write) -> Result<(), HttpError> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        write!(w, "connection: close\r\n")?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.flush()?;
        Ok(())
    }
}

/// Format one Server-Sent-Events frame: `event:` / optional `id:` /
/// one `data:` line per payload line, terminated by a blank line.
///
/// The caller serialises the payload once at publish time and replays
/// the same bytes to every subscriber, which is what makes event
/// streams bit-identical across connections.
pub fn sse_event(event: &str, id: Option<u64>, data: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(event.len() + data.len() + 32);
    out.extend_from_slice(b"event: ");
    out.extend_from_slice(event.as_bytes());
    out.push(b'\n');
    if let Some(id) = id {
        out.extend_from_slice(b"id: ");
        out.extend_from_slice(id.to_string().as_bytes());
        out.push(b'\n');
    }
    // SSE data may not contain raw newlines in one field line; split
    // multi-line payloads into repeated `data:` lines (the consumer
    // rejoins them with `\n` per the spec).
    for line in data.split('\n') {
        out.extend_from_slice(b"data: ");
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    out.push(b'\n');
    out
}

/// Format an SSE comment line (`: text`). Consumers ignore comments;
/// servers send them as heartbeats to detect dead peers.
pub fn sse_comment(text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(text.len() + 4);
    out.extend_from_slice(b": ");
    out.extend_from_slice(text.as_bytes());
    out.extend_from_slice(b"\n\n");
    out
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn read_headers(reader: &mut impl BufRead) -> Result<BTreeMap<String, String>, HttpError> {
    let mut headers = BTreeMap::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(HttpError::Malformed("EOF inside headers".into()));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            return Ok(headers);
        }
        let Some((k, v)) = trimmed.split_once(':') else {
            return Err(HttpError::Malformed(format!("header line {trimmed:?}")));
        };
        let key = k.trim().to_ascii_lowercase();
        // A repeated Content-Length is a request-smuggling vector on a
        // keep-alive connection (which length delimits the body?).
        // Reject instead of last-wins overwriting.
        if key == "content-length" && headers.contains_key(&key) {
            return Err(HttpError::Malformed("duplicate content-length".into()));
        }
        headers.insert(key, v.trim().to_string());
    }
}

fn read_body(
    reader: &mut impl BufRead,
    headers: &BTreeMap<String, String>,
    max_body: usize,
) -> Result<Vec<u8>, HttpError> {
    // A declared length that does not parse (negative, non-numeric,
    // overflowing) must NOT fall back to 0: under keep-alive the unread
    // body bytes would be parsed as the start of the next request.
    let len: usize = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("content-length {v:?}")))?,
    };
    if len > max_body {
        return Err(HttpError::BodyTooLarge(len));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

fn split_query(target: &str) -> (String, BTreeMap<String, String>) {
    match target.split_once('?') {
        None => (target.to_string(), BTreeMap::new()),
        Some((path, q)) => {
            let mut query = BTreeMap::new();
            for pair in q.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                query.insert(urldecode(k), urldecode(v));
            }
            (path.to_string(), query)
        }
    }
}

/// Percent-encode everything outside the unreserved set.
pub fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decode percent-encoding and `+`-as-space.
pub fn urldecode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    out.push(v);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).to_string()
}

/// Decode percent-encoding in one *path segment*.
///
/// Unlike [`urldecode`] this does **not** map `+` to space (`+` is a
/// literal character in a path, the space shorthand applies only to
/// query strings). Callers must decode per segment — after splitting
/// on `/` — so an encoded `%2F` inside an identifier can never splice
/// segment boundaries and change what route the path matches.
pub fn urldecode_segment(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    out.push(v);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_wire_round_trip() {
        let mut req = Request::new(
            Method::Post,
            "/detect?tool=sd&x=a%20b",
            b"{\"k\":1}".to_vec(),
        );
        req.headers
            .insert("content-type".into(), "application/json".into());
        let mut wire = Vec::new();
        req.write_to(&mut wire, "localhost").unwrap();
        let parsed = Request::read_from(wire.as_slice()).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.path, "/detect");
        assert_eq!(parsed.query["tool"], "sd");
        assert_eq!(parsed.query["x"], "a b");
        assert_eq!(parsed.body, b"{\"k\":1}");
        assert_eq!(parsed.headers["content-type"], "application/json");
    }

    #[test]
    fn response_wire_round_trip() {
        let mut resp = Response::json(&serde_json::json!({"ok": true}));
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let parsed = Response::read_from(wire.as_slice()).unwrap();
        assert_eq!(parsed.status, 200);
        assert!(parsed.is_success());
        let v: serde_json::Value = parsed.json_body().unwrap();
        assert_eq!(v["ok"], true);
    }

    #[test]
    fn error_response_shape() {
        let r = Response::error(404, "no such tool");
        assert_eq!(r.status, 404);
        let v: serde_json::Value = r.json_body().unwrap();
        assert_eq!(v["error"], "no such tool");
        assert!(!r.is_success());
    }

    #[test]
    fn malformed_requests_rejected() {
        assert!(Request::read_from("BREW / HTTP/1.1\r\n\r\n".as_bytes()).is_err());
        assert!(Request::read_from("GET\r\n\r\n".as_bytes()).is_err());
        assert!(Request::read_from("".as_bytes()).is_err());
    }

    #[test]
    fn oversized_body_rejected() {
        let wire = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            Request::read_from(wire.as_bytes()),
            Err(HttpError::BodyTooLarge(_))
        ));
    }

    #[test]
    fn configurable_cap_rejects_before_buffering() {
        // Declared length over the cap is rejected even though the body
        // bytes were never sent — no buffering of unbounded bodies.
        let wire = "POST /x HTTP/1.1\r\ncontent-length: 64\r\n\r\n";
        assert!(matches!(
            Request::read_from_capped(wire.as_bytes(), 16),
            Err(HttpError::BodyTooLarge(64))
        ));
        // The same message passes under a roomier cap (body then EOFs).
        assert!(Request::read_from_capped(wire.as_bytes(), 128).is_err()); // EOF, not TooLarge
        let ok = "POST /x HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
        let parsed = Request::read_from_capped(ok.as_bytes(), 16).unwrap();
        assert_eq!(parsed.body, b"hi");
    }

    #[test]
    fn delete_method_round_trips() {
        assert_eq!(Method::parse("DELETE"), Some(Method::Delete));
        assert_eq!(Method::Delete.as_str(), "DELETE");
        let req = Request::new(Method::Delete, "/jobs/7", Vec::new());
        let mut wire = Vec::new();
        req.write_to(&mut wire, "h").unwrap();
        let parsed = Request::read_from(wire.as_slice()).unwrap();
        assert_eq!(parsed.method, Method::Delete);
        assert_eq!(parsed.path, "/jobs/7");
    }

    #[test]
    fn url_coding_round_trip() {
        for s in ["hello world", "a/b?c=d&e", "ünïcode", "plain"] {
            assert_eq!(urldecode(&urlencode(s)), s);
        }
        assert_eq!(urldecode("a+b"), "a b");
        assert_eq!(urldecode("%zz"), "%zz"); // invalid escape passes through
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let parsed = Request::read_from("GET /x HTTP/1.1\r\n\r\n".as_bytes()).unwrap();
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn malformed_content_length_is_rejected_not_zeroed() {
        // Regression: these used to parse as length 0, leaving the body
        // bytes on the wire to desynchronize a keep-alive connection.
        for bad in ["-5", "abc", "4x", "18446744073709551616"] {
            let wire = format!("POST /x HTTP/1.1\r\ncontent-length: {bad}\r\n\r\nbody");
            assert!(
                matches!(
                    Request::read_from(wire.as_bytes()),
                    Err(HttpError::Malformed(_))
                ),
                "content-length {bad:?} must be malformed"
            );
        }
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        // Regression: duplicates used to be last-wins overwritten.
        let wire = "POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 2\r\n\r\nbody";
        assert!(matches!(
            Request::read_from(wire.as_bytes()),
            Err(HttpError::Malformed(_))
        ));
        // Repeating any *other* header stays last-wins.
        let wire = "POST /x HTTP/1.1\r\nx-tag: a\r\nx-tag: b\r\ncontent-length: 2\r\n\r\nhi";
        let parsed = Request::read_from(wire.as_bytes()).unwrap();
        assert_eq!(parsed.headers["x-tag"], "b");
        assert_eq!(parsed.body, b"hi");
    }

    #[test]
    fn keep_alive_negotiation_follows_header_then_version() {
        let req = |wire: &str| Request::read_from(wire.as_bytes()).unwrap();
        assert!(req("GET /x HTTP/1.1\r\n\r\n").wants_keep_alive());
        assert!(!req("GET /x HTTP/1.0\r\n\r\n").wants_keep_alive());
        assert!(!req("GET /x HTTP/1.1\r\nconnection: close\r\n\r\n").wants_keep_alive());
        assert!(req("GET /x HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").wants_keep_alive());
        assert!(req("GET /x HTTP/1.0\r\nconnection: Keep-Alive\r\n\r\n").wants_keep_alive());
    }

    #[test]
    fn buffered_reads_preserve_pipelined_messages() {
        // Two requests on one stream: the persistent-connection reader
        // must leave the second intact, and report a clean EOF after.
        let wire = "POST /a HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi\
                    GET /b HTTP/1.1\r\n\r\n";
        let mut reader = std::io::BufReader::new(wire.as_bytes());
        let a = Request::read_from_buffered(&mut reader, MAX_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(
            (a.path.as_str(), a.body.as_slice()),
            ("/a", b"hi".as_slice())
        );
        let b = Request::read_from_buffered(&mut reader, MAX_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(b.path, "/b");
        assert!(Request::read_from_buffered(&mut reader, MAX_BODY)
            .unwrap()
            .is_none());
    }

    #[test]
    fn keep_alive_parses_token_list_not_substrings() {
        let req = |conn: &str, version: &str| {
            Request::read_from(format!("GET /x {version}\r\nconnection: {conn}\r\n\r\n").as_bytes())
                .unwrap()
        };
        // Regression: `contains("close")` used to treat these as close.
        assert!(req("close-notify", "HTTP/1.1").wants_keep_alive());
        assert!(req("not-close", "HTTP/1.1").wants_keep_alive());
        // Regression: `contains("keep-alive")` used to keep these open.
        assert!(!req("keep-alive-hint", "HTTP/1.0").wants_keep_alive());
        // Real token lists.
        assert!(req("keep-alive, upgrade", "HTTP/1.0").wants_keep_alive());
        assert!(!req("upgrade, close", "HTTP/1.1").wants_keep_alive());
        // `close` beats `keep-alive` when both appear.
        assert!(!req("keep-alive, close", "HTTP/1.1").wants_keep_alive());
        assert!(!req(" Close ", "HTTP/1.1").wants_keep_alive());
    }

    #[test]
    fn path_segment_decoding() {
        assert_eq!(urldecode_segment("my%20session"), "my session");
        // `+` is literal in a path, unlike in a query string.
        assert_eq!(urldecode_segment("a+b"), "a+b");
        assert_eq!(urldecode_segment("a%2Fb"), "a/b");
        assert_eq!(urldecode_segment("%zz"), "%zz");
        assert_eq!(urldecode_segment("plain"), "plain");
    }

    #[test]
    fn sse_frame_format() {
        let frame = sse_event("progress", Some(3), "{\"n\":1}");
        assert_eq!(
            String::from_utf8(frame).unwrap(),
            "event: progress\nid: 3\ndata: {\"n\":1}\n\n"
        );
        let frame = sse_event("plan", None, "line1\nline2");
        assert_eq!(
            String::from_utf8(frame).unwrap(),
            "event: plan\ndata: line1\ndata: line2\n\n"
        );
        assert_eq!(String::from_utf8(sse_comment("hb")).unwrap(), ": hb\n\n");
    }

    struct Fixed(Vec<StreamChunk>);

    impl StreamSource for Fixed {
        fn next_chunk(&mut self, _wait: Duration) -> StreamChunk {
            if self.0.is_empty() {
                StreamChunk::End
            } else {
                self.0.remove(0)
            }
        }
    }

    #[test]
    fn stream_response_writes_head_then_chunks_no_content_length() {
        let source = Fixed(vec![
            StreamChunk::Data(b"event: a\n\n".to_vec()),
            StreamChunk::Pending,
            StreamChunk::Data(b"event: b\n\n".to_vec()),
        ]);
        let mut resp = Response::stream("text/event-stream", source);
        assert!(resp.body.is_stream());
        assert!(resp.body_bytes().is_empty());
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("content-type: text/event-stream\r\n"));
        assert!(text.contains("cache-control: no-cache\r\n"));
        assert!(!text.contains("content-length"));
        assert!(text.ends_with("\r\n\r\nevent: a\n\nevent: b\n\n"));
    }

    #[test]
    fn json_helpers() {
        let req = Request::new(Method::Put, "/x", b"{\"n\": 5}".to_vec());
        let v: serde_json::Value = req.json().unwrap();
        assert_eq!(v["n"], 5);
        let bad = Request::new(Method::Put, "/x", b"not json".to_vec());
        assert!(bad.json::<serde_json::Value>().is_err());
    }
}

//! # datalens-rest
//!
//! The tool-integration bus — the reproduction's stand-in for the FastAPI
//! REST layer of §3: "REST API serves as a standardized interface that
//! facilitates interaction between DataLens and such external data quality
//! tools … DataLens includes several API calls … POST forwards tasks, GET
//! retrieves results, PUT updates information."
//!
//! A deliberately small HTTP/1.1 stack over `std::net`: [`http`] message
//! types with JSON helpers, a [`server::Server`] that drains accepted
//! connections through a bounded keep-alive worker pool, and a blocking
//! [`client::Client`] (with [`client::Connection`] for persistent
//! keep-alive sessions). Attach a `datalens_obs::Registry` via
//! [`server::ServerConfig::metrics`] and mount [`server::metrics_router`]
//! to expose per-route counters and latency histograms at `GET /metrics`.
//! The adapter that exposes detectors/repairers as endpoints lives in the
//! `datalens` core crate (`datalens::service`), keeping this crate free of
//! domain dependencies.
//!
//! Long-lived responses are first-class: a handler may return
//! [`Response::stream`] over any [`http::StreamSource`], and the server
//! pumps it on a dedicated thread (outside the worker pool, capped by
//! [`ServerConfig::max_streams`]) with heartbeats and per-write
//! deadlines — the transport under the Server-Sent-Events endpoints.
//! [`Client::sse`] is the matching consumer.

pub mod client;
pub mod http;
pub mod server;

pub use client::{Client, Connection, SseEvent, SseStream};
pub use http::{
    sse_comment, sse_event, Body, Method, Request, Response, StreamChunk, StreamSource,
};
pub use server::{metrics_router, PathParams, Router, Server, ServerConfig};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::http::{urldecode, urlencode, Method, Request, Response};

    proptest! {
        /// Any byte body round-trips through the request wire format.
        #[test]
        fn request_body_round_trips(body in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let req = Request::new(Method::Post, "/x", body.clone());
            let mut wire = Vec::new();
            req.write_to(&mut wire, "h").unwrap();
            let parsed = Request::read_from(wire.as_slice()).unwrap();
            prop_assert_eq!(parsed.body, body);
        }

        /// Any status/body round-trips through the response wire format.
        #[test]
        fn response_round_trips(
            status in 200u16..600,
            body in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let mut resp = Response::new(status, body.clone());
            let mut wire = Vec::new();
            resp.write_to(&mut wire).unwrap();
            let parsed = Response::read_from(wire.as_slice()).unwrap();
            prop_assert_eq!(parsed.status, status);
            prop_assert_eq!(parsed.body_bytes(), body.as_slice());
        }

        /// URL coding is a lossless round trip for arbitrary strings.
        #[test]
        fn url_coding_round_trips(s in "\\PC{0,64}") {
            prop_assert_eq!(urldecode(&urlencode(&s)), s);
        }

        /// Query strings survive the wire.
        #[test]
        fn query_round_trips(
            k in "[a-z]{1,8}",
            v in "\\PC{0,24}",
        ) {
            let target = format!("/p?{}={}", urlencode(&k), urlencode(&v));
            let req = Request::new(Method::Get, &target, Vec::new());
            let mut wire = Vec::new();
            req.write_to(&mut wire, "h").unwrap();
            let parsed = Request::read_from(wire.as_slice()).unwrap();
            prop_assert_eq!(parsed.query.get(&k).cloned(), Some(v));
        }
    }
}

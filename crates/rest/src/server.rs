//! Threaded HTTP server with a method+path router.
//!
//! The reproduction's FastAPI: handlers register under `(method, path)`;
//! each accepted connection is served on a worker thread; unmatched paths
//! get 404, unmatched methods 405, panicking handlers 500.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::http::{HttpError, Method, Request, Response};

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Route table builder.
#[derive(Default, Clone)]
pub struct Router {
    routes: HashMap<(Method, String), Handler>,
}

impl Router {
    pub fn new() -> Router {
        Router::default()
    }

    /// Register a handler (builder style).
    pub fn route(
        mut self,
        method: Method,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes
            .insert((method, path.to_string()), Arc::new(handler));
        self
    }

    /// Dispatch one request.
    pub fn dispatch(&self, req: &Request) -> Response {
        if let Some(h) = self.routes.get(&(req.method, req.path.clone())) {
            let handler = Arc::clone(h);
            let req = req.clone();
            // Contain handler panics to a 500 for this request.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || handler(&req))) {
                Ok(resp) => resp,
                Err(_) => Response::error(500, "handler panicked"),
            }
        } else if self.routes.keys().any(|(_, p)| p == &req.path) {
            Response::error(405, "method not allowed")
        } else {
            Response::error(404, "no such route")
        }
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind to 127.0.0.1 on an ephemeral port and start serving.
    pub fn start(router: Router) -> Result<Server, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let router = Arc::new(router);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let router = Arc::clone(&router);
                std::thread::spawn(move || serve_connection(stream, &router));
            }
        });
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Kick the accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: TcpStream, router: &Router) {
    // A stalled client must not pin a worker thread forever.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(30)));
    let Ok(peer_read) = stream.try_clone() else {
        return;
    };
    let response = match Request::read_from(peer_read) {
        Ok(req) => router.dispatch(&req),
        Err(HttpError::BodyTooLarge(_)) => Response::error(413, "body too large"),
        Err(_) => Response::error(400, "malformed request"),
    };
    let _ = response.write_to(&stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn demo_router() -> Router {
        Router::new()
            .route(Method::Get, "/ping", |_| {
                Response::json(&serde_json::json!({"pong": true}))
            })
            .route(Method::Post, "/echo", |req| {
                Response::new(200, req.body.clone())
            })
            .route(Method::Get, "/boom", |_| panic!("kaboom"))
            .route(Method::Put, "/query", |req| {
                Response::json(&serde_json::json!({"q": req.query.get("x")}))
            })
    }

    #[test]
    fn get_and_post_round_trip() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let r = client.get("/ping").unwrap();
        assert_eq!(r.status, 200);
        let v: serde_json::Value = r.json_body().unwrap();
        assert_eq!(v["pong"], true);

        let r = client.post("/echo", b"hello".to_vec()).unwrap();
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn unknown_route_is_404_wrong_method_is_405() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        assert_eq!(client.get("/nope").unwrap().status, 404);
        assert_eq!(client.post("/ping", Vec::new()).unwrap().status, 405);
    }

    #[test]
    fn handler_panic_becomes_500() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let r = client.get("/boom").unwrap();
        assert_eq!(r.status, 500);
    }

    #[test]
    fn query_parameters_reach_handlers() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let r = client.put("/query?x=a%20b", Vec::new()).unwrap();
        let v: serde_json::Value = r.json_body().unwrap();
        assert_eq!(v["q"], "a b");
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::start(demo_router()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = Client::new(addr);
                    let body = format!("msg-{i}").into_bytes();
                    let r = client.post("/echo", body.clone()).unwrap();
                    assert_eq!(r.body, body);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = Server::start(demo_router()).unwrap();
        let addr = server.addr();
        server.shutdown();
        // After shutdown, requests fail (connection refused or reset).
        let client = Client::new(addr);
        assert!(client.get("/ping").is_err());
    }
}

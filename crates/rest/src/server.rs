//! Threaded HTTP server with a method+path router.
//!
//! The reproduction's FastAPI: handlers register under `(method, path)`
//! where path segments may be `{param}` placeholders (`/jobs/{id}`);
//! each accepted connection is served on a worker thread; unmatched paths
//! get 404, unmatched methods 405, panicking handlers 500.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{HttpError, Method, Request, Response, MAX_BODY};

/// Path parameters captured by `{param}` route segments.
pub type PathParams = BTreeMap<String, String>;

/// A request handler. The second argument holds the values captured by
/// the route's `{param}` segments (empty for literal routes).
pub type Handler = Arc<dyn Fn(&Request, &PathParams) -> Response + Send + Sync>;

/// One compiled route-pattern segment.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Param(String),
}

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: Handler,
}

/// Route table builder.
#[derive(Default, Clone)]
pub struct Router {
    routes: Vec<Arc<Route>>,
}

fn compile(path: &str) -> Vec<Segment> {
    path.split('/')
        .filter(|s| !s.is_empty())
        .map(
            |s| match s.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
                Some(name) => Segment::Param(name.to_string()),
                None => Segment::Literal(s.to_string()),
            },
        )
        .collect()
}

impl Router {
    pub fn new() -> Router {
        Router::default()
    }

    /// Register a handler (builder style). `path` may contain `{param}`
    /// segments, captured into the handler's [`PathParams`].
    pub fn route(
        mut self,
        method: Method,
        path: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Arc::new(Route {
            method,
            segments: compile(path),
            handler: Arc::new(handler),
        }));
        self
    }

    /// Append every route of `other` (later registrations win only if
    /// earlier ones never match, so merge disjoint route sets).
    pub fn merge(mut self, other: Router) -> Router {
        self.routes.extend(other.routes);
        self
    }

    /// Match `segments` against a pattern, capturing parameters.
    fn matches(pattern: &[Segment], segments: &[&str]) -> Option<PathParams> {
        if pattern.len() != segments.len() {
            return None;
        }
        let mut params = PathParams::new();
        for (p, s) in pattern.iter().zip(segments) {
            match p {
                Segment::Literal(lit) if lit == s => {}
                Segment::Literal(_) => return None,
                Segment::Param(name) => {
                    params.insert(name.clone(), (*s).to_string());
                }
            }
        }
        Some(params)
    }

    /// Dispatch one request. The route lookup borrows `req.path` — the
    /// request is never cloned.
    pub fn dispatch(&self, req: &Request) -> Response {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        let mut path_matched = false;
        for route in &self.routes {
            let Some(params) = Router::matches(&route.segments, &segments) else {
                continue;
            };
            if route.method != req.method {
                path_matched = true;
                continue;
            }
            // Contain handler panics to a 500 for this request.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (route.handler)(req, &params)
            }));
            return match outcome {
                Ok(resp) => resp,
                Err(_) => Response::error(500, "handler panicked"),
            };
        }
        if path_matched {
            Response::error(405, "method not allowed")
        } else {
            Response::error(404, "no such route")
        }
    }
}

/// Per-listener limits and timeouts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Read timeout on accepted connections (a stalled client cannot pin
    /// a connection thread forever).
    pub read_timeout: Option<Duration>,
    /// Write timeout on accepted connections.
    pub write_timeout: Option<Duration>,
    /// Largest accepted request body; bigger declared `Content-Length`s
    /// are rejected with 413 before any buffering.
    pub max_body: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_body: MAX_BODY,
        }
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind to 127.0.0.1 on an ephemeral port and start serving with the
    /// default limits.
    pub fn start(router: Router) -> Result<Server, HttpError> {
        Server::start_with(router, ServerConfig::default())
    }

    /// [`Server::start`] with explicit limits and timeouts.
    pub fn start_with(router: Router, config: ServerConfig) -> Result<Server, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let router = Arc::new(router);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let router = Arc::clone(&router);
                let config = config.clone();
                std::thread::spawn(move || serve_connection(stream, &router, &config));
            }
        });
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Kick the accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: TcpStream, router: &Router, config: &ServerConfig) {
    let _ = stream.set_read_timeout(config.read_timeout);
    let _ = stream.set_write_timeout(config.write_timeout);
    let Ok(peer_read) = stream.try_clone() else {
        return;
    };
    let response = match Request::read_from_capped(peer_read, config.max_body) {
        Ok(req) => router.dispatch(&req),
        Err(HttpError::BodyTooLarge(_)) => Response::error(413, "body too large"),
        Err(_) => Response::error(400, "malformed request"),
    };
    let _ = response.write_to(&stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn demo_router() -> Router {
        Router::new()
            .route(Method::Get, "/ping", |_, _| {
                Response::json(&serde_json::json!({"pong": true}))
            })
            .route(Method::Post, "/echo", |req, _| {
                Response::new(200, req.body.clone())
            })
            .route(Method::Get, "/boom", |_, _| panic!("kaboom"))
            .route(Method::Put, "/query", |req, _| {
                Response::json(&serde_json::json!({"q": req.query.get("x")}))
            })
            .route(Method::Get, "/jobs/{id}", |_, params| {
                Response::json(&serde_json::json!({"job": params["id"]}))
            })
            .route(Method::Delete, "/jobs/{id}", |_, params| {
                Response::json(&serde_json::json!({"cancelled": params["id"]}))
            })
            .route(Method::Get, "/jobs/{id}/result", |_, params| {
                Response::json(&serde_json::json!({"result_for": params["id"]}))
            })
    }

    #[test]
    fn get_and_post_round_trip() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let r = client.get("/ping").unwrap();
        assert_eq!(r.status, 200);
        let v: serde_json::Value = r.json_body().unwrap();
        assert_eq!(v["pong"], true);

        let r = client.post("/echo", b"hello".to_vec()).unwrap();
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn unknown_route_is_404_wrong_method_is_405() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        assert_eq!(client.get("/nope").unwrap().status, 404);
        assert_eq!(client.post("/ping", Vec::new()).unwrap().status, 405);
    }

    #[test]
    fn path_parameters_are_captured() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let v: serde_json::Value = client.get("/jobs/42").unwrap().json_body().unwrap();
        assert_eq!(v["job"], "42");
        let v: serde_json::Value = client.get("/jobs/42/result").unwrap().json_body().unwrap();
        assert_eq!(v["result_for"], "42");
        let r = client.delete("/jobs/abc").unwrap();
        let v: serde_json::Value = r.json_body().unwrap();
        assert_eq!(v["cancelled"], "abc");
        // Wrong arity does not match the parameterised route.
        assert_eq!(client.get("/jobs").unwrap().status, 404);
        assert_eq!(client.get("/jobs/1/2/3").unwrap().status, 404);
        // Matching path, unregistered method → 405.
        assert_eq!(client.post("/jobs/42", Vec::new()).unwrap().status, 405);
    }

    #[test]
    fn handler_panic_becomes_500() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let r = client.get("/boom").unwrap();
        assert_eq!(r.status, 500);
    }

    #[test]
    fn query_parameters_reach_handlers() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let r = client.put("/query?x=a%20b", Vec::new()).unwrap();
        let v: serde_json::Value = r.json_body().unwrap();
        assert_eq!(v["q"], "a b");
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::start(demo_router()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = Client::new(addr);
                    let body = format!("msg-{i}").into_bytes();
                    let r = client.post("/echo", body.clone()).unwrap();
                    assert_eq!(r.body, body);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn body_cap_is_enforced_per_server() {
        let server = Server::start_with(
            demo_router(),
            ServerConfig {
                max_body: 8,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let client = Client::new(server.addr());
        let r = client.post("/echo", vec![b'x'; 64]).unwrap();
        assert_eq!(r.status, 413);
        let r = client.post("/echo", b"tiny".to_vec()).unwrap();
        assert_eq!(r.status, 200);
    }

    #[test]
    fn merged_routers_serve_both_route_sets() {
        let extra = Router::new().route(Method::Get, "/extra", |_, _| {
            Response::json(&serde_json::json!({"extra": true}))
        });
        let server = Server::start(demo_router().merge(extra)).unwrap();
        let client = Client::new(server.addr());
        assert_eq!(client.get("/ping").unwrap().status, 200);
        assert_eq!(client.get("/extra").unwrap().status, 200);
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = Server::start(demo_router()).unwrap();
        let addr = server.addr();
        server.shutdown();
        // After shutdown, requests fail (connection refused or reset).
        let client = Client::new(addr);
        assert!(client.get("/ping").is_err());
    }
}

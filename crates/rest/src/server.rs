//! HTTP server with a bounded connection worker pool and a method+path
//! router.
//!
//! The reproduction's FastAPI: handlers register under `(method, path)`
//! where path segments may be `{param}` placeholders (`/jobs/{id}`).
//! Unmatched paths get 404, unmatched methods 405, panicking handlers
//! 500.
//!
//! ## Serving model
//!
//! Accepted connections are pushed onto a **bounded queue** drained by a
//! **fixed pool** of worker threads ([`ServerConfig::workers`]): at most
//! `workers` connections are served concurrently, and when both the pool
//! and the queue ([`ServerConfig::accept_backlog`]) are saturated the
//! accept loop itself blocks — backpressure lands in the listener's OS
//! backlog instead of an unbounded `thread::spawn` per connection.
//!
//! Each worker speaks **HTTP/1.1 keep-alive**: it serves requests off
//! one connection until the peer (or an explicit `Connection: close`)
//! ends it, the per-connection request cap is reached, or the idle
//! timeout expires — so a dashboard poll loop pays one TCP connect for
//! its whole session instead of one per poll.
//!
//! With a [`Registry`] attached ([`ServerConfig::metrics`]) the server
//! records per-route request counts, latency histograms, and status
//! counters, plus connection-level gauges; mount [`metrics_router`] to
//! expose them at `GET /metrics`.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use datalens_health::{HealthGate, Verdict};
use datalens_obs::{labeled, Counter, Gauge, Registry};

use crate::http::{
    sse_comment, urldecode_segment, Body, HttpError, Method, Request, Response, StreamChunk,
    StreamSource, MAX_BODY,
};

/// Path parameters captured by `{param}` route segments.
pub type PathParams = BTreeMap<String, String>;

/// A request handler. The second argument holds the values captured by
/// the route's `{param}` segments (empty for literal routes).
pub type Handler = Arc<dyn Fn(&Request, &PathParams) -> Response + Send + Sync>;

/// One compiled route-pattern segment.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Param(String),
}

struct Route {
    method: Method,
    /// The pattern as registered (`/jobs/{id}`) — the low-cardinality
    /// label for per-route metrics.
    pattern: String,
    segments: Vec<Segment>,
    handler: Handler,
}

/// Route table builder.
#[derive(Default, Clone)]
pub struct Router {
    routes: Vec<Arc<Route>>,
}

fn compile(path: &str) -> Vec<Segment> {
    path.split('/')
        .filter(|s| !s.is_empty())
        .map(
            |s| match s.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
                Some(name) => Segment::Param(name.to_string()),
                None => Segment::Literal(s.to_string()),
            },
        )
        .collect()
}

/// Does pattern `a` beat pattern `b` for the same path? Literal segments
/// are more specific than `{param}` segments, compared left to right
/// (`/jobs/stats` beats `/jobs/{id}`). Equal specificity keeps the
/// earlier registration.
fn more_specific(a: &[Segment], b: &[Segment]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match (
            matches!(x, Segment::Literal(_)),
            matches!(y, Segment::Literal(_)),
        ) {
            (true, false) => return true,
            (false, true) => return false,
            _ => {}
        }
    }
    false
}

impl Router {
    pub fn new() -> Router {
        Router::default()
    }

    /// Register a handler (builder style). `path` may contain `{param}`
    /// segments, captured into the handler's [`PathParams`].
    pub fn route(
        mut self,
        method: Method,
        path: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Arc::new(Route {
            method,
            pattern: path.to_string(),
            segments: compile(path),
            handler: Arc::new(handler),
        }));
        self
    }

    /// Append every route of `other`. Dispatch prefers the most specific
    /// matching pattern (literal over `{param}`), so merging routers
    /// with disjoint literal/param overlaps is order-independent.
    pub fn merge(mut self, other: Router) -> Router {
        self.routes.extend(other.routes);
        self
    }

    /// Match `segments` against a pattern, capturing parameters.
    fn matches(pattern: &[Segment], segments: &[&str]) -> Option<PathParams> {
        if pattern.len() != segments.len() {
            return None;
        }
        let mut params = PathParams::new();
        for (p, s) in pattern.iter().zip(segments) {
            match p {
                Segment::Literal(lit) if lit == s => {}
                Segment::Literal(_) => return None,
                Segment::Param(name) => {
                    params.insert(name.clone(), (*s).to_string());
                }
            }
        }
        Some(params)
    }

    /// Dispatch one request. The route lookup borrows `req.path` — the
    /// request is never cloned.
    pub fn dispatch(&self, req: &Request) -> Response {
        self.dispatch_traced(req).0
    }

    /// [`Router::dispatch`] that also reports which route pattern
    /// handled the request (`None` for 404/405), for per-route metrics.
    pub fn dispatch_traced(&self, req: &Request) -> (Response, Option<String>) {
        // Percent-decode each path segment *before* matching, so
        // `POST /sessions/my%20session/jobs` matches `{id}` with the
        // decoded id (`split_query` leaves the path verbatim). Decoding
        // per segment — after splitting — means an encoded `%2F` stays
        // inside its segment and cannot change the route arity.
        let decoded: Vec<String> = req
            .path
            .split('/')
            .filter(|s| !s.is_empty())
            .map(urldecode_segment)
            .collect();
        let segments: Vec<&str> = decoded.iter().map(String::as_str).collect();
        let mut path_matched = false;
        // Most-specific match wins: a literal route is never shadowed by
        // a `{param}` route registered (or merged in) before it.
        let mut best: Option<(&Route, PathParams)> = None;
        for route in &self.routes {
            let Some(params) = Router::matches(&route.segments, &segments) else {
                continue;
            };
            if route.method != req.method {
                path_matched = true;
                continue;
            }
            match &best {
                Some((incumbent, _)) if !more_specific(&route.segments, &incumbent.segments) => {}
                _ => best = Some((route, params)),
            }
        }
        if let Some((route, params)) = best {
            // Contain handler panics to a 500 for this request.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (route.handler)(req, &params)
            }));
            let resp = match outcome {
                Ok(resp) => resp,
                Err(_) => Response::error(500, "handler panicked"),
            };
            return (resp, Some(route.pattern.clone()));
        }
        if path_matched {
            (Response::error(405, "method not allowed"), None)
        } else {
            (Response::error(404, "no such route"), None)
        }
    }
}

/// Per-listener limits, timeouts, pool sizing, and instrumentation.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Read timeout while parsing a request (a stalled client cannot pin
    /// a pool worker forever).
    pub read_timeout: Option<Duration>,
    /// Deadline for each *write* of a buffered response, armed
    /// immediately before the response is serialised — not a blanket
    /// socket option set at accept time, which would also kill
    /// legitimately long-lived streaming responses. Streams use
    /// [`ServerConfig::stream_write_timeout`] instead.
    pub write_timeout: Option<Duration>,
    /// Maximum concurrently open streaming responses (the SSE lane).
    /// A stream request beyond the cap is answered `429` so streams can
    /// never exhaust connection capacity for request/response traffic.
    pub max_streams: usize,
    /// Interval between `:` heartbeat comments on an idle stream. The
    /// heartbeat doubles as disconnect detection: writing to a closed
    /// peer fails, which reaps the stream and frees its lane slot.
    pub heartbeat_interval: Option<Duration>,
    /// Per-chunk write deadline on streaming responses: a consumer that
    /// stops reading long enough to stall one chunk write (slow-loris)
    /// is reaped, while any number of timely chunks may span an
    /// arbitrarily long wall-clock window.
    pub stream_write_timeout: Option<Duration>,
    /// Largest accepted request body; bigger declared `Content-Length`s
    /// are rejected with 413 before any buffering.
    pub max_body: usize,
    /// Connection worker-pool size: the hard bound on concurrently
    /// served connections (≥ 1).
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before the
    /// accept loop blocks (backpressure into the OS listen backlog).
    pub accept_backlog: usize,
    /// Requests served on one keep-alive connection before the server
    /// closes it (guards a worker against a monopolizing client).
    pub max_requests_per_conn: usize,
    /// How long a keep-alive connection may sit idle between requests.
    ///
    /// `None` disables keep-alive idling entirely: the server answers
    /// with `Connection: close` and closes after each response, rather
    /// than pinning a pool worker on an idle socket for the full
    /// [`ServerConfig::read_timeout`].
    pub keep_alive_timeout: Option<Duration>,
    /// Metrics registry for per-route and connection instrumentation.
    pub metrics: Option<Arc<Registry>>,
    /// Health gate for admission control. When set, the streaming lane
    /// publishes its occupancy to the gate, and while the gate holds,
    /// new stream subscriptions are refused with `429` + `Retry-After`
    /// (existing streams keep draining).
    pub health_gate: Option<Arc<HealthGate>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_streams: 32,
            heartbeat_interval: Some(Duration::from_secs(10)),
            stream_write_timeout: Some(Duration::from_secs(10)),
            max_body: MAX_BODY,
            workers: 8,
            accept_backlog: 32,
            max_requests_per_conn: 1_000,
            keep_alive_timeout: Some(Duration::from_secs(5)),
            metrics: None,
            health_gate: None,
        }
    }
}

/// The bounded hand-off between the accept loop and the worker pool.
struct ConnQueue {
    conns: Mutex<VecDeque<TcpStream>>,
    capacity: usize,
    stop: AtomicBool,
    /// Workers wait here for connections.
    ready: Condvar,
    /// The accept loop waits here for queue space.
    space: Condvar,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        let capacity = capacity.max(1);
        ConnQueue {
            conns: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            stop: AtomicBool::new(false),
            ready: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Block until there is room, then enqueue. Returns `false` when the
    /// server is stopping.
    fn push(&self, stream: TcpStream) -> bool {
        let mut q = self.conns.lock();
        while q.len() >= self.capacity {
            if self.stop.load(Ordering::SeqCst) {
                return false;
            }
            self.space.wait(&mut q);
        }
        if self.stop.load(Ordering::SeqCst) {
            return false;
        }
        q.push_back(stream);
        drop(q);
        self.ready.notify_one();
        true
    }

    /// Block until a connection is available; `None` when stopping.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.conns.lock();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(stream) = q.pop_front() {
                drop(q);
                self.space.notify_one();
                return Some(stream);
            }
            self.ready.wait(&mut q);
        }
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut q = self.conns.lock();
        q.clear(); // drop queued, never-served connections
        drop(q);
        self.ready.notify_all();
        self.space.notify_all();
    }
}

/// The streaming lane: accounting and lifecycle for long-lived
/// streaming responses, kept separate from the request/response worker
/// pool so open streams can never starve normal traffic.
///
/// A pool worker that dispatches a [`Body::Stream`] response *hands the
/// connection off* to a dedicated pump thread and immediately returns
/// to serving queued connections; the lane caps how many pump threads
/// may exist at once ([`ServerConfig::max_streams`]) and answers `429`
/// beyond the cap.
struct StreamLane {
    active: AtomicUsize,
    max: usize,
    stop: AtomicBool,
    /// Pump threads, joined at shutdown. Finished handles are swept on
    /// each spawn so the list stays proportional to open streams.
    pumps: Mutex<Vec<JoinHandle<()>>>,
    /// (`sse_streams_active`, `sse_events_sent_total`,
    /// `sse_disconnects_total`) — registered eagerly so the dashboard
    /// renders them as 0 before the first stream opens.
    metrics: Option<(Arc<Gauge>, Arc<Counter>, Arc<Counter>)>,
    /// Health gate fed with lane occupancy on every acquire/release, so
    /// `stream_lane_saturated` reflects the live subscription count.
    gate: Option<Arc<HealthGate>>,
}

impl StreamLane {
    fn new(max: usize, registry: Option<&Registry>, gate: Option<Arc<HealthGate>>) -> StreamLane {
        let lane = StreamLane {
            active: AtomicUsize::new(0),
            max: max.max(1),
            stop: AtomicBool::new(false),
            pumps: Mutex::new(Vec::with_capacity(max.max(1))),
            metrics: registry.map(|m| {
                (
                    m.gauge("sse_streams_active"),
                    m.counter("sse_events_sent_total"),
                    m.counter("sse_disconnects_total"),
                )
            }),
            gate,
        };
        lane.publish_gate();
        lane
    }

    /// Push the lane's occupancy into the health gate and re-evaluate.
    fn publish_gate(&self) {
        if let Some(gate) = &self.gate {
            gate.set_streams(self.active.load(Ordering::SeqCst) as u64, self.max as u64);
            gate.evaluate();
        }
    }

    /// Claim a stream slot; `false` when the lane is full (→ 429).
    fn try_acquire(&self) -> bool {
        let mut current = self.active.load(Ordering::SeqCst);
        loop {
            if current >= self.max {
                return false;
            }
            match self.active.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    if let Some((gauge, _, _)) = &self.metrics {
                        gauge.add(1);
                    }
                    self.publish_gate();
                    return true;
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Release a slot claimed by [`StreamLane::try_acquire`].
    fn release(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
        if let Some((gauge, _, _)) = &self.metrics {
            gauge.sub(1);
        }
        self.publish_gate();
    }

    /// Hand a connection whose stream head is already written to a pump
    /// thread. Consumes the acquired slot (released when the pump
    /// ends, or immediately if the spawn fails).
    fn spawn_pump(
        self: &Arc<Self>,
        stream: TcpStream,
        source: Box<dyn StreamSource>,
        config: &ServerConfig,
    ) {
        let lane = Arc::clone(self);
        let heartbeat = config.heartbeat_interval;
        let write_timeout = config.stream_write_timeout;
        let spawned = std::thread::Builder::new()
            .name("datalens-http-stream".into())
            .spawn(move || pump_stream(&lane, stream, source, heartbeat, write_timeout));
        match spawned {
            Ok(handle) => {
                let mut pumps = self.pumps.lock();
                pumps.retain(|h| !h.is_finished());
                pumps.push(handle);
            }
            Err(_) => {
                // Could not spawn: the dropped closure closes the
                // connection and unsubscribes the source; give the
                // slot back here.
                self.release();
            }
        }
    }

    /// Stop all pump loops and join their threads.
    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.pumps.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Drive one streaming response to completion: pull chunks from
/// `source`, write each with its own deadline, heartbeat while idle,
/// and tear the connection down when the source ends, the peer
/// disconnects, or the server stops.
///
/// Dropping `source` on every exit path is what unsubscribes the
/// stream from its broadcast (sources release registrations in
/// `Drop`), so a mid-stream client disconnect frees both the lane slot
/// and the producer-side subscription.
fn pump_stream(
    lane: &StreamLane,
    stream: TcpStream,
    mut source: Box<dyn StreamSource>,
    heartbeat: Option<Duration>,
    write_timeout: Option<Duration>,
) {
    const POLL: Duration = Duration::from_millis(50);
    let mut last_write = Instant::now();
    loop {
        if lane.stop.load(Ordering::SeqCst) {
            break;
        }
        match source.next_chunk(POLL) {
            StreamChunk::Data(bytes) => {
                let _ = stream.set_write_timeout(write_timeout);
                let mut w = &stream;
                if w.write_all(&bytes).and_then(|()| w.flush()).is_err() {
                    if let Some((_, _, disconnects)) = &lane.metrics {
                        disconnects.inc();
                    }
                    break;
                }
                if let Some((_, sent, _)) = &lane.metrics {
                    sent.inc();
                }
                last_write = Instant::now();
            }
            StreamChunk::Pending => {
                let Some(interval) = heartbeat else { continue };
                if last_write.elapsed() < interval {
                    continue;
                }
                let _ = stream.set_write_timeout(write_timeout);
                let mut w = &stream;
                if w.write_all(&sse_comment("hb"))
                    .and_then(|()| w.flush())
                    .is_err()
                {
                    if let Some((_, _, disconnects)) = &lane.metrics {
                        disconnects.inc();
                    }
                    break;
                }
                last_write = Instant::now();
            }
            StreamChunk::End => break,
        }
    }
    drop(source); // unsubscribe before the slot is released
    lane.release();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop and the worker pool.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<ConnQueue>,
    lane: Arc<StreamLane>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind to 127.0.0.1 on an ephemeral port and start serving with the
    /// default limits.
    pub fn start(router: Router) -> Result<Server, HttpError> {
        Server::start_with(router, ServerConfig::default())
    }

    /// [`Server::start`] with explicit limits and timeouts.
    pub fn start_with(router: Router, config: ServerConfig) -> Result<Server, HttpError> {
        Server::start_on("127.0.0.1:0", router, config)
    }

    /// Bind to an explicit address (`"127.0.0.1:8080"`); port 0 picks an
    /// ephemeral port.
    pub fn start_on(addr: &str, router: Router, config: ServerConfig) -> Result<Server, HttpError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(ConnQueue::new(config.accept_backlog));
        let lane = Arc::new(StreamLane::new(
            config.max_streams,
            config.metrics.as_deref(),
            config.health_gate.clone(),
        ));
        let router = Arc::new(router);

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let worker_queue = Arc::clone(&queue);
            let worker_lane = Arc::clone(&lane);
            let router = Arc::clone(&router);
            let config = config.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("datalens-http-{i}"))
                .spawn(move || {
                    while let Some(stream) = worker_queue.pop() {
                        serve_connection(
                            stream,
                            &router,
                            &config,
                            &worker_lane,
                            &worker_queue.stop,
                        );
                    }
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Wind down the partial pool before reporting.
                    queue.shutdown();
                    for t in workers {
                        let _ = t.join();
                    }
                    return Err(HttpError::Io(e));
                }
            }
        }

        let accept_queue = Arc::clone(&queue);
        let accepted = config
            .metrics
            .as_ref()
            .map(|m| m.counter("http_connections_total"));
        let spawned = std::thread::Builder::new()
            .name("datalens-http-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_queue.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if let Some(c) = &accepted {
                        c.inc();
                    }
                    if !accept_queue.push(stream) {
                        break;
                    }
                }
            });
        let accept_thread = match spawned {
            Ok(handle) => handle,
            Err(e) => {
                queue.shutdown();
                for t in workers {
                    let _ = t.join();
                }
                return Err(HttpError::Io(e));
            }
        };

        Ok(Server {
            addr,
            queue,
            lane,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and wind down the worker pool. Workers
    /// finish the request they are writing; idle keep-alive connections
    /// are closed at their next read timeout.
    pub fn shutdown(&mut self) {
        if self.queue.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.shutdown();
        // Kick the accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // Stop stream pumps last: they run outside the worker pool.
        self.lane.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one connection until the peer closes, keep-alive is exhausted,
/// or the server stops.
/// Serve requests off one connection until the client closes, a
/// protocol error occurs, or the per-connection limits are hit.
///
/// TCP_NODELAY is set once up front: a keep-alive exchange is a
/// ping-pong of small writes, and Nagle batching against the peer's
/// delayed ACKs would add ~40 ms to every round trip.
fn serve_connection(
    stream: TcpStream,
    router: &Router,
    config: &ServerConfig,
    lane: &Arc<StreamLane>,
    stop: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let active = config
        .metrics
        .as_ref()
        .map(|m| m.gauge("http_connections_active"));
    if let Some(g) = &active {
        g.add(1);
    }
    let mut reader = BufReader::new(read_half);
    let mut served = 0usize;
    loop {
        // The first request gets the full read timeout; between requests
        // the (typically shorter) keep-alive idle timeout applies.
        // `keep_alive_timeout: None` never reaches a second iteration —
        // `keep` below forces `Connection: close` after each response.
        let timeout = if served == 0 {
            config.read_timeout
        } else {
            config.keep_alive_timeout
        };
        let _ = stream.set_read_timeout(timeout);
        let started = Instant::now();
        let (mut response, keep_alive) =
            match Request::read_from_buffered(&mut reader, config.max_body) {
                Ok(None) => break, // clean close between requests
                Ok(Some(req)) => {
                    served += 1;
                    let keep = req.wants_keep_alive()
                        && served < config.max_requests_per_conn
                        && config.keep_alive_timeout.is_some()
                        && !stop.load(Ordering::SeqCst);
                    let (resp, route) = router.dispatch_traced(&req);
                    record_request(config, &req, route.as_deref(), &resp, started);
                    (resp, keep)
                }
                Err(HttpError::BodyTooLarge(_)) => (Response::error(413, "body too large"), false),
                Err(HttpError::Malformed(m)) => (Response::error(400, &m), false),
                Err(HttpError::Io(_)) => break, // timeout / reset mid-read
            };
        if response.body.is_stream() {
            // Admission control: while the health gate holds, the lane
            // refuses *new* subscriptions so existing streams can drain
            // — shed before a slot is even attempted.
            let held = config
                .health_gate
                .as_ref()
                .filter(|g| g.verdict() == Verdict::Hold);
            if let Some(gate) = held {
                response = Response::error(429, "service under load: new streams refused")
                    .with_retry_after(gate.retry_after_secs());
            } else if lane.try_acquire() {
                // Hand the connection off to a pump thread and return
                // this worker to the pool: a long-lived stream must
                // never occupy a request/response worker slot. The
                // connection gauge drops here — `sse_streams_active`
                // accounts for it from now on.
                if let Some(g) = &active {
                    g.sub(1);
                }
                let _ = stream.set_write_timeout(config.stream_write_timeout);
                if response.write_stream_head(&stream).is_err() {
                    lane.release();
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
                match response.body {
                    Body::Stream(stream_body) => {
                        lane.spawn_pump(stream, stream_body.source, config);
                    }
                    // Unreachable (is_stream() held above); close out
                    // rather than panicking an HTTP worker.
                    Body::Bytes(_) => {
                        lane.release();
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                    }
                }
                return;
            } else {
                // Lane full: fail *this request* but keep the connection
                // usable — normal traffic must not be collateral damage.
                // The Retry-After hint comes from the gate's drain-rate
                // estimate when one is attached (floor 1s otherwise).
                let retry = config
                    .health_gate
                    .as_ref()
                    .map(|g| g.retry_after_secs())
                    .unwrap_or(1);
                response =
                    Response::error(429, "too many concurrent streams").with_retry_after(retry);
            }
        }
        // Per-write deadline, scoped to this response. (A blanket
        // accept-time timeout would also cover stream chunks written
        // long after accept; streams arm their own deadline per chunk.)
        let _ = stream.set_write_timeout(config.write_timeout);
        if response.write_to_conn(&stream, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
    if let Some(g) = &active {
        g.sub(1);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn record_request(
    config: &ServerConfig,
    req: &Request,
    route: Option<&str>,
    resp: &Response,
    started: Instant,
) {
    let Some(metrics) = &config.metrics else {
        return;
    };
    let route = route.unwrap_or("unmatched");
    metrics
        .counter(&labeled(
            "http_requests_total",
            &[
                ("route", route),
                ("method", req.method.as_str()),
                ("status", &resp.status.to_string()),
            ],
        ))
        .inc();
    metrics
        .latency_histogram(&labeled("http_request_ms", &[("route", route)]))
        .observe(started.elapsed().as_secs_f64() * 1e3);
}

/// A router exposing `registry` at `GET /metrics`: JSON by default, the
/// Prometheus text exposition format with `?format=prometheus` (or an
/// `Accept: text/plain` header). Merge it onto the service router.
pub fn metrics_router(registry: Arc<Registry>) -> Router {
    Router::new().route(Method::Get, "/metrics", move |req, _| {
        let wants_text = req.query.get("format").is_some_and(|f| {
            f.eq_ignore_ascii_case("prometheus") || f.eq_ignore_ascii_case("text")
        }) || req
            .headers
            .get("accept")
            .is_some_and(|a| a.contains("text/plain"));
        if wants_text {
            let mut resp = Response::new(200, registry.to_prometheus().into_bytes());
            resp.headers
                .insert("content-type".into(), "text/plain; version=0.0.4".into());
            resp
        } else {
            Response::json(&registry.to_json())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn demo_router() -> Router {
        Router::new()
            .route(Method::Get, "/ping", |_, _| {
                Response::json(&serde_json::json!({"pong": true}))
            })
            .route(Method::Post, "/echo", |req, _| {
                Response::new(200, req.body.clone())
            })
            .route(Method::Get, "/boom", |_, _| panic!("kaboom"))
            .route(Method::Put, "/query", |req, _| {
                Response::json(&serde_json::json!({"q": req.query.get("x")}))
            })
            .route(Method::Get, "/jobs/{id}", |_, params| {
                Response::json(&serde_json::json!({"job": params["id"]}))
            })
            .route(Method::Delete, "/jobs/{id}", |_, params| {
                Response::json(&serde_json::json!({"cancelled": params["id"]}))
            })
            .route(Method::Get, "/jobs/{id}/result", |_, params| {
                Response::json(&serde_json::json!({"result_for": params["id"]}))
            })
    }

    #[test]
    fn get_and_post_round_trip() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let r = client.get("/ping").unwrap();
        assert_eq!(r.status, 200);
        let v: serde_json::Value = r.json_body().unwrap();
        assert_eq!(v["pong"], true);

        let r = client.post("/echo", b"hello".to_vec()).unwrap();
        assert_eq!(r.body_bytes(), b"hello");
    }

    #[test]
    fn unknown_route_is_404_wrong_method_is_405() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        assert_eq!(client.get("/nope").unwrap().status, 404);
        assert_eq!(client.post("/ping", Vec::new()).unwrap().status, 405);
    }

    #[test]
    fn path_parameters_are_captured() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let v: serde_json::Value = client.get("/jobs/42").unwrap().json_body().unwrap();
        assert_eq!(v["job"], "42");
        let v: serde_json::Value = client.get("/jobs/42/result").unwrap().json_body().unwrap();
        assert_eq!(v["result_for"], "42");
        let r = client.delete("/jobs/abc").unwrap();
        let v: serde_json::Value = r.json_body().unwrap();
        assert_eq!(v["cancelled"], "abc");
        // Wrong arity does not match the parameterised route.
        assert_eq!(client.get("/jobs").unwrap().status, 404);
        assert_eq!(client.get("/jobs/1/2/3").unwrap().status, 404);
        // Matching path, unregistered method → 405.
        assert_eq!(client.post("/jobs/42", Vec::new()).unwrap().status, 405);
    }

    #[test]
    fn literal_routes_beat_param_routes_regardless_of_order() {
        // Regression: `/jobs/{id}` registered first used to permanently
        // shadow `/jobs/stats`.
        let router = Router::new()
            .route(Method::Get, "/jobs/{id}", |_, params| {
                Response::json(&serde_json::json!({"job": params["id"]}))
            })
            .route(Method::Get, "/jobs/stats", |_, _| {
                Response::json(&serde_json::json!({"stats": true}))
            });
        let server = Server::start(router).unwrap();
        let client = Client::new(server.addr());
        let v: serde_json::Value = client.get("/jobs/stats").unwrap().json_body().unwrap();
        assert_eq!(v["stats"], true);
        let v: serde_json::Value = client.get("/jobs/7").unwrap().json_body().unwrap();
        assert_eq!(v["job"], "7");
    }

    #[test]
    fn merge_is_order_independent_for_literal_param_overlaps() {
        let param = Router::new().route(Method::Get, "/jobs/{id}", |_, params| {
            Response::json(&serde_json::json!({"job": params["id"]}))
        });
        let literal = Router::new().route(Method::Get, "/jobs/stats", |_, _| {
            Response::json(&serde_json::json!({"stats": true}))
        });
        for router in [param.clone().merge(literal.clone()), literal.merge(param)] {
            let req = Request::new(Method::Get, "/jobs/stats", Vec::new());
            let (resp, route) = router.dispatch_traced(&req);
            let v: serde_json::Value = resp.json_body().unwrap();
            assert_eq!(v["stats"], true);
            assert_eq!(route.as_deref(), Some("/jobs/stats"));
        }
    }

    #[test]
    fn deeper_literal_prefix_wins_at_first_divergence() {
        let router = Router::new()
            .route(Method::Get, "/a/{x}/c", |_, _| {
                Response::json(&serde_json::json!({"which": "param-first"}))
            })
            .route(Method::Get, "/a/b/{y}", |_, _| {
                Response::json(&serde_json::json!({"which": "literal-first"}))
            });
        let req = Request::new(Method::Get, "/a/b/c", Vec::new());
        let v: serde_json::Value = router.dispatch(&req).json_body().unwrap();
        assert_eq!(v["which"], "literal-first");
    }

    #[test]
    fn path_segments_are_percent_decoded_before_matching() {
        // Regression: `/sessions/my%20session/jobs` used to reach the
        // handler with the literal encoded id.
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let v: serde_json::Value = client.get("/jobs/my%20job").unwrap().json_body().unwrap();
        assert_eq!(v["job"], "my job");
        // An encoded slash stays inside its segment: still arity 2, one
        // param containing a literal `/` — it cannot splice into the
        // three-segment `/jobs/{id}/result` route.
        let v: serde_json::Value = client.get("/jobs/a%2Fb").unwrap().json_body().unwrap();
        assert_eq!(v["job"], "a/b");
        // Literal segments match their decoded form too.
        let v: serde_json::Value = client.get("/%6Aobs/7").unwrap().json_body().unwrap();
        assert_eq!(v["job"], "7");
    }

    #[test]
    fn handler_panic_becomes_500() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let r = client.get("/boom").unwrap();
        assert_eq!(r.status, 500);
    }

    #[test]
    fn query_parameters_reach_handlers() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let r = client.put("/query?x=a%20b", Vec::new()).unwrap();
        let v: serde_json::Value = r.json_body().unwrap();
        assert_eq!(v["q"], "a b");
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::start(demo_router()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = Client::new(addr);
                    let body = format!("msg-{i}").into_bytes();
                    let r = client.post("/echo", body.clone()).unwrap();
                    assert_eq!(r.body_bytes(), body);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn body_cap_is_enforced_per_server() {
        let server = Server::start_with(
            demo_router(),
            ServerConfig {
                max_body: 8,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let client = Client::new(server.addr());
        let r = client.post("/echo", vec![b'x'; 64]).unwrap();
        assert_eq!(r.status, 413);
        let r = client.post("/echo", b"tiny".to_vec()).unwrap();
        assert_eq!(r.status, 200);
    }

    #[test]
    fn merged_routers_serve_both_route_sets() {
        let extra = Router::new().route(Method::Get, "/extra", |_, _| {
            Response::json(&serde_json::json!({"extra": true}))
        });
        let server = Server::start(demo_router().merge(extra)).unwrap();
        let client = Client::new(server.addr());
        assert_eq!(client.get("/ping").unwrap().status, 200);
        assert_eq!(client.get("/extra").unwrap().status, 200);
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = Server::start(demo_router()).unwrap();
        let addr = server.addr();
        server.shutdown();
        // After shutdown, requests fail (connection refused or reset).
        let client = Client::new(addr);
        assert!(client.get("/ping").is_err());
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_socket() {
        let server = Server::start(demo_router()).unwrap();
        let client = Client::new(server.addr());
        let mut conn = client.connect().unwrap();
        for i in 0..10 {
            let body = format!("round-{i}").into_bytes();
            let r = conn.post("/echo", body.clone()).unwrap();
            assert_eq!(r.status, 200);
            assert_eq!(r.body_bytes(), body);
            assert_eq!(
                r.headers.get("connection").map(String::as_str),
                Some("keep-alive")
            );
        }
        drop(conn);
    }

    #[test]
    fn request_cap_closes_keep_alive_connections() {
        let server = Server::start_with(
            demo_router(),
            ServerConfig {
                max_requests_per_conn: 3,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let client = Client::new(server.addr());
        let mut conn = client.connect().unwrap();
        for _ in 0..2 {
            let r = conn.get("/ping").unwrap();
            assert_eq!(
                r.headers.get("connection").map(String::as_str),
                Some("keep-alive")
            );
        }
        // The capped request is answered but the server closes after it.
        let r = conn.get("/ping").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(
            r.headers.get("connection").map(String::as_str),
            Some("close")
        );
        assert!(conn.get("/ping").is_err());
    }

    #[test]
    fn connection_close_is_honored() {
        let server = Server::start(demo_router()).unwrap();
        // The plain client sends `connection: close` on every request.
        let client = Client::new(server.addr());
        let r = client.get("/ping").unwrap();
        assert_eq!(
            r.headers.get("connection").map(String::as_str),
            Some("close")
        );
    }

    #[test]
    fn malformed_content_length_is_answered_400_and_closed() {
        let server = Server::start(demo_router()).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        (&stream)
            .write_all(b"POST /echo HTTP/1.1\r\ncontent-length: -5\r\n\r\n")
            .unwrap();
        let resp = Response::read_from(&stream).unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(
            resp.headers.get("connection").map(String::as_str),
            Some("close")
        );
    }

    #[test]
    fn pool_bounds_concurrent_connections() {
        use std::sync::atomic::AtomicUsize;

        // Every handler parks long enough that all in-flight requests
        // overlap; the observed high-water mark of concurrently running
        // handlers must not exceed the pool size.
        let in_flight = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicUsize::new(0));
        let (inf, hw) = (Arc::clone(&in_flight), Arc::clone(&high_water));
        let router = Router::new().route(Method::Get, "/slow", move |_, _| {
            let now = inf.fetch_add(1, Ordering::SeqCst) + 1;
            hw.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            inf.fetch_sub(1, Ordering::SeqCst);
            Response::json(&serde_json::json!({"ok": true}))
        });
        let workers = 3;
        let server = Server::start_with(
            router,
            ServerConfig {
                workers,
                accept_backlog: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let clients: Vec<_> = (0..16)
            .map(|_| {
                std::thread::spawn(move || {
                    let r = Client::new(addr).get("/slow").unwrap();
                    assert_eq!(r.status, 200);
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert!(
            high_water.load(Ordering::SeqCst) <= workers,
            "high-water {} exceeded pool of {workers}",
            high_water.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn per_route_metrics_are_recorded() {
        let registry = Arc::new(Registry::new());
        let server = Server::start_with(
            demo_router().merge(metrics_router(Arc::clone(&registry))),
            ServerConfig {
                metrics: Some(Arc::clone(&registry)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let client = Client::new(server.addr());
        client.get("/ping").unwrap();
        client.get("/ping").unwrap();
        client.get("/jobs/9").unwrap();
        client.get("/definitely-not-a-route").unwrap();

        let v: serde_json::Value = client.get("/metrics").unwrap().json_body().unwrap();
        let c = &v["counters"];
        assert_eq!(
            c["http_requests_total{route=\"/ping\",method=\"GET\",status=\"200\"}"],
            2
        );
        assert_eq!(
            c["http_requests_total{route=\"/jobs/{id}\",method=\"GET\",status=\"200\"}"],
            1
        );
        assert_eq!(
            c["http_requests_total{route=\"unmatched\",method=\"GET\",status=\"404\"}"],
            1
        );
        let h = &v["histograms"]["http_request_ms{route=\"/ping\"}"];
        assert_eq!(h["count"], 2);

        // Prometheus rendering of the same registry.
        let r = client.get("/metrics?format=prometheus").unwrap();
        let text = String::from_utf8(r.body_bytes().to_vec()).unwrap();
        assert!(text.contains("# TYPE http_requests_total counter"));
        assert!(text.contains("http_request_ms_bucket{route=\"/ping\",le=\"+Inf\"}"));
    }
}

//! Blocking HTTP client for the tool bus.
//!
//! [`Client`] opens a fresh connection per request (`Connection: close`)
//! — simple and stateless. [`Client::connect`] returns a [`Connection`]
//! that keeps one socket open across requests (HTTP/1.1 keep-alive),
//! which a dashboard poll loop should prefer: it pays the TCP handshake
//! once instead of once per poll.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{HttpError, Method, Request, Response};

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn send(&self, method: Method, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let req = Request::new(method, path, body);
        req.write_to(&stream, &self.addr.to_string())?;
        Response::read_from(&stream)
    }

    /// GET a path (the paper's "retrieve results" call).
    pub fn get(&self, path: &str) -> Result<Response, HttpError> {
        self.send(Method::Get, path, Vec::new())
    }

    /// POST a body (the paper's "forward tasks" call).
    pub fn post(&self, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        self.send(Method::Post, path, body)
    }

    /// PUT a body (the paper's "update request information" call).
    pub fn put(&self, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        self.send(Method::Put, path, body)
    }

    /// DELETE a path (cancel a job, tear down a session).
    pub fn delete(&self, path: &str) -> Result<Response, HttpError> {
        self.send(Method::Delete, path, Vec::new())
    }

    /// POST a JSON value and parse a JSON response.
    pub fn post_json<T: serde::Serialize, R: serde::de::DeserializeOwned>(
        &self,
        path: &str,
        value: &T,
    ) -> Result<R, HttpError> {
        let body = serde_json::to_vec(value)
            .map_err(|e| HttpError::Malformed(format!("serialise request: {e}")))?;
        let resp = self.post(path, body)?;
        if !resp.is_success() {
            return Err(HttpError::Malformed(format!(
                "server returned {}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            )));
        }
        resp.json_body()
    }

    /// GET and parse a JSON response.
    pub fn get_json<R: serde::de::DeserializeOwned>(&self, path: &str) -> Result<R, HttpError> {
        let resp = self.get(path)?;
        if !resp.is_success() {
            return Err(HttpError::Malformed(format!(
                "server returned {}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            )));
        }
        resp.json_body()
    }

    /// Open a persistent (keep-alive) connection to the server.
    pub fn connect(&self) -> Result<Connection, HttpError> {
        let stream = TcpStream::connect(self.addr)?;
        // Without TCP_NODELAY, Nagle batching against delayed ACKs adds
        // ~40 ms to every request/response pair on a persistent
        // connection — dwarfing what keep-alive saves.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let read_half = stream.try_clone()?;
        Ok(Connection {
            host: self.addr.to_string(),
            stream,
            reader: BufReader::new(read_half),
        })
    }
}

/// A persistent HTTP/1.1 connection: requests sent through it advertise
/// `Connection: keep-alive` and reuse one socket until the server closes
/// it (idle timeout, per-connection request cap, or shutdown), after
/// which requests fail with an I/O error and the caller should
/// [`Client::connect`] again.
pub struct Connection {
    host: String,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn send(&mut self, method: Method, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        let req = Request::new(method, path, body);
        req.write_to_conn(&self.stream, &self.host, true)?;
        Response::read_from_buffered(&mut self.reader)
    }

    /// GET over the persistent connection.
    pub fn get(&mut self, path: &str) -> Result<Response, HttpError> {
        self.send(Method::Get, path, Vec::new())
    }

    /// POST over the persistent connection.
    pub fn post(&mut self, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        self.send(Method::Post, path, body)
    }

    /// PUT over the persistent connection.
    pub fn put(&mut self, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        self.send(Method::Put, path, body)
    }

    /// DELETE over the persistent connection.
    pub fn delete(&mut self, path: &str) -> Result<Response, HttpError> {
        self.send(Method::Delete, path, Vec::new())
    }
}

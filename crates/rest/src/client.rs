//! Blocking HTTP client for the tool bus.
//!
//! [`Client`] opens a fresh connection per request (`Connection: close`)
//! — simple and stateless. [`Client::connect`] returns a [`Connection`]
//! that keeps one socket open across requests (HTTP/1.1 keep-alive),
//! which a dashboard poll loop should prefer: it pays the TCP handshake
//! once instead of once per poll.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{HttpError, Method, Request, Response};

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn send(&self, method: Method, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let req = Request::new(method, path, body);
        req.write_to(&stream, &self.addr.to_string())?;
        Response::read_from(&stream)
    }

    /// GET a path (the paper's "retrieve results" call).
    pub fn get(&self, path: &str) -> Result<Response, HttpError> {
        self.send(Method::Get, path, Vec::new())
    }

    /// POST a body (the paper's "forward tasks" call).
    pub fn post(&self, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        self.send(Method::Post, path, body)
    }

    /// PUT a body (the paper's "update request information" call).
    pub fn put(&self, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        self.send(Method::Put, path, body)
    }

    /// DELETE a path (cancel a job, tear down a session).
    pub fn delete(&self, path: &str) -> Result<Response, HttpError> {
        self.send(Method::Delete, path, Vec::new())
    }

    /// POST a JSON value and parse a JSON response.
    pub fn post_json<T: serde::Serialize, R: serde::de::DeserializeOwned>(
        &self,
        path: &str,
        value: &T,
    ) -> Result<R, HttpError> {
        let body = serde_json::to_vec(value)
            .map_err(|e| HttpError::Malformed(format!("serialise request: {e}")))?;
        let resp = self.post(path, body)?;
        if !resp.is_success() {
            return Err(HttpError::Malformed(format!(
                "server returned {}: {}",
                resp.status,
                String::from_utf8_lossy(resp.body_bytes())
            )));
        }
        resp.json_body()
    }

    /// GET and parse a JSON response.
    pub fn get_json<R: serde::de::DeserializeOwned>(&self, path: &str) -> Result<R, HttpError> {
        let resp = self.get(path)?;
        if !resp.is_success() {
            return Err(HttpError::Malformed(format!(
                "server returned {}: {}",
                resp.status,
                String::from_utf8_lossy(resp.body_bytes())
            )));
        }
        resp.json_body()
    }

    /// Open a Server-Sent-Events stream with `GET path`.
    ///
    /// On a `text/event-stream` response the returned [`SseStream`]
    /// yields events incrementally as the server flushes them; on any
    /// other response (e.g. a `404` or a `429` lane-overflow answer)
    /// the stream is inert and only [`SseStream::status`] and the
    /// buffered body are meaningful.
    pub fn sse(&self, path: &str) -> Result<SseStream, HttpError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut req = Request::new(Method::Get, path, Vec::new());
        req.headers
            .insert("accept".into(), "text/event-stream".into());
        req.write_to(&stream, &self.addr.to_string())?;
        let read_half = stream.try_clone()?;
        let mut reader = BufReader::new(read_half);
        let resp = Response::read_from_buffered(&mut reader)?;
        let streaming = resp
            .headers
            .get("content-type")
            .is_some_and(|ct| ct.starts_with("text/event-stream"));
        let body = resp.body_bytes().to_vec();
        Ok(SseStream {
            status: resp.status,
            headers: resp.headers,
            body,
            reader: if streaming { Some(reader) } else { None },
            comments_seen: 0,
        })
    }

    /// Open a persistent (keep-alive) connection to the server.
    pub fn connect(&self) -> Result<Connection, HttpError> {
        let stream = TcpStream::connect(self.addr)?;
        // Without TCP_NODELAY, Nagle batching against delayed ACKs adds
        // ~40 ms to every request/response pair on a persistent
        // connection — dwarfing what keep-alive saves.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let read_half = stream.try_clone()?;
        Ok(Connection {
            host: self.addr.to_string(),
            stream,
            reader: BufReader::new(read_half),
        })
    }
}

/// A persistent HTTP/1.1 connection: requests sent through it advertise
/// `Connection: keep-alive` and reuse one socket until the server closes
/// it (idle timeout, per-connection request cap, or shutdown), after
/// which requests fail with an I/O error and the caller should
/// [`Client::connect`] again.
pub struct Connection {
    host: String,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn send(&mut self, method: Method, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        let req = Request::new(method, path, body);
        req.write_to_conn(&self.stream, &self.host, true)?;
        Response::read_from_buffered(&mut self.reader)
    }

    /// GET over the persistent connection.
    pub fn get(&mut self, path: &str) -> Result<Response, HttpError> {
        self.send(Method::Get, path, Vec::new())
    }

    /// POST over the persistent connection.
    pub fn post(&mut self, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        self.send(Method::Post, path, body)
    }

    /// PUT over the persistent connection.
    pub fn put(&mut self, path: &str, body: Vec<u8>) -> Result<Response, HttpError> {
        self.send(Method::Put, path, body)
    }

    /// DELETE over the persistent connection.
    pub fn delete(&mut self, path: &str) -> Result<Response, HttpError> {
        self.send(Method::Delete, path, Vec::new())
    }
}

/// One parsed Server-Sent-Events frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseEvent {
    /// The `event:` field (empty when the server sent none).
    pub event: String,
    /// The `id:` field, if present.
    pub id: Option<String>,
    /// The `data:` payload; multi-line frames are rejoined with `\n`.
    pub data: String,
}

/// A live SSE subscription (see [`Client::sse`]).
///
/// Dropping the stream closes the socket — from the server's side that
/// is a mid-stream client disconnect, detected at its next write.
pub struct SseStream {
    /// Status of the initial HTTP response.
    pub status: u16,
    /// Headers of the initial HTTP response.
    pub headers: std::collections::BTreeMap<String, String>,
    /// Buffered body for non-streaming responses (error JSON on a 404
    /// or 429); empty when the response is a live stream.
    pub body: Vec<u8>,
    /// `Some` while the connection is streaming events.
    reader: Option<BufReader<TcpStream>>,
    /// Heartbeat comments observed so far (skipped by `next_event`).
    comments_seen: u64,
}

impl SseStream {
    /// Whether the server answered with a live event stream.
    pub fn is_streaming(&self) -> bool {
        self.reader.is_some()
    }

    /// Heartbeat/comment lines consumed so far.
    pub fn comments_seen(&self) -> u64 {
        self.comments_seen
    }

    /// Block until the next event. `Ok(None)` means the server closed
    /// the stream (normal teardown after a terminal event); comment
    /// (heartbeat) frames are counted and skipped, never surfaced.
    pub fn next_event(&mut self) -> Result<Option<SseEvent>, HttpError> {
        use std::io::BufRead;
        let Some(reader) = self.reader.as_mut() else {
            return Ok(None);
        };
        let mut event = String::new();
        let mut id = None;
        let mut data: Vec<String> = Vec::new();
        let mut saw_field = false;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                // EOF: the server tore the connection down.
                self.reader = None;
                return Ok(None);
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                if saw_field {
                    return Ok(Some(SseEvent {
                        event,
                        id,
                        data: data.join("\n"),
                    }));
                }
                continue; // blank line after a comment (or stray)
            }
            if line.starts_with(':') {
                self.comments_seen += 1;
                continue;
            }
            let (field, value) = match line.split_once(':') {
                Some((f, v)) => (f, v.strip_prefix(' ').unwrap_or(v)),
                None => (line, ""),
            };
            saw_field = true;
            match field {
                "event" => event = value.to_string(),
                "id" => id = Some(value.to_string()),
                "data" => data.push(value.to_string()),
                _ => {} // unknown fields are ignored per the spec
            }
        }
    }

    /// Drain the stream to completion, returning every event in order.
    pub fn collect_events(&mut self) -> Result<Vec<SseEvent>, HttpError> {
        let mut events = Vec::new();
        while let Some(ev) = self.next_event()? {
            events.push(ev);
        }
        Ok(events)
    }
}

//! Consolidation of multi-tool detections (§1 contribution 6): "enabling
//! the execution of multiple error detection tools, with DataLens
//! autonomously integrating and deduplicating results."
//!
//! Also produces the per-attribute, per-tool breakdown behind Figure 4
//! ("Distribution of detections across various attributes").

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use datalens_table::{CellRef, Table};

use crate::detector::Detection;

/// The merged result of running several detection tools.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsolidatedDetections {
    /// Each tool's own detection, in execution order.
    pub per_tool: Vec<Detection>,
    /// Union of all flagged cells, deduplicated and sorted.
    pub union: Vec<CellRef>,
    /// For every flagged cell, which tools flagged it (tool names sorted).
    pub provenance: BTreeMap<CellRef, Vec<String>>,
}

impl ConsolidatedDetections {
    /// Merge tool outputs.
    pub fn merge(detections: Vec<Detection>) -> ConsolidatedDetections {
        let mut provenance: BTreeMap<CellRef, Vec<String>> = BTreeMap::new();
        for det in &detections {
            for &cell in &det.cells {
                let tools = provenance.entry(cell).or_default();
                if !tools.contains(&det.tool) {
                    tools.push(det.tool.clone());
                }
            }
        }
        for tools in provenance.values_mut() {
            tools.sort();
        }
        let union: Vec<CellRef> = provenance.keys().copied().collect();
        ConsolidatedDetections {
            per_tool: detections,
            union,
            provenance,
        }
    }

    /// Total distinct flagged cells.
    pub fn total(&self) -> usize {
        self.union.len()
    }

    /// Cells flagged by at least `k` tools (Min-K view of the merge).
    pub fn flagged_by_at_least(&self, k: usize) -> Vec<CellRef> {
        self.provenance
            .iter()
            .filter(|(_, tools)| tools.len() >= k)
            .map(|(c, _)| *c)
            .collect()
    }

    /// The Figure 4 matrix: `counts[tool][column index]` = number of
    /// detections by that tool in that attribute.
    pub fn per_attribute_counts(&self, table: &Table) -> BTreeMap<String, Vec<usize>> {
        let n_cols = table.n_cols();
        let mut out = BTreeMap::new();
        for det in &self.per_tool {
            out.insert(det.tool.clone(), det.counts_per_column(n_cols));
        }
        out
    }

    /// Render the Figure 4 view as an aligned text table (tools × attrs).
    pub fn render_distribution(&self, table: &Table) -> String {
        let names = table.column_names();
        let counts = self.per_attribute_counts(table);
        let mut out = String::new();
        let tool_w = counts.keys().map(String::len).max().unwrap_or(4).max(4);
        out.push_str(&format!("{:<tool_w$}", "tool", tool_w = tool_w));
        for n in &names {
            out.push_str(&format!("  {n:>12}"));
        }
        out.push('\n');
        for (tool, row) in &counts {
            out.push_str(&format!("{tool:<tool_w$}", tool_w = tool_w));
            for c in row {
                out.push_str(&format!("  {c:>12}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn det(tool: &str, cells: &[(usize, usize)]) -> Detection {
        Detection::new(
            tool,
            cells.iter().map(|&(r, c)| CellRef::new(r, c)).collect(),
        )
    }

    #[test]
    fn union_dedupes_across_tools() {
        let merged = ConsolidatedDetections::merge(vec![
            det("sd", &[(0, 0), (1, 0)]),
            det("iqr", &[(1, 0), (2, 1)]),
        ]);
        assert_eq!(merged.total(), 3);
        assert_eq!(
            merged.union,
            vec![CellRef::new(0, 0), CellRef::new(1, 0), CellRef::new(2, 1)]
        );
    }

    #[test]
    fn provenance_tracks_agreeing_tools() {
        let merged = ConsolidatedDetections::merge(vec![
            det("sd", &[(1, 0)]),
            det("iqr", &[(1, 0)]),
            det("mv", &[(2, 0)]),
        ]);
        assert_eq!(
            merged.provenance[&CellRef::new(1, 0)],
            vec!["iqr".to_string(), "sd".to_string()]
        );
        assert_eq!(merged.flagged_by_at_least(2), vec![CellRef::new(1, 0)]);
        assert_eq!(merged.flagged_by_at_least(1).len(), 2);
        assert!(merged.flagged_by_at_least(3).is_empty());
    }

    #[test]
    fn per_attribute_counts_matrix() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("a", [Some(1), Some(2), Some(3)]),
                Column::from_i64("b", [Some(1), Some(2), Some(3)]),
            ],
        )
        .unwrap();
        let merged = ConsolidatedDetections::merge(vec![
            det("sd", &[(0, 0), (1, 0), (2, 1)]),
            det("mv", &[(0, 1)]),
        ]);
        let counts = merged.per_attribute_counts(&t);
        assert_eq!(counts["sd"], vec![2, 1]);
        assert_eq!(counts["mv"], vec![0, 1]);
        let text = merged.render_distribution(&t);
        assert!(text.contains("sd"));
        assert!(text.contains("tool"));
    }

    #[test]
    fn merging_nothing_is_empty() {
        let merged = ConsolidatedDetections::merge(vec![]);
        assert_eq!(merged.total(), 0);
        assert!(merged.flagged_by_at_least(1).is_empty());
    }

    #[test]
    fn duplicate_tool_name_not_double_counted() {
        let merged =
            ConsolidatedDetections::merge(vec![det("sd", &[(0, 0)]), det("sd", &[(0, 0)])]);
        assert_eq!(
            merged.provenance[&CellRef::new(0, 0)],
            vec!["sd".to_string()]
        );
    }
}

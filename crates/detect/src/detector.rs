//! The detector abstraction every error-detection tool implements.
//!
//! §3 of the paper: "DataLens allows users to select multiple tools for
//! execution. These tools are executed sequentially in the backend, and
//! DataLens automatically consolidates their detections into a single
//! array, filtering out duplicates." A [`Detector`] produces a
//! [`Detection`] (tool name + flagged cells); consolidation lives in
//! [`crate::consolidate`].

use serde::{Deserialize, Serialize};

use datalens_fd::RuleSet;
use datalens_table::{CellRef, Table};

/// Output of one detection tool on one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// Tool name (e.g. "sd", "iqr", "raha").
    pub tool: String,
    /// Flagged cells, sorted and deduplicated.
    pub cells: Vec<CellRef>,
}

impl Detection {
    /// Build a detection, normalising the cell list.
    pub fn new(tool: impl Into<String>, mut cells: Vec<CellRef>) -> Detection {
        cells.sort();
        cells.dedup();
        Detection {
            tool: tool.into(),
            cells,
        }
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Count flagged cells per column index.
    pub fn counts_per_column(&self, n_cols: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_cols];
        for c in &self.cells {
            if c.col < n_cols {
                counts[c.col] += 1;
            }
        }
        counts
    }
}

/// Shared context handed to every detector: validated rules, user-tagged
/// suspicious values, and a seed for the stochastic tools.
#[derive(Debug, Clone, Default)]
pub struct DetectionContext {
    /// FD rules (from discovery + user), used by NADEEF-style detection.
    pub rules: RuleSet,
    /// Values the user flagged as known-dirty (§3 "data tagging"),
    /// matched against rendered cell content.
    pub tagged_values: Vec<String>,
    pub seed: u64,
}

impl DetectionContext {
    pub fn with_rules(rules: RuleSet) -> DetectionContext {
        DetectionContext {
            rules,
            ..DetectionContext::default()
        }
    }
}

/// An error-detection tool.
pub trait Detector: Send + Sync {
    /// Stable machine name, used in DataSheets and MLflow runs.
    fn name(&self) -> &'static str;
    /// Scan `table` and return the flagged cells.
    fn detect(&self, table: &Table, ctx: &DetectionContext) -> Detection;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_normalises_cells() {
        let d = Detection::new(
            "x",
            vec![CellRef::new(1, 0), CellRef::new(0, 0), CellRef::new(1, 0)],
        );
        assert_eq!(d.cells, vec![CellRef::new(0, 0), CellRef::new(1, 0)]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn counts_per_column_tallies() {
        let d = Detection::new(
            "x",
            vec![CellRef::new(0, 1), CellRef::new(1, 1), CellRef::new(2, 0)],
        );
        assert_eq!(d.counts_per_column(3), vec![1, 2, 0]);
    }
}

//! Detection explanations — the paper's future-work item (2):
//! "Integrating explainability techniques into the error detection and
//! repair process would give users insights into why specific errors were
//! flagged and how corrections were made."
//!
//! For every flagged cell, [`explain_cell`] reconstructs the statistical
//! or rule evidence each tool had: z-scores, IQR fences, sentinel matches,
//! FD cohorts, knowledge-base domains. The dashboard surfaces these next
//! to the detection results.

use datalens_profile::stats::{numeric_stats, quantile_sorted};
use datalens_table::{CellRef, Table};

use crate::consolidate::ConsolidatedDetections;
use crate::fahes::{syntactic_pattern, FahesConfig};
use crate::katara::KataraDetector;

/// One tool's reason for flagging a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Reason {
    pub tool: String,
    /// Human-readable evidence.
    pub message: String,
}

/// The explanation bundle for one flagged cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellExplanation {
    pub cell: CellRef,
    pub column: String,
    /// Rendered cell content.
    pub value: String,
    pub reasons: Vec<Reason>,
}

impl CellExplanation {
    /// Render for the Detection Results tab.
    pub fn render(&self) -> String {
        let mut out = format!(
            "cell {} (column {:?}, value {:?}):\n",
            self.cell, self.column, self.value
        );
        for r in &self.reasons {
            out.push_str(&format!("  - [{}] {}\n", r.tool, r.message));
        }
        out
    }
}

/// Explain why `cell` was flagged, given the consolidated detections.
/// Returns `None` when the cell was not flagged at all.
pub fn explain_cell(
    table: &Table,
    merged: &ConsolidatedDetections,
    cell: CellRef,
) -> Option<CellExplanation> {
    let tools = merged.provenance.get(&cell)?;
    let col = table.column(cell.col)?;
    let value = col.get(cell.row);
    let reasons = tools
        .iter()
        .map(|tool| Reason {
            tool: tool.clone(),
            message: evidence_for(table, cell, tool),
        })
        .collect();
    Some(CellExplanation {
        cell,
        column: col.name().to_string(),
        value: value.render(),
        reasons,
    })
}

/// Explain every flagged cell (capped at `limit` for dashboard rendering).
pub fn explain_all(
    table: &Table,
    merged: &ConsolidatedDetections,
    limit: usize,
) -> Vec<CellExplanation> {
    merged
        .union
        .iter()
        .take(limit)
        .filter_map(|&cell| explain_cell(table, merged, cell))
        .collect()
}

/// Reconstruct the per-tool evidence text.
fn evidence_for(table: &Table, cell: CellRef, tool: &str) -> String {
    let col = match table.column(cell.col) {
        Some(c) => c,
        None => return "column out of range".into(),
    };
    let value = col.get(cell.row);
    match tool {
        "sd" => match (numeric_stats(col), value.as_f64()) {
            (Some(s), Some(v)) if s.std > 0.0 => {
                let z = (v - s.mean) / s.std;
                format!(
                    "value {v} is {z:+.1}σ from the column mean {:.3} (σ = {:.3})",
                    s.mean, s.std
                )
            }
            _ => "flagged as a standard-deviation outlier".into(),
        },
        "iqr" => {
            let mut vals = col.numeric_values();
            if vals.is_empty() {
                return "flagged as an IQR outlier".into();
            }
            vals.sort_by(f64::total_cmp);
            let q1 = quantile_sorted(&vals, 0.25);
            let q3 = quantile_sorted(&vals, 0.75);
            let iqr = q3 - q1;
            format!(
                "value {} lies outside the Tukey fences [{:.3}, {:.3}] (Q1 {:.3}, Q3 {:.3}, IQR {:.3})",
                value.render(),
                q1 - 1.5 * iqr,
                q3 + 1.5 * iqr,
                q1,
                q3,
                iqr
            )
        }
        "mv_detector" => {
            if value.is_null() {
                "cell is null".into()
            } else {
                format!(
                    "value {:?} is a configured null-equivalent token",
                    value.render()
                )
            }
        }
        "fahes" => {
            let cfg = FahesConfig::default();
            let rendered = value.render();
            if let Some(v) = value.as_f64() {
                if v.fract() == 0.0 && cfg.numeric_sentinels.contains(&(v as i64)) {
                    return format!(
                        "value {v} matches a conventional disguised-missing sentinel \
                         and sits at the boundary of the column's distribution"
                    );
                }
                format!("value {v} behaves like a disguised missing value (frequency spike at a distribution boundary)")
            } else if cfg
                .placeholders
                .contains(&rendered.trim().to_ascii_lowercase())
            {
                format!("value {rendered:?} is a known placeholder token")
            } else {
                format!(
                    "value {rendered:?} has syntactic pattern {:?}, which deviates from the column's dominant pattern",
                    syntactic_pattern(&rendered)
                )
            }
        }
        "nadeef" => format!(
            "value {:?} disagrees with the majority dependent value among rows \
             sharing its FD determinant (or violates a denial constraint)",
            value.render()
        ),
        "katara" => {
            let det = KataraDetector::default();
            let values: Vec<String> = col
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect();
            match det.align_column(&values) {
                Some(domain) => format!(
                    "column aligns with knowledge-base domain {:?} but value {:?} is not a member",
                    domain.name,
                    value.render()
                ),
                None => "value falls outside the column's aligned knowledge-base domain".into(),
            }
        }
        "holoclean" => "weighted combination of constraint violations, outlier statistics, \
                        null signals, and co-occurrence rarity crossed the noise threshold"
            .into(),
        "raha" => "the per-column classifier trained on propagated user labels judged this \
                   cell's detector-signature dirty"
            .into(),
        "min_k" => "at least K base detectors independently flagged this cell".into(),
        "user_tags" => format!(
            "value {:?} was tagged as known-dirty by the user",
            value.render()
        ),
        "isolation_forest" => "the cell's row isolates in anomalously short paths across the \
                               random isolation trees, and this cell is its most extreme value"
            .into(),
        other => format!("flagged by {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{Detection, DetectionContext, Detector};
    use crate::stat::SdDetector;
    use datalens_table::Column;

    fn table_and_merged() -> (Table, ConsolidatedDetections) {
        let mut vals: Vec<Option<f64>> = (0..40).map(|i| Some(10.0 + (i % 4) as f64)).collect();
        vals[7] = Some(500.0);
        let t = Table::new("t", vec![Column::from_f64("x", vals)]).unwrap();
        let d = SdDetector::default().detect(&t, &DetectionContext::default());
        (t, ConsolidatedDetections::merge(vec![d]))
    }

    #[test]
    fn sd_explanation_includes_sigma() {
        let (t, merged) = table_and_merged();
        let exp = explain_cell(&t, &merged, CellRef::new(7, 0)).unwrap();
        assert_eq!(exp.column, "x");
        assert_eq!(exp.reasons.len(), 1);
        assert!(
            exp.reasons[0].message.contains("σ"),
            "{}",
            exp.reasons[0].message
        );
        assert!(exp.render().contains("[sd]"));
    }

    #[test]
    fn unflagged_cell_has_no_explanation() {
        let (t, merged) = table_and_merged();
        assert!(explain_cell(&t, &merged, CellRef::new(0, 0)).is_none());
    }

    #[test]
    fn multi_tool_provenance_yields_multiple_reasons() {
        let (t, _) = table_and_merged();
        let cell = CellRef::new(7, 0);
        let merged = ConsolidatedDetections::merge(vec![
            Detection::new("sd", vec![cell]),
            Detection::new("iqr", vec![cell]),
        ]);
        let exp = explain_cell(&t, &merged, cell).unwrap();
        assert_eq!(exp.reasons.len(), 2);
        assert!(exp.reasons.iter().any(|r| r.tool == "iqr"));
        assert!(exp.reasons.iter().any(|r| r.message.contains("fences")));
    }

    #[test]
    fn explain_all_respects_limit() {
        let (t, _) = table_and_merged();
        let cells: Vec<CellRef> = (0..10).map(|r| CellRef::new(r, 0)).collect();
        let merged = ConsolidatedDetections::merge(vec![Detection::new("sd", cells)]);
        assert_eq!(explain_all(&t, &merged, 3).len(), 3);
        assert_eq!(explain_all(&t, &merged, 100).len(), 10);
    }

    #[test]
    fn null_cell_mv_explanation() {
        let t = Table::new("t", vec![Column::from_f64("x", [Some(1.0), None])]).unwrap();
        let cell = CellRef::new(1, 0);
        let merged = ConsolidatedDetections::merge(vec![Detection::new("mv_detector", vec![cell])]);
        let exp = explain_cell(&t, &merged, cell).unwrap();
        assert_eq!(exp.reasons[0].message, "cell is null");
    }
}

//! HoloClean-style probabilistic error detection (Rekatsinas et al., 2017).
//!
//! HoloClean combines weak signals — constraint violations, outlier
//! statistics, co-occurrence rarity — into a factor-graph model. The
//! detection side reproduced here scores each cell by a weighted sum of
//! the same signal families and flags cells above a noise threshold; the
//! repair side (value inference) lives in `datalens-repair`.

use std::collections::HashMap;

use datalens_table::{CellRef, DataType, Table};

use crate::detector::{Detection, DetectionContext, Detector};
use crate::nadeef::NadeefDetector;
use crate::stat::SdDetector;

/// Signal weights for the HoloClean detector.
#[derive(Debug, Clone)]
pub struct HoloCleanConfig {
    pub w_constraint: f64,
    pub w_outlier: f64,
    pub w_null: f64,
    pub w_cooccurrence: f64,
    /// Cells scoring at or above this total are flagged.
    pub threshold: f64,
    /// A value–value pair must be rarer than this conditional probability
    /// to emit the co-occurrence signal.
    pub cooccurrence_floor: f64,
}

impl Default for HoloCleanConfig {
    fn default() -> Self {
        HoloCleanConfig {
            w_constraint: 1.0,
            w_outlier: 0.8,
            w_null: 0.6,
            w_cooccurrence: 0.5,
            threshold: 0.8,
            cooccurrence_floor: 0.05,
        }
    }
}

/// The HoloClean detector.
#[derive(Debug, Clone, Default)]
pub struct HoloCleanDetector {
    pub config: HoloCleanConfig,
}

impl Detector for HoloCleanDetector {
    fn name(&self) -> &'static str {
        "holoclean"
    }

    fn detect(&self, table: &Table, ctx: &DetectionContext) -> Detection {
        let n_rows = table.n_rows();
        let n_cols = table.n_cols();
        let mut scores: HashMap<CellRef, f64> = HashMap::new();

        // Signal 1: constraint (FD) violations via the NADEEF machinery.
        for cell in NadeefDetector::default().detect(table, ctx).cells {
            *scores.entry(cell).or_insert(0.0) += self.config.w_constraint;
        }

        // Signal 2: statistical outliers.
        for cell in (SdDetector { k: 3.0 }).detect(table, ctx).cells {
            *scores.entry(cell).or_insert(0.0) += self.config.w_outlier;
        }

        // Signal 3: nulls.
        for (c, col) in table.columns().iter().enumerate() {
            for r in 0..n_rows {
                if col.is_null(r) {
                    *scores.entry(CellRef::new(r, c)).or_insert(0.0) += self.config.w_null;
                }
            }
        }

        // Signal 4: categorical co-occurrence rarity. For each pair of
        // string columns, P(b | a) far below the floor marks the b-cell.
        let str_cols: Vec<usize> = (0..n_cols)
            .filter(|&c| table.column(c).expect("in range").dtype() == DataType::Str)
            .filter(|&c| {
                // Skip identifier-like columns (almost all distinct).
                let col = table.column(c).expect("in range");
                (col.value_counts().len() as f64) < 0.5 * n_rows as f64
            })
            .collect();
        for &a in &str_cols {
            for &b in &str_cols {
                if a == b {
                    continue;
                }
                let col_a = table.column(a).expect("in range");
                let col_b = table.column(b).expect("in range");
                let mut pair_counts: HashMap<(String, String), usize> = HashMap::new();
                let mut a_counts: HashMap<String, usize> = HashMap::new();
                for r in 0..n_rows {
                    let (va, vb) = (col_a.get(r), col_b.get(r));
                    if va.is_null() || vb.is_null() {
                        continue;
                    }
                    let ka = va.render();
                    let kb = vb.render();
                    *a_counts.entry(ka.clone()).or_insert(0) += 1;
                    *pair_counts.entry((ka, kb)).or_insert(0) += 1;
                }
                for r in 0..n_rows {
                    let (va, vb) = (col_a.get(r), col_b.get(r));
                    if va.is_null() || vb.is_null() {
                        continue;
                    }
                    let ka = va.render();
                    let total = a_counts[&ka];
                    if total < 5 {
                        continue; // too little evidence about this a-value
                    }
                    let pair = pair_counts[&(ka, vb.render())];
                    let cond = pair as f64 / total as f64;
                    if cond < self.config.cooccurrence_floor {
                        *scores.entry(CellRef::new(r, b)).or_insert(0.0) +=
                            self.config.w_cooccurrence;
                    }
                }
            }
        }

        let cells: Vec<CellRef> = scores
            .into_iter()
            .filter(|(_, s)| *s >= self.config.threshold)
            .map(|(c, _)| c)
            .collect();
        Detection::new(self.name(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_fd::{Fd, FdRule, RuleSet};
    use datalens_table::Column;

    #[test]
    fn combines_null_and_outlier_signals() {
        let mut vals: Vec<Option<f64>> = (0..40).map(|i| Some(10.0 + (i % 4) as f64)).collect();
        vals[7] = Some(1000.0);
        vals[20] = None;
        let t = Table::new("t", vec![Column::from_f64("x", vals)]).unwrap();
        let d = HoloCleanDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.cells.contains(&CellRef::new(7, 0)));
        // Null alone (0.6) is below the default threshold (0.8): HoloClean
        // wants corroboration.
        assert!(!d.cells.contains(&CellRef::new(20, 0)));
    }

    #[test]
    fn constraint_violations_alone_cross_threshold() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("zip", [Some(1), Some(1), Some(1)]),
                Column::from_str_vals("city", [Some("ulm"), Some("ulm"), Some("oops")]),
            ],
        )
        .unwrap();
        let mut rs = RuleSet::new();
        rs.add(FdRule::user_defined(
            Fd::new(vec!["zip".into()], "city".into()).unwrap(),
        ));
        let d = HoloCleanDetector::default().detect(&t, &DetectionContext::with_rules(rs));
        assert_eq!(d.cells, vec![CellRef::new(2, 1)]);
    }

    #[test]
    fn cooccurrence_rarity_flags_inconsistent_pairs() {
        // 30 rows of (berlin, DE) + 1 row (berlin, FR): FR cell is rare
        // given berlin. Combined with nothing else it is 0.5 < 0.8, so
        // raise the weight to make the signal observable on its own.
        let mut cities: Vec<Option<&str>> = vec![Some("berlin"); 31];
        let mut countries: Vec<Option<&str>> = vec![Some("DE"); 31];
        countries[17] = Some("FR");
        cities.push(Some("paris"));
        countries.push(Some("FR"));
        let t = Table::new(
            "t",
            vec![
                Column::from_str_vals("city", cities),
                Column::from_str_vals("country", countries),
            ],
        )
        .unwrap();
        let det = HoloCleanDetector {
            config: HoloCleanConfig {
                w_cooccurrence: 1.0,
                ..Default::default()
            },
        };
        let d = det.detect(&t, &DetectionContext::default());
        assert!(d.cells.contains(&CellRef::new(17, 1)), "{:?}", d.cells);
        // The lone legitimate (paris, FR) row: paris appears once (< 5
        // evidence floor), so it must not be flagged.
        assert!(!d.cells.contains(&CellRef::new(31, 1)));
    }

    #[test]
    fn clean_table_produces_nothing() {
        let t = Table::new(
            "t",
            vec![Column::from_f64(
                "x",
                (0..30).map(|i| Some(i as f64)).collect::<Vec<_>>(),
            )],
        )
        .unwrap();
        let d = HoloCleanDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.is_empty());
    }
}

//! MV Detector: explicit missing values plus configured null-equivalents.

use datalens_table::{CellRef, Table};

use crate::detector::{Detection, DetectionContext, Detector};

/// Flags every null cell, plus string cells whose (lowercased, trimmed)
/// content matches a configured null-equivalent token.
#[derive(Debug, Clone)]
pub struct MvDetector {
    /// Extra string spellings treated as missing (lowercase).
    pub null_equivalents: Vec<String>,
}

impl Default for MvDetector {
    fn default() -> Self {
        MvDetector {
            null_equivalents: ["", "na", "n/a", "null", "none", "nan", "?", "-"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

impl Detector for MvDetector {
    fn name(&self) -> &'static str {
        "mv_detector"
    }

    fn detect(&self, table: &Table, _ctx: &DetectionContext) -> Detection {
        let mut cells = Vec::new();
        for (col_idx, col) in table.columns().iter().enumerate() {
            for row in 0..table.n_rows() {
                if col.is_null(row) {
                    cells.push(CellRef::new(row, col_idx));
                    continue;
                }
                if let Some(s) = col.get(row).as_str() {
                    let norm = s.trim().to_ascii_lowercase();
                    if self.null_equivalents.contains(&norm) {
                        cells.push(CellRef::new(row, col_idx));
                    }
                }
            }
        }
        Detection::new(self.name(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    #[test]
    fn flags_nulls_and_equivalents() {
        let t = Table::new(
            "t",
            vec![
                Column::from_f64("n", [Some(1.0), None, Some(3.0)]),
                Column::from_str_vals("s", [Some("ok"), Some("N/A"), Some("?")]),
            ],
        )
        .unwrap();
        let d = MvDetector::default().detect(&t, &DetectionContext::default());
        assert_eq!(
            d.cells,
            vec![CellRef::new(1, 0), CellRef::new(1, 1), CellRef::new(2, 1)]
        );
    }

    #[test]
    fn clean_table_yields_nothing() {
        let t = Table::new(
            "t",
            vec![Column::from_str_vals("s", [Some("a"), Some("b")])],
        )
        .unwrap();
        assert!(MvDetector::default()
            .detect(&t, &DetectionContext::default())
            .is_empty());
    }

    #[test]
    fn custom_equivalents() {
        let t = Table::new(
            "t",
            vec![Column::from_str_vals("s", [Some("TBD"), Some("x")])],
        )
        .unwrap();
        let det = MvDetector {
            null_equivalents: vec!["tbd".into()],
        };
        let d = det.detect(&t, &DetectionContext::default());
        assert_eq!(d.cells, vec![CellRef::new(0, 0)]);
    }
}

//! MV Detector: explicit missing values plus configured null-equivalents.

use datalens_table::{CellRef, ChunkValues, Table};

use crate::detector::{Detection, DetectionContext, Detector};

/// Flags every null cell, plus string cells whose (lowercased, trimmed)
/// content matches a configured null-equivalent token.
#[derive(Debug, Clone)]
pub struct MvDetector {
    /// Extra string spellings treated as missing (lowercase).
    pub null_equivalents: Vec<String>,
}

impl Default for MvDetector {
    fn default() -> Self {
        MvDetector {
            null_equivalents: ["", "na", "n/a", "null", "none", "nan", "?", "-"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

impl Detector for MvDetector {
    fn name(&self) -> &'static str {
        "mv_detector"
    }

    fn detect(&self, table: &Table, _ctx: &DetectionContext) -> Detection {
        let mut cells = Vec::new();
        for (col_idx, col) in table.columns().iter().enumerate() {
            let mut base = 0;
            for chunk in col.chunks() {
                match chunk.values() {
                    ChunkValues::Str { dict, codes } => {
                        // Normalise each dictionary entry once per chunk
                        // instead of once per cell.
                        let is_mv: Vec<bool> = dict
                            .iter()
                            .map(|s| {
                                let norm = s.trim().to_ascii_lowercase();
                                self.null_equivalents.contains(&norm)
                            })
                            .collect();
                        for (row, &code) in codes.iter().enumerate() {
                            if !chunk.is_valid(row) || is_mv[code as usize] {
                                cells.push(CellRef::new(base + row, col_idx));
                            }
                        }
                    }
                    _ => {
                        if chunk.null_count() > 0 {
                            for row in 0..chunk.len() {
                                if !chunk.is_valid(row) {
                                    cells.push(CellRef::new(base + row, col_idx));
                                }
                            }
                        }
                    }
                }
                base += chunk.len();
            }
        }
        Detection::new(self.name(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    #[test]
    fn flags_nulls_and_equivalents() {
        let t = Table::new(
            "t",
            vec![
                Column::from_f64("n", [Some(1.0), None, Some(3.0)]),
                Column::from_str_vals("s", [Some("ok"), Some("N/A"), Some("?")]),
            ],
        )
        .unwrap();
        let d = MvDetector::default().detect(&t, &DetectionContext::default());
        assert_eq!(
            d.cells,
            vec![CellRef::new(1, 0), CellRef::new(1, 1), CellRef::new(2, 1)]
        );
    }

    #[test]
    fn clean_table_yields_nothing() {
        let t = Table::new(
            "t",
            vec![Column::from_str_vals("s", [Some("a"), Some("b")])],
        )
        .unwrap();
        assert!(MvDetector::default()
            .detect(&t, &DetectionContext::default())
            .is_empty());
    }

    #[test]
    fn custom_equivalents() {
        let t = Table::new(
            "t",
            vec![Column::from_str_vals("s", [Some("TBD"), Some("x")])],
        )
        .unwrap();
        let det = MvDetector {
            null_equivalents: vec!["tbd".into()],
        };
        let d = det.detect(&t, &DetectionContext::default());
        assert_eq!(d.cells, vec![CellRef::new(0, 0)]);
    }

    #[test]
    fn chunk_boundaries_are_invisible() {
        let vals: Vec<Option<String>> = (0..100)
            .map(|i| match i % 7 {
                0 => None,
                1 => Some("NA".to_string()),
                _ => Some(format!("v{i}")),
            })
            .collect();
        let col = Column::from_str_vals("s", vals);
        let flat = Table::new("t", vec![col.clone()]).unwrap();
        let chunked = Table::new("t", vec![col.rechunk(9)]).unwrap();
        let det = MvDetector::default();
        let ctx = DetectionContext::default();
        let a = det.detect(&flat, &ctx);
        assert_eq!(a.cells, det.detect(&chunked, &ctx).cells);
        assert_eq!(a.cells.len(), 15 + 15); // 15 nulls + 15 "NA"s
    }
}

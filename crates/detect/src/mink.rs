//! Min-K ensemble detection: a cell is an error when at least K base
//! tools flag it (the ensemble method the paper lists alongside the
//! individual detectors).

use std::collections::HashMap;

use datalens_table::{CellRef, Table};

use crate::detector::{Detection, DetectionContext, Detector};
use crate::fahes::FahesDetector;
use crate::mv::MvDetector;
use crate::stat::{IqrDetector, SdDetector};

/// The Min-K ensemble over an owned set of base detectors.
pub struct MinKDetector {
    /// Minimum number of agreeing tools.
    pub k: usize,
    /// The base detectors voting in the ensemble.
    pub base: Vec<Box<dyn Detector>>,
}

impl MinKDetector {
    /// The default ensemble the dashboard ships: SD, IQR, MV, FAHES.
    pub fn with_default_base(k: usize) -> MinKDetector {
        MinKDetector {
            k,
            base: vec![
                Box::new(SdDetector::default()),
                Box::new(IqrDetector::default()),
                Box::new(MvDetector::default()),
                Box::new(FahesDetector::default()),
            ],
        }
    }

    /// Vote over pre-computed detections (used by the ablation bench so
    /// base tools run once per K sweep).
    pub fn vote(detections: &[Detection], k: usize) -> Detection {
        let mut counts: HashMap<CellRef, usize> = HashMap::new();
        for det in detections {
            for &cell in &det.cells {
                *counts.entry(cell).or_insert(0) += 1;
            }
        }
        let cells: Vec<CellRef> = counts
            .into_iter()
            .filter(|(_, c)| *c >= k.max(1))
            .map(|(cell, _)| cell)
            .collect();
        Detection::new("min_k", cells)
    }
}

impl Detector for MinKDetector {
    fn name(&self) -> &'static str {
        "min_k"
    }

    fn detect(&self, table: &Table, ctx: &DetectionContext) -> Detection {
        let detections: Vec<Detection> = self.base.iter().map(|d| d.detect(table, ctx)).collect();
        Self::vote(&detections, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn table() -> Table {
        // Outlier at row 3 (caught by SD and IQR), null at row 8 (caught
        // by MV only).
        let mut vals: Vec<Option<f64>> = (0..30).map(|i| Some(5.0 + (i % 3) as f64)).collect();
        vals[3] = Some(500.0);
        vals[8] = None;
        Table::new("t", vec![Column::from_f64("x", vals)]).unwrap()
    }

    #[test]
    fn k1_is_union() {
        let d = MinKDetector::with_default_base(1).detect(&table(), &DetectionContext::default());
        assert!(d.cells.contains(&CellRef::new(3, 0)));
        assert!(d.cells.contains(&CellRef::new(8, 0)));
    }

    #[test]
    fn k2_requires_agreement() {
        let d = MinKDetector::with_default_base(2).detect(&table(), &DetectionContext::default());
        assert!(d.cells.contains(&CellRef::new(3, 0))); // SD + IQR agree
        assert!(!d.cells.contains(&CellRef::new(8, 0))); // only MV
    }

    #[test]
    fn large_k_empties_output() {
        let d = MinKDetector::with_default_base(9).detect(&table(), &DetectionContext::default());
        assert!(d.is_empty());
    }

    #[test]
    fn vote_over_precomputed_detections() {
        let a = Detection::new("a", vec![CellRef::new(0, 0), CellRef::new(1, 0)]);
        let b = Detection::new("b", vec![CellRef::new(1, 0)]);
        let v = MinKDetector::vote(&[a, b], 2);
        assert_eq!(v.cells, vec![CellRef::new(1, 0)]);
    }

    #[test]
    fn k_zero_behaves_as_k_one() {
        let a = Detection::new("a", vec![CellRef::new(0, 0)]);
        let v = MinKDetector::vote(&[a], 0);
        assert_eq!(v.len(), 1);
    }
}

//! User data tagging (§3): "Users can flag known erroneous values (e.g.
//! −1, 0, 99999) within the dataset … DataLens performs a comprehensive
//! search for these tagged values within the dataset, appending their
//! indices to the detection list."

use datalens_table::{CellRef, Table};

use crate::detector::{Detection, DetectionContext, Detector};

/// Flags every cell whose rendered content equals one of the user-tagged
/// values (exact match after trimming; numeric tags match numerically, so
/// a tag of `-1` hits both `-1` and `-1.0`).
#[derive(Debug, Clone, Default)]
pub struct TaggedValueDetector;

impl Detector for TaggedValueDetector {
    fn name(&self) -> &'static str {
        "user_tags"
    }

    fn detect(&self, table: &Table, ctx: &DetectionContext) -> Detection {
        if ctx.tagged_values.is_empty() {
            return Detection::new(self.name(), Vec::new());
        }
        // Precompute numeric forms of the tags for cross-type matching.
        let tags: Vec<(String, Option<f64>)> = ctx
            .tagged_values
            .iter()
            .map(|t| {
                let trimmed = t.trim().to_string();
                let as_num = trimmed.parse::<f64>().ok();
                (trimmed, as_num)
            })
            .collect();
        let mut cells = Vec::new();
        for (c, col) in table.columns().iter().enumerate() {
            for r in 0..table.n_rows() {
                let v = col.get(r);
                if v.is_null() {
                    continue;
                }
                let rendered = v.render();
                let numeric = v.as_f64();
                let hit = tags.iter().any(|(text, num)| {
                    rendered == *text || matches!((num, numeric), (Some(a), Some(b)) if a == &b)
                });
                if hit {
                    cells.push(CellRef::new(r, c));
                }
            }
        }
        Detection::new(self.name(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    #[test]
    fn finds_tagged_values_across_types() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("a", [Some(-1), Some(5), Some(99999)]),
                Column::from_f64("b", [Some(-1.0), Some(2.0), Some(3.0)]),
                Column::from_str_vals("c", [Some("-1"), Some("x"), Some("?")]),
            ],
        )
        .unwrap();
        let ctx = DetectionContext {
            tagged_values: vec!["-1".into(), "?".into()],
            ..Default::default()
        };
        let d = TaggedValueDetector.detect(&t, &ctx);
        assert_eq!(
            d.cells,
            vec![
                CellRef::new(0, 0),
                CellRef::new(0, 1),
                CellRef::new(0, 2),
                CellRef::new(2, 2),
            ]
        );
    }

    #[test]
    fn no_tags_no_detections() {
        let t = Table::new("t", vec![Column::from_i64("a", [Some(-1)])]).unwrap();
        let d = TaggedValueDetector.detect(&t, &DetectionContext::default());
        assert!(d.is_empty());
    }

    #[test]
    fn nulls_never_match_tags() {
        let t = Table::new("t", vec![Column::from_str_vals("a", [None, Some("")])]).unwrap();
        let ctx = DetectionContext {
            tagged_values: vec!["".into()],
            ..Default::default()
        };
        let d = TaggedValueDetector.detect(&t, &ctx);
        // Row 0 is null → skipped; row 1 renders "" → matched.
        assert_eq!(d.cells.len(), 1);
    }
}

//! RAHA-style ML error detection (Mahdavi et al., 2019) with the
//! interactive labeling session the paper evaluates in Figure 3.
//!
//! RAHA's pipeline, reproduced here end to end:
//!
//! 1. **feature generation** — a library of cheap detector configurations
//!    (z-score at several k, IQR at several fences, missing-value checks,
//!    FAHES channels, pattern deviance, value rarity, FD violations) runs
//!    over the table; each cell gets a binary signature vector, one bit
//!    per configuration;
//! 2. **per-column clustering** — cells cluster by signature
//!    (agglomerative, deduplicated), so similar-looking cells group;
//! 3. **tuple sampling** — the user is shown the tuple covering the most
//!    currently-unlabeled clusters (RAHA's cluster-coverage strategy);
//! 4. **label propagation** — a user label on one cell extends to the
//!    cell's whole cluster;
//! 5. **classification** — a decision tree per column learns
//!    dirty-vs-clean from the propagated labels and classifies the rest.
//!
//! Budget semantics follow §3 of the DataLens paper: the budget counts
//! tuples the user actually *labels* (ones containing dirty cells);
//! skipped clean tuples are still *reviewed* — which is why the measured
//! review effort exceeds the nominal budget (Figure 3's key observation).

// Index-based loops here mirror the published algorithms' notation;
// iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

use std::collections::HashSet;

use datalens_ml::agglomerative;
use datalens_ml::labelprop::propagate_in_clusters;
use datalens_ml::tree::{Criterion, DecisionTreeClassifier, TreeConfig};
use datalens_table::{CellRef, Table};

use crate::detector::{Detection, DetectionContext, Detector};
use crate::fahes::FahesDetector;
use crate::katara::KataraDetector;
use crate::mv::MvDetector;
use crate::nadeef::NadeefDetector;
use crate::stat::{IqrDetector, SdDetector};

/// Configuration for a RAHA run.
#[derive(Debug, Clone)]
pub struct RahaConfig {
    /// Number of dirty tuples the user is willing to label.
    pub labeling_budget: usize,
    /// Clusters per column; `None` → `2 × labeling_budget + 2` (RAHA
    /// grows clustering granularity with the budget).
    pub clusters_per_column: Option<usize>,
    /// Hard cap on tuples shown to the user (guards against degenerate
    /// tables with almost no dirty rows).
    pub max_reviewed: usize,
    pub seed: u64,
}

impl Default for RahaConfig {
    fn default() -> Self {
        RahaConfig {
            labeling_budget: 10,
            clusters_per_column: None,
            max_reviewed: 1000,
            seed: 0,
        }
    }
}

/// Per-cell binary signatures for one column.
type ColumnFeatures = Vec<Vec<f64>>;

/// Number of strategies in the feature library (signature width).
pub const STRATEGY_COUNT: usize = 12;

/// Indices of the *high-precision* strategies within the signature
/// (sd k=2/3, IQR 1.5/3, MV, FAHES, KATARA, NADEEF). The remaining bits
/// (sd 1.5, IQR 1.0, length deviance, rarity) are deliberately noisy —
/// useful to the classifier and the sampling strategy, misleading as
/// direct evidence.
pub const STRONG_FEATURES: [usize; 8] = [1, 2, 4, 5, 6, 7, 8, 9];

/// Generate the detector-signature feature matrix for every column.
///
/// Each feature dimension is one base-detector configuration; a cell's bit
/// is 1 when that configuration flags it.
pub fn generate_features(table: &Table, ctx: &DetectionContext) -> Vec<ColumnFeatures> {
    let n_rows = table.n_rows();
    let n_cols = table.n_cols();

    // The strategy library: each entry one Detection. Deliberately
    // heterogeneous, including individually *weak* configurations (k=1.5,
    // IQR 1.0) — RAHA's library mixes strong and noisy strategies, and the
    // noisy ones are what make clean tuples look worth reviewing (the
    // mechanism behind Figure 3's reviewed ≫ budget effect).
    let mut detections = vec![
        SdDetector { k: 1.5 }.detect(table, ctx),
        SdDetector { k: 2.0 }.detect(table, ctx),
        SdDetector { k: 3.0 }.detect(table, ctx),
        IqrDetector { factor: 1.0 }.detect(table, ctx),
        IqrDetector { factor: 1.5 }.detect(table, ctx),
        IqrDetector { factor: 3.0 }.detect(table, ctx),
        MvDetector::default().detect(table, ctx),
        FahesDetector::default().detect(table, ctx),
        KataraDetector::default().detect(table, ctx),
        NadeefDetector::default().detect(table, ctx),
    ];

    // Length-deviance strategy: string cells whose character length sits
    // at the column's extremes (weak, high-recall).
    let mut len_cells = Vec::new();
    for (c, col) in table.columns().iter().enumerate() {
        if col.dtype() != datalens_table::DataType::Str {
            continue;
        }
        let lengths: Vec<(usize, usize)> = (0..n_rows)
            .filter_map(|r| col.get(r).as_str().map(|s| (r, s.chars().count())))
            .collect();
        if lengths.len() < 10 {
            continue;
        }
        let mut sorted: Vec<usize> = lengths.iter().map(|(_, l)| *l).collect();
        sorted.sort_unstable();
        let lo = sorted[sorted.len() / 20];
        let hi = sorted[sorted.len() - 1 - sorted.len() / 20];
        for (r, l) in lengths {
            if l < lo || l > hi {
                len_cells.push(CellRef::new(r, c));
            }
        }
    }
    detections.push(Detection::new("length_deviance", len_cells));
    debug_assert_eq!(detections.len(), STRATEGY_COUNT - 1); // rarity added below

    // Value-rarity feature computed directly (not a Detector because it is
    // deliberately high-recall / low-precision — pure signal, not output).
    let mut rarity_cells = Vec::new();
    for (c, col) in table.columns().iter().enumerate() {
        let counts = col.value_counts();
        let rare: HashSet<String> = counts
            .iter()
            .filter(|(_, n)| *n == 1)
            .map(|(v, _)| v.render())
            .collect();
        if rare.len() * 2 > n_rows {
            continue; // high-cardinality column: uniqueness is the norm
        }
        for r in 0..n_rows {
            let v = col.get(r);
            if !v.is_null() && rare.contains(&v.render()) {
                rarity_cells.push(CellRef::new(r, c));
            }
        }
    }
    detections.push(Detection::new("rarity", rarity_cells));

    let width = detections.len();
    let mut features: Vec<ColumnFeatures> = (0..n_cols)
        .map(|_| vec![vec![0.0; width]; n_rows])
        .collect();
    for (f, det) in detections.iter().enumerate() {
        for cell in &det.cells {
            if cell.col < n_cols && cell.row < n_rows {
                features[cell.col][cell.row][f] = 1.0;
            }
        }
    }
    features
}

/// An interactive RAHA labeling session.
///
/// Drive it with [`RahaSession::next_tuple`] / [`RahaSession::label_tuple`]
/// until [`RahaSession::budget_exhausted`], then call
/// [`RahaSession::finish`] for the final detection.
pub struct RahaSession {
    config: RahaConfig,
    n_rows: usize,
    n_cols: usize,
    features: Vec<ColumnFeatures>,
    /// Cluster id per (column, row).
    clusters: Vec<Vec<usize>>,
    /// Cell labels: labels[col][row] — Some(true) = dirty.
    labels: Vec<Vec<Option<bool>>>,
    reviewed: Vec<usize>,
    labeled_dirty: usize,
    /// Sampling state for the stochastic tuple-selection strategy.
    rng: rand::rngs::StdRng,
}

impl RahaSession {
    /// Build the session: feature generation + per-column clustering.
    pub fn new(table: &Table, ctx: &DetectionContext, config: RahaConfig) -> RahaSession {
        let features = generate_features(table, ctx);
        let k = config
            .clusters_per_column
            .unwrap_or(2 * config.labeling_budget + 2)
            .max(2);
        let clusters: Vec<Vec<usize>> = features
            .iter()
            .map(|col_feats| {
                if col_feats.is_empty() {
                    Vec::new()
                } else {
                    agglomerative::cluster(col_feats, k).assignments
                }
            })
            .collect();
        let n_rows = table.n_rows();
        let n_cols = table.n_cols();
        use rand::SeedableRng;
        let rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        RahaSession {
            config,
            n_rows,
            n_cols,
            features,
            clusters,
            labels: vec![vec![None; n_rows]; n_cols],
            reviewed: Vec::new(),
            labeled_dirty: 0,
            rng,
        }
    }

    /// Number of tuples shown to the user so far.
    pub fn reviewed_count(&self) -> usize {
        self.reviewed.len()
    }

    /// Number of budget-consuming (dirty) tuples labeled so far.
    pub fn labeled_dirty_count(&self) -> usize {
        self.labeled_dirty
    }

    /// True once the user's budget is consumed (or the review cap hit).
    pub fn budget_exhausted(&self) -> bool {
        self.labeled_dirty >= self.config.labeling_budget
            || self.reviewed.len() >= self.config.max_reviewed.min(self.n_rows)
    }

    /// The next tuple to show, per RAHA's cluster-coverage sampling: an
    /// unreviewed row drawn with probability proportional to the number
    /// of not-yet-labeled clusters it covers. The draw prioritises
    /// potentially erroneous data (rare signatures keep their clusters
    /// unlabeled longest) but regularly surfaces clean tuples — the
    /// behaviour behind Figure 3's reviewed ≫ budget observation.
    /// `None` when the budget is exhausted or every row was reviewed.
    pub fn next_tuple(&mut self) -> Option<usize> {
        use rand::RngExt as _;
        if self.budget_exhausted() {
            return None;
        }
        let reviewed: HashSet<usize> = self.reviewed.iter().copied().collect();
        // Which (col, cluster) pairs already have a labeled member?
        let mut labeled_clusters: HashSet<(usize, usize)> = HashSet::new();
        for c in 0..self.n_cols {
            for r in 0..self.n_rows {
                if self.labels[c][r].is_some() {
                    labeled_clusters.insert((c, self.clusters[c][r]));
                }
            }
        }
        let mut weights: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.n_rows {
            if reviewed.contains(&r) {
                continue;
            }
            let score = (0..self.n_cols)
                .filter(|&c| !labeled_clusters.contains(&(c, self.clusters[c][r])))
                .count();
            if score > 0 {
                // Flat weight: any row still covering an unlabeled cluster
                // is a candidate. Weighting by coverage count would lock
                // onto truly-dirty rows almost immediately, collapsing the
                // reviewed-vs-budget gap the paper measures.
                weights.push((r, 1.0));
            }
        }
        if weights.is_empty() {
            // Every cluster has a label; fall back to any unreviewed row
            // so a generous budget can still be spent.
            return (0..self.n_rows).find(|r| !reviewed.contains(r));
        }
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        let mut target = self.rng.random_range(0.0..total);
        for (r, w) in &weights {
            if target < *w {
                return Some(*r);
            }
            target -= w;
        }
        weights.last().map(|(r, _)| *r)
    }

    /// Record the user's verdict on `row`: `dirty_cols` are the columns
    /// the user marked dirty (empty slice = the tuple was clean /
    /// skipped). Clean labels are recorded for every other cell of the
    /// row — the user reviewed them.
    pub fn label_tuple(&mut self, row: usize, dirty_cols: &[usize]) {
        assert!(row < self.n_rows, "row out of range");
        self.reviewed.push(row);
        for c in 0..self.n_cols {
            self.labels[c][row] = Some(dirty_cols.contains(&c));
        }
        if !dirty_cols.is_empty() {
            self.labeled_dirty += 1;
        }
    }

    /// Finish: propagate labels through clusters, train a per-column
    /// decision tree, and classify every cell.
    pub fn finish(&self) -> Detection {
        let mut cells = Vec::new();
        for c in 0..self.n_cols {
            if self.n_rows == 0 {
                continue;
            }
            let (propagated, _) = propagate_in_clusters(&self.clusters[c], &self.labels[c]);
            // Assemble training data from propagated labels.
            let mut train_x = Vec::new();
            let mut train_y: Vec<String> = Vec::new();
            for r in 0..self.n_rows {
                if let Some(l) = propagated[r] {
                    train_x.push(self.features[c][r].clone());
                    train_y.push(if l { "dirty" } else { "clean" }.to_string());
                }
            }
            let has_dirty = train_y.iter().any(|l| l == "dirty");
            let has_clean = train_y.iter().any(|l| l == "clean");
            if !has_dirty {
                continue; // nothing learnably dirty in this column
            }
            if !has_clean {
                // Everything labeled dirty: flag the labeled cells only.
                for (r, l) in propagated.iter().enumerate() {
                    if *l == Some(true) {
                        cells.push(CellRef::new(r, c));
                    }
                }
                continue;
            }
            let mut tree = DecisionTreeClassifier::new(
                TreeConfig {
                    max_depth: 8,
                    ..TreeConfig::default()
                },
                Criterion::Gini,
            );
            tree.fit(&train_x, &train_y);
            let preds = tree.predict(&self.features[c]);
            for (r, p) in preds.iter().enumerate() {
                if p == "dirty" {
                    cells.push(CellRef::new(r, c));
                }
            }
        }
        Detection::new("raha", cells)
    }
}

/// Non-interactive wrapper: drives a [`RahaSession`] with a
/// ground-truth-free heuristic "user" that marks a cell dirty when at
/// least two of the *high-precision* strategies agree on it (the noisy
/// strategies are excluded from this vote — they exist for sampling and
/// the classifier, not as direct evidence). Real evaluations use the
/// simulated (ground-truth) user in the core crate; this impl exists so
/// RAHA can run inside detector pipelines without interaction.
#[derive(Debug, Clone, Default)]
pub struct RahaDetector {
    pub config: RahaConfig,
}

impl Detector for RahaDetector {
    fn name(&self) -> &'static str {
        "raha"
    }

    fn detect(&self, table: &Table, ctx: &DetectionContext) -> Detection {
        let mut session = RahaSession::new(table, ctx, self.config.clone());
        while let Some(row) = session.next_tuple() {
            let dirty_cols: Vec<usize> = (0..table.n_cols())
                .filter(|&c| {
                    let f = &session.features[c][row];
                    let strong_fired = STRONG_FEATURES
                        .iter()
                        .filter(|&&i| f.get(i).copied().unwrap_or(0.0) > 0.0)
                        .count();
                    strong_fired >= 2
                })
                .collect();
            session.label_tuple(row, &dirty_cols);
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn dirty_table() -> Table {
        // Numeric column with planted outliers + string column with
        // placeholder dirt.
        let mut nums: Vec<Option<f64>> = (0..60).map(|i| Some(10.0 + (i % 7) as f64)).collect();
        nums[5] = Some(900.0);
        nums[33] = Some(-800.0);
        let mut strs: Vec<Option<String>> =
            (0..60).map(|i| Some(format!("item {}", i % 9))).collect();
        strs[12] = Some("?".to_string());
        strs[40] = Some("unknown".to_string());
        Table::new(
            "t",
            vec![
                Column::from_f64("x", nums),
                Column::from_str_vals("s", strs),
            ],
        )
        .unwrap()
    }

    #[test]
    fn feature_matrix_shape() {
        let t = dirty_table();
        let f = generate_features(&t, &DetectionContext::default());
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].len(), 60);
        assert!(!f[0][0].is_empty());
        // Outlier cell must fire strictly more bits than a clean cell.
        let fired = |v: &Vec<f64>| v.iter().filter(|&&b| b > 0.0).count();
        assert!(fired(&f[0][5]) > fired(&f[0][0]));
    }

    #[test]
    fn session_reviews_and_respects_budget() {
        let t = dirty_table();
        let cfg = RahaConfig {
            labeling_budget: 2,
            ..Default::default()
        };
        let mut session = RahaSession::new(&t, &DetectionContext::default(), cfg);
        let dirty_rows: HashSet<usize> = [5, 33, 12, 40].into_iter().collect();
        while let Some(row) = session.next_tuple() {
            // Oracle user: label exactly the planted dirt.
            let dirty_cols: Vec<usize> = match row {
                5 | 33 => vec![0],
                12 | 40 => vec![1],
                _ => vec![],
            };
            session.label_tuple(row, &dirty_cols);
            let _ = &dirty_rows;
        }
        assert_eq!(session.labeled_dirty_count(), 2);
        assert!(session.reviewed_count() >= 2);
        assert!(session.budget_exhausted());
    }

    #[test]
    fn finish_detects_planted_errors_after_labeling() {
        let t = dirty_table();
        let cfg = RahaConfig {
            labeling_budget: 4,
            ..Default::default()
        };
        let mut session = RahaSession::new(&t, &DetectionContext::default(), cfg);
        while let Some(row) = session.next_tuple() {
            let dirty_cols: Vec<usize> = match row {
                5 | 33 => vec![0],
                12 | 40 => vec![1],
                _ => vec![],
            };
            session.label_tuple(row, &dirty_cols);
        }
        let detection = session.finish();
        // All four planted errors should be found via propagation +
        // classification (they have distinctive signatures).
        for cell in [
            CellRef::new(5, 0),
            CellRef::new(33, 0),
            CellRef::new(12, 1),
            CellRef::new(40, 1),
        ] {
            assert!(detection.cells.contains(&cell), "missing {cell}");
        }
        // And the bulk of clean cells must not be flagged.
        assert!(detection.len() < 12, "over-flagging: {}", detection.len());
    }

    #[test]
    fn next_tuple_never_repeats_rows() {
        let t = dirty_table();
        let mut session = RahaSession::new(
            &t,
            &DetectionContext::default(),
            RahaConfig {
                labeling_budget: 1000,
                max_reviewed: 50,
                ..Default::default()
            },
        );
        let mut seen = HashSet::new();
        while let Some(row) = session.next_tuple() {
            assert!(seen.insert(row), "row {row} shown twice");
            session.label_tuple(row, &[]);
        }
        assert_eq!(session.reviewed_count(), 50);
    }

    #[test]
    fn zero_budget_labels_nothing() {
        let t = dirty_table();
        let mut session = RahaSession::new(
            &t,
            &DetectionContext::default(),
            RahaConfig {
                labeling_budget: 0,
                ..Default::default()
            },
        );
        assert!(session.budget_exhausted());
        assert_eq!(session.next_tuple(), None);
        assert!(session.finish().is_empty());
    }

    #[test]
    fn automatic_detector_runs_end_to_end() {
        let t = dirty_table();
        let d = RahaDetector::default().detect(&t, &DetectionContext::default());
        // The heuristic user is noisy, but the strong outliers should be in.
        assert!(d.cells.contains(&CellRef::new(5, 0)), "{:?}", d.cells);
    }
}

//! # datalens-detect
//!
//! The automated error-detection module of the DataLens reproduction (§3
//! "Automated Error Detection"): ten from-scratch implementations of the
//! tools the paper integrates, behind one [`Detector`] trait —
//!
//! | tool | module | paper role |
//! |------|--------|-----------|
//! | SD (z-score) | [`stat::SdDetector`] | statistical outliers |
//! | IQR | [`stat::IqrDetector`] | statistical outliers |
//! | Isolation Forest | [`stat::IsolationForestDetector`] | statistical outliers |
//! | MV Detector | [`mv::MvDetector`] | missing values |
//! | FAHES | [`fahes::FahesDetector`] | disguised missing values |
//! | NADEEF | [`nadeef::NadeefDetector`] | rule-based (FDs + DCs) |
//! | KATARA | [`katara::KataraDetector`] | knowledge-based |
//! | HoloClean | [`holoclean::HoloCleanDetector`] | probabilistic signals |
//! | RAHA | [`raha`] | ML-based, user-in-the-loop |
//! | Min-K | [`mink::MinKDetector`] | ensemble |
//!
//! plus user data tagging ([`tagging::TaggedValueDetector`]) and
//! cross-tool [`consolidate`]-ion (dedup + Figure 4's per-attribute
//! distribution).

pub mod consolidate;
pub mod detector;
pub mod explain;
pub mod fahes;
pub mod holoclean;
pub mod katara;
pub mod mink;
pub mod mv;
pub mod nadeef;
pub mod raha;
pub mod stat;
pub mod tagging;

pub use consolidate::ConsolidatedDetections;
pub use detector::{Detection, DetectionContext, Detector};
pub use explain::{explain_all, explain_cell, CellExplanation, Reason};
pub use fahes::{FahesConfig, FahesDetector};
pub use holoclean::{HoloCleanConfig, HoloCleanDetector};
pub use katara::{default_knowledge_base, Domain, DomainValidator, KataraDetector};
pub use mink::MinKDetector;
pub use mv::MvDetector;
pub use nadeef::{DenialConstraint, NadeefDetector, PredicateOp};
pub use raha::{RahaConfig, RahaDetector, RahaSession};
pub use stat::{IqrDetector, IsolationForestDetector, SdDetector};
pub use tagging::TaggedValueDetector;

/// Build a detector by its machine name. Returns `None` for unknown names.
/// These are the names DataSheets and the iterative-cleaning search space
/// use.
pub fn detector_by_name(name: &str) -> Option<Box<dyn Detector>> {
    match name {
        "sd" => Some(Box::new(SdDetector::default())),
        "iqr" => Some(Box::new(IqrDetector::default())),
        "isolation_forest" => Some(Box::new(IsolationForestDetector::default())),
        "mv_detector" => Some(Box::new(MvDetector::default())),
        "fahes" => Some(Box::new(FahesDetector::default())),
        "nadeef" => Some(Box::new(NadeefDetector::default())),
        "katara" => Some(Box::new(KataraDetector::default())),
        "holoclean" => Some(Box::new(HoloCleanDetector::default())),
        "raha" => Some(Box::new(RahaDetector::default())),
        "min_k" => Some(Box::new(MinKDetector::with_default_base(2))),
        "user_tags" => Some(Box::new(TaggedValueDetector)),
        _ => None,
    }
}

/// All registered detector names, in a stable order.
pub const DETECTOR_NAMES: [&str; 11] = [
    "sd",
    "iqr",
    "isolation_forest",
    "mv_detector",
    "fahes",
    "nadeef",
    "katara",
    "holoclean",
    "raha",
    "min_k",
    "user_tags",
];

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn every_registered_name_resolves_and_round_trips() {
        for name in DETECTOR_NAMES {
            let det = detector_by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(det.name(), name);
        }
        assert!(detector_by_name("bogus").is_none());
    }

    #[test]
    fn all_detectors_run_on_a_dirty_preloaded_dataset() {
        let dd = datalens_datasets::registry::dirty("nasa", 0).unwrap();
        let ctx = DetectionContext::default();
        for name in DETECTOR_NAMES {
            let det = detector_by_name(name).unwrap();
            let d = det.detect(&dd.dirty, &ctx);
            // Every flagged cell must be in range.
            for c in &d.cells {
                assert!(c.row < dd.dirty.n_rows() && c.col < dd.dirty.n_cols());
            }
        }
    }

    #[test]
    fn stat_detectors_beat_chance_on_injected_outliers() {
        let dd = datalens_datasets::registry::dirty("nasa", 1).unwrap();
        let ctx = DetectionContext::default();
        let d = SdDetector::default().detect(&dd.dirty, &ctx);
        let score = dd.score_detections(&d.cells);
        // SD should find a solid share of the planted outliers with decent
        // precision (outliers are 5–12σ away).
        assert!(
            score.precision > 0.5,
            "precision {:.3} too low",
            score.precision
        );
        assert!(
            score.true_positives >= dd.count_of(datalens_datasets::ErrorType::Outlier) / 3,
            "tp {} of {} outliers",
            score.true_positives,
            dd.count_of(datalens_datasets::ErrorType::Outlier)
        );
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use datalens_table::{CellRef, Column, Table};

    use crate::consolidate::ConsolidatedDetections;
    use crate::detector::{Detection, DetectionContext, Detector};
    use crate::mink::MinKDetector;
    use crate::stat::{IqrDetector, SdDetector};

    fn numeric_table(vals: &[Option<f64>]) -> Table {
        Table::new("p", vec![Column::from_f64("x", vals.to_vec())]).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Detectors never flag out-of-range or null-value-free cells they
        /// shouldn't: all flagged cells are valid and non-null numerics
        /// for the stat detectors.
        #[test]
        fn stat_detectors_flag_only_valid_cells(
            vals in proptest::collection::vec(proptest::option::of(-1e5f64..1e5), 5..80),
        ) {
            let t = numeric_table(&vals);
            let ctx = DetectionContext::default();
            for det in [&SdDetector::default() as &dyn Detector, &IqrDetector::default()] {
                for c in det.detect(&t, &ctx).cells {
                    prop_assert!(c.row < t.n_rows());
                    prop_assert!(!t.get(c).unwrap().is_null());
                }
            }
        }

        /// Min-K is monotone in K: raising K never adds detections.
        #[test]
        fn min_k_monotone(
            cells_a in proptest::collection::vec((0usize..20, 0usize..3), 0..30),
            cells_b in proptest::collection::vec((0usize..20, 0usize..3), 0..30),
            cells_c in proptest::collection::vec((0usize..20, 0usize..3), 0..30),
        ) {
            let dets = vec![
                Detection::new("a", cells_a.iter().map(|&(r, c)| CellRef::new(r, c)).collect()),
                Detection::new("b", cells_b.iter().map(|&(r, c)| CellRef::new(r, c)).collect()),
                Detection::new("c", cells_c.iter().map(|&(r, c)| CellRef::new(r, c)).collect()),
            ];
            let mut prev = MinKDetector::vote(&dets, 1).cells;
            for k in 2..=4 {
                let cur = MinKDetector::vote(&dets, k).cells;
                prop_assert!(cur.iter().all(|c| prev.contains(c)), "k={k} not ⊆ k-1");
                prev = cur;
            }
        }

        /// Consolidation: the union equals the set union of per-tool cells,
        /// and provenance covers exactly the union.
        #[test]
        fn consolidation_is_exact_union(
            cells_a in proptest::collection::vec((0usize..20, 0usize..3), 0..30),
            cells_b in proptest::collection::vec((0usize..20, 0usize..3), 0..30),
        ) {
            let a = Detection::new("a", cells_a.iter().map(|&(r, c)| CellRef::new(r, c)).collect());
            let b = Detection::new("b", cells_b.iter().map(|&(r, c)| CellRef::new(r, c)).collect());
            let mut expect: Vec<CellRef> = a.cells.iter().chain(&b.cells).copied().collect();
            expect.sort();
            expect.dedup();
            let merged = ConsolidatedDetections::merge(vec![a, b]);
            prop_assert_eq!(&merged.union, &expect);
            prop_assert_eq!(merged.provenance.len(), expect.len());
        }
    }
}

//! FAHES-style disguised-missing-value detection (Qahtan et al., 2018).
//!
//! Disguised missing values (DMVs) are placeholders entered where data is
//! actually absent: `-1` in an age column, `99999` in a zip code, `"?"` in
//! a name. Following FAHES, three detection channels are implemented:
//!
//! 1. **placeholder strings** — tokens from a curated placeholder
//!    vocabulary appearing in otherwise contentful string columns;
//! 2. **numeric sentinels** — values from the conventional sentinel list
//!    (or with an anomalous frequency spike) that sit at the edge of the
//!    column's distribution;
//! 3. **syntactic outliers** — string values whose character-class pattern
//!    deviates from the column's dominant pattern(s).

use std::collections::HashMap;

use datalens_table::{CellRef, DataType, Table, Value};

use crate::detector::{Detection, DetectionContext, Detector};

/// Configuration for [`FahesDetector`].
#[derive(Debug, Clone)]
pub struct FahesConfig {
    /// Known numeric sentinel spellings.
    pub numeric_sentinels: Vec<i64>,
    /// Known string placeholders (lowercase).
    pub placeholders: Vec<String>,
    /// A repeated value must account for at least this fraction of
    /// non-null entries to be considered a frequency-spike sentinel.
    pub spike_fraction: f64,
    /// A column's dominant syntactic pattern set must cover at least this
    /// fraction of values before deviants are flagged.
    pub pattern_coverage: f64,
}

impl Default for FahesConfig {
    fn default() -> Self {
        FahesConfig {
            numeric_sentinels: vec![-1, -9, -99, -999, -9999, 0, 9999, 99999, 999999],
            placeholders: [
                "?", "-", "--", "unknown", "missing", "none", "n/a", "na", "null", "tbd", "xxx",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            spike_fraction: 0.15,
            pattern_coverage: 0.7,
        }
    }
}

/// The FAHES detector.
#[derive(Debug, Clone, Default)]
pub struct FahesDetector {
    pub config: FahesConfig,
}

impl Detector for FahesDetector {
    fn name(&self) -> &'static str {
        "fahes"
    }

    fn detect(&self, table: &Table, _ctx: &DetectionContext) -> Detection {
        let mut cells = Vec::new();
        for (col_idx, col) in table.columns().iter().enumerate() {
            match col.dtype() {
                DataType::Int | DataType::Float => {
                    self.detect_numeric_sentinels(table, col_idx, &mut cells);
                }
                DataType::Str => {
                    self.detect_placeholders(table, col_idx, &mut cells);
                    self.detect_syntactic_outliers(table, col_idx, &mut cells);
                }
                DataType::Bool => {}
            }
        }
        Detection::new(self.name(), cells)
    }
}

impl FahesDetector {
    /// Channel 2: numeric sentinels. A candidate value is flagged when it
    /// is either a known sentinel or a frequency spike, *and* it sits at
    /// the boundary of the column's distribution (strict min or max, far
    /// from the rest).
    fn detect_numeric_sentinels(&self, table: &Table, col_idx: usize, out: &mut Vec<CellRef>) {
        let col = table.column(col_idx).expect("in range");
        let entries = col.numeric_entries();
        if entries.len() < 8 {
            return;
        }
        let n = entries.len() as f64;
        let mut counts: HashMap<u64, (f64, usize)> = HashMap::new(); // bits -> (value, count)
        for (_, v) in &entries {
            counts.entry(v.to_bits()).or_insert((*v, 0)).1 += 1;
        }
        if counts.len() < 3 {
            return; // near-constant columns are not sentinel material
        }

        for (_, (value, count)) in counts.iter() {
            let is_known =
                value.fract() == 0.0 && self.config.numeric_sentinels.contains(&(*value as i64));
            // Spikes are only meaningful in quasi-continuous columns; in a
            // low-cardinality column every legitimate level is "frequent".
            let is_spike = counts.len() >= 10
                && *count as f64 >= self.config.spike_fraction * n
                && *count >= 3;
            if !is_known && !is_spike {
                continue;
            }
            // Distribution-boundary check over the remaining values.
            let rest: Vec<f64> = entries
                .iter()
                .map(|(_, v)| *v)
                .filter(|v| v.to_bits() != value.to_bits())
                .collect();
            if rest.is_empty() {
                continue;
            }
            let rest_min = rest.iter().copied().fold(f64::INFINITY, f64::min);
            let rest_max = rest.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let span = (rest_max - rest_min).max(1e-9);
            let outside_low = *value < rest_min - 0.05 * span;
            let outside_high = *value > rest_max + 0.05 * span;
            // `0`/`-1` in a strictly positive column is the classic case.
            let sign_break = is_known && *value <= 0.0 && rest_min > 0.0;
            if outside_low || outside_high || sign_break {
                for (row, v) in &entries {
                    if v.to_bits() == value.to_bits() {
                        out.push(CellRef::new(*row, col_idx));
                    }
                }
            }
        }
    }

    /// Channel 1: placeholder strings in otherwise contentful columns.
    fn detect_placeholders(&self, table: &Table, col_idx: usize, out: &mut Vec<CellRef>) {
        let col = table.column(col_idx).expect("in range");
        for row in 0..table.n_rows() {
            if let Value::Str(s) = col.get(row) {
                let norm = s.trim().to_ascii_lowercase();
                if self.config.placeholders.contains(&norm) {
                    out.push(CellRef::new(row, col_idx));
                }
            }
        }
    }

    /// Channel 3: syntactic outliers — values whose character-class
    /// pattern is not among the patterns that jointly cover
    /// `pattern_coverage` of the column.
    fn detect_syntactic_outliers(&self, table: &Table, col_idx: usize, out: &mut Vec<CellRef>) {
        let col = table.column(col_idx).expect("in range");
        let mut pattern_counts: HashMap<String, usize> = HashMap::new();
        let mut total = 0usize;
        let mut row_patterns: Vec<Option<String>> = Vec::with_capacity(table.n_rows());
        for row in 0..table.n_rows() {
            match col.get(row) {
                Value::Str(s) => {
                    let p = syntactic_pattern(&s);
                    *pattern_counts.entry(p.clone()).or_insert(0) += 1;
                    total += 1;
                    row_patterns.push(Some(p));
                }
                _ => row_patterns.push(None),
            }
        }
        if total < 10 || pattern_counts.len() < 2 {
            return;
        }
        // Dominant patterns: greedily take the most common until coverage.
        let mut ranked: Vec<(&String, &usize)> = pattern_counts.iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let mut covered = 0usize;
        let mut dominant: Vec<&String> = Vec::new();
        for (p, c) in &ranked {
            if (covered as f64) / (total as f64) >= self.config.pattern_coverage {
                break;
            }
            dominant.push(p);
            covered += **c;
        }
        // If everything is dominant there is nothing to flag.
        if dominant.len() == pattern_counts.len() {
            return;
        }
        for (row, p) in row_patterns.iter().enumerate() {
            if let Some(p) = p {
                if !dominant.contains(&p) {
                    out.push(CellRef::new(row, col_idx));
                }
            }
        }
    }
}

/// Character-class pattern: letters → `a`, digits → `9`, whitespace → `_`,
/// everything else kept verbatim; runs compressed (`"Brewery 07"` →
/// `"a_9"`).
pub fn syntactic_pattern(s: &str) -> String {
    let mut out = String::new();
    let mut last: Option<char> = None;
    for ch in s.chars() {
        let class = if ch.is_alphabetic() {
            'a'
        } else if ch.is_ascii_digit() {
            '9'
        } else if ch.is_whitespace() {
            '_'
        } else {
            ch
        };
        if last != Some(class) {
            out.push(class);
            last = Some(class);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    #[test]
    fn pattern_compression() {
        assert_eq!(syntactic_pattern("Brewery 07"), "a_9");
        assert_eq!(syntactic_pattern("abc-123"), "a-9");
        assert_eq!(syntactic_pattern(""), "");
        assert_eq!(syntactic_pattern("Ä ß"), "a_a");
    }

    #[test]
    fn flags_minus_one_in_positive_column() {
        let mut vals: Vec<Option<f64>> = (1..40).map(|i| Some(i as f64)).collect();
        vals[7] = Some(-1.0);
        vals[21] = Some(-1.0);
        let t = Table::new("t", vec![Column::from_f64("age", vals)]).unwrap();
        let d = FahesDetector::default().detect(&t, &DetectionContext::default());
        assert_eq!(d.cells, vec![CellRef::new(7, 0), CellRef::new(21, 0)]);
    }

    #[test]
    fn flags_high_sentinel() {
        let mut vals: Vec<Option<i64>> = (0..30).map(|i| Some(100 + i)).collect();
        vals[4] = Some(99999);
        let t = Table::new("t", vec![Column::from_i64("zip", vals)]).unwrap();
        let d = FahesDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.cells.contains(&CellRef::new(4, 0)));
    }

    #[test]
    fn legit_zero_in_column_spanning_zero_not_flagged() {
        // Zeros inside a distribution that naturally includes them.
        let vals: Vec<Option<f64>> = (-10..20).map(|i| Some(i as f64)).collect();
        let t = Table::new("t", vec![Column::from_f64("delta", vals)]).unwrap();
        let d = FahesDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.is_empty(), "{:?}", d.cells);
    }

    #[test]
    fn frequency_spike_at_boundary_flagged_even_if_unknown_sentinel() {
        // 777 is not in the sentinel list, but it is hyper-frequent and max.
        // (Start at 1: a literal 0 would legitimately trip the known-
        // sentinel channel and is not what this test is about.)
        let mut vals: Vec<Option<i64>> = (1..41).map(Some).collect();
        for slot in [3, 9, 15, 22, 28, 33, 37] {
            vals[slot] = Some(777);
        }
        let t = Table::new("t", vec![Column::from_i64("x", vals)]).unwrap();
        let d = FahesDetector::default().detect(&t, &DetectionContext::default());
        assert_eq!(d.len(), 7);
    }

    #[test]
    fn flags_string_placeholders() {
        let vals: Vec<Option<&str>> = vec![
            Some("london"),
            Some("paris"),
            Some("unknown"),
            Some("berlin"),
            Some("?"),
        ];
        let t = Table::new("t", vec![Column::from_str_vals("city", vals)]).unwrap();
        let d = FahesDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.cells.contains(&CellRef::new(2, 0)));
        assert!(d.cells.contains(&CellRef::new(4, 0)));
        assert!(!d.cells.contains(&CellRef::new(0, 0)));
    }

    #[test]
    fn flags_syntactic_outliers() {
        // Codes follow "a9" pattern; one is pure digits.
        let mut vals: Vec<Option<String>> = (0..20).map(|i| Some(format!("AB{i:03}"))).collect();
        vals[11] = Some("12345".to_string());
        let t = Table::new("t", vec![Column::from_str_vals("code", vals)]).unwrap();
        let d = FahesDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.cells.contains(&CellRef::new(11, 0)), "{:?}", d.cells);
    }

    #[test]
    fn diverse_free_text_not_flagged() {
        // Short column: pattern channel requires ≥ 10 values.
        let vals: Vec<Option<&str>> = vec![Some("one"), Some("two-2"), Some("3rd")];
        let t = Table::new("t", vec![Column::from_str_vals("s", vals)]).unwrap();
        let d = FahesDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.is_empty());
    }
}

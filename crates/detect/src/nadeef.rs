//! NADEEF-style rule-based error detection (Dallachiesa et al., 2013).
//!
//! DataLens uses NADEEF as "rule-based error detection": violations of the
//! validated FD rules, plus user-supplied denial constraints (single-row
//! predicates such as `age < 0`). For each FD `X → A`, rows that agree on
//! X but disagree on A form a violation group; the minority A-values in
//! the group are flagged (majority voting — the standard NADEEF repair
//! context heuristic).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use datalens_table::{CellRef, Table, Value};

use crate::detector::{Detection, DetectionContext, Detector};

/// Comparison operator of a denial-constraint predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredicateOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A single-row denial constraint: rows where `column op value` holds are
/// in violation, and the offending cell is flagged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenialConstraint {
    pub column: String,
    pub op: PredicateOp,
    pub value: Value,
}

impl DenialConstraint {
    /// Does this constraint fire for `v` (i.e. is `v` erroneous)?
    pub fn violates(&self, v: &Value) -> bool {
        if v.is_null() {
            return false; // nulls are the MV detector's business
        }
        match self.op {
            PredicateOp::Eq => v == &self.value,
            PredicateOp::Ne => v != &self.value,
            PredicateOp::Lt | PredicateOp::Le | PredicateOp::Gt | PredicateOp::Ge => {
                let (Some(a), Some(b)) = (v.as_f64(), self.value.as_f64()) else {
                    return false;
                };
                match self.op {
                    PredicateOp::Lt => a < b,
                    PredicateOp::Le => a <= b,
                    PredicateOp::Gt => a > b,
                    PredicateOp::Ge => a >= b,
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// The NADEEF detector: FD violations (from the context's rule set) plus
/// configured denial constraints.
#[derive(Debug, Clone, Default)]
pub struct NadeefDetector {
    pub denial_constraints: Vec<DenialConstraint>,
}

impl Detector for NadeefDetector {
    fn name(&self) -> &'static str {
        "nadeef"
    }

    fn detect(&self, table: &Table, ctx: &DetectionContext) -> Detection {
        let mut cells = Vec::new();

        // --- FD violations ---
        for rule in ctx.rules.active() {
            let Some(rhs_idx) = table.column_index(&rule.fd.rhs) else {
                continue;
            };
            let lhs_idx: Option<Vec<usize>> =
                rule.fd.lhs.iter().map(|n| table.column_index(n)).collect();
            let Some(lhs_idx) = lhs_idx else { continue };

            // Group rows by lhs key.
            let mut groups: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
            for r in 0..table.n_rows() {
                let key: Vec<String> = lhs_idx.iter().map(|&c| render_key(table, r, c)).collect();
                groups.entry(key).or_default().push(r);
            }
            for rows in groups.values() {
                if rows.len() < 2 {
                    continue;
                }
                // Majority rhs value wins; the rest are flagged.
                let mut counts: HashMap<String, usize> = HashMap::new();
                for &r in rows {
                    *counts.entry(render_key(table, r, rhs_idx)).or_insert(0) += 1;
                }
                if counts.len() < 2 {
                    continue;
                }
                let majority = counts
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .map(|(k, _)| k.clone())
                    .expect("nonempty");
                for &r in rows {
                    if render_key(table, r, rhs_idx) != majority {
                        cells.push(CellRef::new(r, rhs_idx));
                    }
                }
            }
        }

        // --- denial constraints ---
        for dc in &self.denial_constraints {
            let Some(col_idx) = table.column_index(&dc.column) else {
                continue;
            };
            let col = table.column(col_idx).expect("in range");
            for r in 0..table.n_rows() {
                if dc.violates(&col.get(r)) {
                    cells.push(CellRef::new(r, col_idx));
                }
            }
        }

        Detection::new(self.name(), cells)
    }
}

fn render_key(table: &Table, row: usize, col: usize) -> String {
    let c = table.column(col).expect("in range");
    if c.is_null(row) {
        "\u{0}null".to_string()
    } else {
        c.get(row).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_fd::{Fd, FdRule, RuleSet};
    use datalens_table::Column;

    fn rules(lhs: &str, rhs: &str) -> RuleSet {
        let mut rs = RuleSet::new();
        rs.add(FdRule::user_defined(
            Fd::new(vec![lhs.to_string()], rhs.to_string()).unwrap(),
        ));
        rs
    }

    fn fd_table() -> Table {
        // zip 1 maps to ulm twice and augsburg once → augsburg flagged.
        Table::new(
            "t",
            vec![
                Column::from_i64("zip", [Some(1), Some(1), Some(1), Some(2)]),
                Column::from_str_vals(
                    "city",
                    [Some("ulm"), Some("augsburg"), Some("ulm"), Some("bonn")],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn flags_minority_fd_violations() {
        let ctx = DetectionContext::with_rules(rules("zip", "city"));
        let d = NadeefDetector::default().detect(&fd_table(), &ctx);
        assert_eq!(d.cells, vec![CellRef::new(1, 1)]);
    }

    #[test]
    fn no_rules_no_fd_detections() {
        let d = NadeefDetector::default().detect(&fd_table(), &DetectionContext::default());
        assert!(d.is_empty());
    }

    #[test]
    fn rejected_rules_are_ignored() {
        let mut rs = rules("zip", "city");
        let fd = Fd::new(vec!["zip".to_string()], "city".to_string()).unwrap();
        rs.reject(&fd);
        let ctx = DetectionContext::with_rules(rs);
        let d = NadeefDetector::default().detect(&fd_table(), &ctx);
        assert!(d.is_empty());
    }

    #[test]
    fn rules_for_missing_columns_are_skipped() {
        let ctx = DetectionContext::with_rules(rules("nope", "city"));
        let d = NadeefDetector::default().detect(&fd_table(), &ctx);
        assert!(d.is_empty());
    }

    #[test]
    fn denial_constraint_flags_offending_cells() {
        let t = Table::new(
            "t",
            vec![Column::from_i64(
                "age",
                [Some(30), Some(-1), Some(45), None],
            )],
        )
        .unwrap();
        let det = NadeefDetector {
            denial_constraints: vec![DenialConstraint {
                column: "age".into(),
                op: PredicateOp::Lt,
                value: Value::Int(0),
            }],
        };
        let d = det.detect(&t, &DetectionContext::default());
        // Null at row 3 is not a DC violation.
        assert_eq!(d.cells, vec![CellRef::new(1, 0)]);
    }

    #[test]
    fn equality_constraint_on_strings() {
        let t = Table::new(
            "t",
            vec![Column::from_str_vals("s", [Some("bad"), Some("ok")])],
        )
        .unwrap();
        let det = NadeefDetector {
            denial_constraints: vec![DenialConstraint {
                column: "s".into(),
                op: PredicateOp::Eq,
                value: Value::Str("bad".into()),
            }],
        };
        let d = det.detect(&t, &DetectionContext::default());
        assert_eq!(d.cells, vec![CellRef::new(0, 0)]);
    }

    #[test]
    fn two_way_tie_flags_deterministically() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("zip", [Some(1), Some(1)]),
                Column::from_str_vals("city", [Some("a"), Some("b")]),
            ],
        )
        .unwrap();
        let ctx = DetectionContext::with_rules(rules("zip", "city"));
        let d1 = NadeefDetector::default().detect(&t, &ctx);
        let d2 = NadeefDetector::default().detect(&t, &ctx);
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 1);
    }
}

//! KATARA-style knowledge-based error detection (Chu et al., 2015).
//!
//! KATARA aligns table columns with types in a knowledge base and flags
//! values that do not belong to the aligned type's domain. The knowledge
//! base here is a set of [`Domain`]s — closed value dictionaries and
//! pattern validators. A column is aligned with the domain that covers the
//! largest fraction of its values above a confidence threshold; once
//! aligned, every non-member value is flagged.

use std::collections::HashSet;

use datalens_table::{CellRef, DataType, Table};

use crate::detector::{Detection, DetectionContext, Detector};

/// How a domain decides membership.
#[derive(Debug, Clone)]
pub enum DomainValidator {
    /// Closed dictionary (match is case-insensitive).
    Dictionary(HashSet<String>),
    /// All-digit string of a length within the range.
    Digits { min_len: usize, max_len: usize },
    /// Syntactic shape `word(.word)*@word.word` — a pragmatic email check.
    Email,
}

/// One knowledge-base entry.
#[derive(Debug, Clone)]
pub struct Domain {
    pub name: &'static str,
    pub validator: DomainValidator,
}

impl Domain {
    /// Is `value` a member of this domain?
    pub fn contains(&self, value: &str) -> bool {
        let v = value.trim();
        match &self.validator {
            DomainValidator::Dictionary(d) => d.contains(&v.to_ascii_lowercase()),
            DomainValidator::Digits { min_len, max_len } => {
                !v.is_empty()
                    && v.chars().all(|c| c.is_ascii_digit())
                    && (*min_len..=*max_len).contains(&v.len())
            }
            DomainValidator::Email => {
                let Some((local, host)) = v.split_once('@') else {
                    return false;
                };
                !local.is_empty()
                    && host.contains('.')
                    && !host.starts_with('.')
                    && !host.ends_with('.')
                    && v.chars().all(|c| !c.is_whitespace())
            }
        }
    }
}

fn dict(values: &[&str]) -> DomainValidator {
    DomainValidator::Dictionary(values.iter().map(|s| s.to_ascii_lowercase()).collect())
}

/// The default knowledge base: US state codes, month names, weekday
/// names, ISO country codes (subset), booleans, US zip shape, emails.
pub fn default_knowledge_base() -> Vec<Domain> {
    vec![
        Domain {
            name: "us_state_code",
            validator: dict(&[
                "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN",
                "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV",
                "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN",
                "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY", "DC",
            ]),
        },
        Domain {
            name: "month",
            validator: dict(&[
                "january",
                "february",
                "march",
                "april",
                "may",
                "june",
                "july",
                "august",
                "september",
                "october",
                "november",
                "december",
            ]),
        },
        Domain {
            name: "weekday",
            validator: dict(&[
                "monday",
                "tuesday",
                "wednesday",
                "thursday",
                "friday",
                "saturday",
                "sunday",
            ]),
        },
        Domain {
            name: "boolean_word",
            validator: dict(&["true", "false", "yes", "no"]),
        },
        Domain {
            name: "us_zip",
            validator: DomainValidator::Digits {
                min_len: 5,
                max_len: 5,
            },
        },
        Domain {
            name: "email",
            validator: DomainValidator::Email,
        },
    ]
}

/// The KATARA detector.
#[derive(Debug, Clone)]
pub struct KataraDetector {
    pub knowledge_base: Vec<Domain>,
    /// Minimum fraction of a column's non-null values a domain must cover
    /// to align with that column.
    pub alignment_threshold: f64,
}

impl Default for KataraDetector {
    fn default() -> Self {
        KataraDetector {
            knowledge_base: default_knowledge_base(),
            alignment_threshold: 0.8,
        }
    }
}

impl KataraDetector {
    /// The domain a string column aligns with, if any.
    pub fn align_column(&self, values: &[String]) -> Option<&Domain> {
        if values.len() < 5 {
            return None;
        }
        let mut best: Option<(&Domain, f64)> = None;
        for domain in &self.knowledge_base {
            let hits = values.iter().filter(|v| domain.contains(v)).count();
            let cover = hits as f64 / values.len() as f64;
            if cover >= self.alignment_threshold && best.as_ref().is_none_or(|(_, c)| cover > *c) {
                best = Some((domain, cover));
            }
        }
        best.map(|(d, _)| d)
    }
}

impl Detector for KataraDetector {
    fn name(&self) -> &'static str {
        "katara"
    }

    fn detect(&self, table: &Table, _ctx: &DetectionContext) -> Detection {
        let mut cells = Vec::new();
        for (col_idx, col) in table.columns().iter().enumerate() {
            if col.dtype() != DataType::Str {
                continue;
            }
            let mut values = Vec::new();
            let mut rows = Vec::new();
            for r in 0..table.n_rows() {
                if let Some(s) = col.get(r).as_str() {
                    values.push(s.to_string());
                    rows.push(r);
                }
            }
            let Some(domain) = self.align_column(&values) else {
                continue;
            };
            for (v, &r) in values.iter().zip(&rows) {
                if !domain.contains(v) {
                    cells.push(CellRef::new(r, col_idx));
                }
            }
        }
        Detection::new(self.name(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    #[test]
    fn domain_membership() {
        let kb = default_knowledge_base();
        let states = kb.iter().find(|d| d.name == "us_state_code").unwrap();
        assert!(states.contains("CA"));
        assert!(states.contains("ca"));
        assert!(!states.contains("ZZ"));
        let zip = kb.iter().find(|d| d.name == "us_zip").unwrap();
        assert!(zip.contains("89073"));
        assert!(!zip.contains("8907"));
        assert!(!zip.contains("8907a"));
        let email = kb.iter().find(|d| d.name == "email").unwrap();
        assert!(email.contains("a@b.com"));
        assert!(!email.contains("a.b.com"));
        assert!(!email.contains("a@bcom"));
        assert!(!email.contains("a @b.com"));
    }

    #[test]
    fn aligned_column_flags_non_members() {
        let mut vals: Vec<Option<&str>> = vec![
            Some("CA"),
            Some("OR"),
            Some("TX"),
            Some("WA"),
            Some("NY"),
            Some("CO"),
        ];
        vals.push(Some("Bavaria")); // not a US state
        let t = Table::new("t", vec![Column::from_str_vals("state", vals)]).unwrap();
        let d = KataraDetector::default().detect(&t, &DetectionContext::default());
        assert_eq!(d.cells, vec![CellRef::new(6, 0)]);
    }

    #[test]
    fn unaligned_column_yields_nothing() {
        let vals: Vec<Option<String>> = (0..10).map(|i| Some(format!("thing-{i}"))).collect();
        let t = Table::new("t", vec![Column::from_str_vals("misc", vals)]).unwrap();
        let d = KataraDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.is_empty());
    }

    #[test]
    fn short_columns_never_align() {
        let t = Table::new(
            "t",
            vec![Column::from_str_vals("s", [Some("CA"), Some("OR")])],
        )
        .unwrap();
        let d = KataraDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.is_empty());
    }

    #[test]
    fn alignment_picks_best_covering_domain() {
        let det = KataraDetector::default();
        let vals: Vec<String> = ["monday", "tuesday", "friday", "sunday", "monday"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(det.align_column(&vals).unwrap().name, "weekday");
    }

    #[test]
    fn numeric_columns_are_ignored() {
        let t = Table::new(
            "t",
            vec![Column::from_i64("n", (0..10).map(Some).collect::<Vec<_>>())],
        )
        .unwrap();
        let d = KataraDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.is_empty());
    }
}

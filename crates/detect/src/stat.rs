//! Statistical outlier detectors: SD (z-score), IQR, and Isolation Forest
//! — the three statistical methods the paper lists for outlier detection.

use datalens_ml::isolation_forest::{IsolationForest, IsolationForestConfig};
use datalens_table::{CellRef, Table};

use crate::detector::{Detection, DetectionContext, Detector};

/// Standard-deviation detector: flags numeric cells with |value − mean| >
/// k·σ, per column.
#[derive(Debug, Clone)]
pub struct SdDetector {
    /// Sigma multiplier (default 3.0).
    pub k: f64,
}

impl Default for SdDetector {
    fn default() -> Self {
        SdDetector { k: 3.0 }
    }
}

impl Detector for SdDetector {
    fn name(&self) -> &'static str {
        "sd"
    }

    fn detect(&self, table: &Table, _ctx: &DetectionContext) -> Detection {
        let mut cells = Vec::new();
        for (col_idx, col) in table.columns().iter().enumerate() {
            let entries = col.numeric_entries();
            if entries.len() < 3 {
                continue;
            }
            let n = entries.len() as f64;
            let mean = entries.iter().map(|(_, v)| v).sum::<f64>() / n;
            let std = (entries
                .iter()
                .map(|(_, v)| (v - mean) * (v - mean))
                .sum::<f64>()
                / n)
                .sqrt();
            if std == 0.0 {
                continue;
            }
            for (row, v) in entries {
                if (v - mean).abs() > self.k * std {
                    cells.push(CellRef::new(row, col_idx));
                }
            }
        }
        Detection::new(self.name(), cells)
    }
}

/// Interquartile-range detector: flags numeric cells outside
/// [Q1 − f·IQR, Q3 + f·IQR], per column.
#[derive(Debug, Clone)]
pub struct IqrDetector {
    /// IQR multiplier (default 1.5, Tukey's fences).
    pub factor: f64,
}

impl Default for IqrDetector {
    fn default() -> Self {
        IqrDetector { factor: 1.5 }
    }
}

impl Detector for IqrDetector {
    fn name(&self) -> &'static str {
        "iqr"
    }

    fn detect(&self, table: &Table, _ctx: &DetectionContext) -> Detection {
        let mut cells = Vec::new();
        for (col_idx, col) in table.columns().iter().enumerate() {
            let entries = col.numeric_entries();
            if entries.len() < 4 {
                continue;
            }
            let mut sorted: Vec<f64> = entries.iter().map(|(_, v)| *v).collect();
            sorted.sort_by(f64::total_cmp);
            let q1 = datalens_profile::stats::quantile_sorted(&sorted, 0.25);
            let q3 = datalens_profile::stats::quantile_sorted(&sorted, 0.75);
            let iqr = q3 - q1;
            if iqr == 0.0 {
                continue;
            }
            let lo = q1 - self.factor * iqr;
            let hi = q3 + self.factor * iqr;
            for (row, v) in entries {
                if v < lo || v > hi {
                    cells.push(CellRef::new(row, col_idx));
                }
            }
        }
        Detection::new(self.name(), cells)
    }
}

/// Isolation-forest detector: scores whole rows over the numeric columns,
/// flags rows above the score threshold, and attributes the anomaly to the
/// numeric cells that are individually extreme (|z| > 1) — falling back to
/// the single most extreme cell so every flagged row yields evidence.
#[derive(Debug, Clone)]
pub struct IsolationForestDetector {
    pub score_threshold: f64,
    pub config: IsolationForestConfig,
}

impl Default for IsolationForestDetector {
    fn default() -> Self {
        IsolationForestDetector {
            score_threshold: 0.62,
            config: IsolationForestConfig::default(),
        }
    }
}

impl Detector for IsolationForestDetector {
    fn name(&self) -> &'static str {
        "isolation_forest"
    }

    fn detect(&self, table: &Table, ctx: &DetectionContext) -> Detection {
        let numeric_cols: Vec<usize> = table.schema().numeric_indices();
        if numeric_cols.is_empty() || table.n_rows() < 8 {
            return Detection::new(self.name(), Vec::new());
        }
        // Column means/stds for null-filling and attribution.
        let mut stats = Vec::new();
        for &c in &numeric_cols {
            let vals = table.column(c).expect("in range").numeric_values();
            let (mean, std) = if vals.is_empty() {
                (0.0, 0.0)
            } else {
                let m = vals.iter().sum::<f64>() / vals.len() as f64;
                let s = (vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64)
                    .sqrt();
                (m, s)
            };
            stats.push((mean, std));
        }
        let rows: Vec<Vec<f64>> = (0..table.n_rows())
            .map(|r| {
                numeric_cols
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        table
                            .column(c)
                            .expect("in range")
                            .get(r)
                            .as_f64()
                            .unwrap_or(stats[i].0)
                    })
                    .collect()
            })
            .collect();
        let mut config = self.config.clone();
        config.seed = ctx.seed;
        let forest = IsolationForest::fit(&rows, &config);
        let scores = forest.score_all(&rows);

        let mut cells = Vec::new();
        for (r, &score) in scores.iter().enumerate() {
            if score < self.score_threshold {
                continue;
            }
            // Attribute to extreme cells within the row.
            let mut flagged_any = false;
            let mut best: Option<(usize, f64)> = None;
            for (i, &c) in numeric_cols.iter().enumerate() {
                let (mean, std) = stats[i];
                if std == 0.0 {
                    continue;
                }
                let z = ((rows[r][i] - mean) / std).abs();
                if best.as_ref().is_none_or(|(_, bz)| z > *bz) {
                    best = Some((c, z));
                }
                if z > 1.0 {
                    cells.push(CellRef::new(r, c));
                    flagged_any = true;
                }
            }
            if !flagged_any {
                if let Some((c, _)) = best {
                    cells.push(CellRef::new(r, c));
                }
            }
        }
        Detection::new(self.name(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn table_with_outlier() -> Table {
        let mut vals: Vec<Option<f64>> = (0..50).map(|i| Some(10.0 + (i % 5) as f64)).collect();
        vals[13] = Some(500.0);
        Table::new(
            "t",
            vec![
                Column::from_f64("x", vals),
                Column::from_str_vals("s", (0..50).map(|_| Some("a")).collect::<Vec<_>>()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sd_flags_the_planted_outlier() {
        let t = table_with_outlier();
        let d = SdDetector::default().detect(&t, &DetectionContext::default());
        assert_eq!(d.cells, vec![CellRef::new(13, 0)]);
    }

    #[test]
    fn sd_ignores_clean_and_constant_columns() {
        let t = Table::new("t", vec![Column::from_f64("c", vec![Some(5.0); 20])]).unwrap();
        let d = SdDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.is_empty());
    }

    #[test]
    fn iqr_flags_the_planted_outlier() {
        let t = table_with_outlier();
        let d = IqrDetector::default().detect(&t, &DetectionContext::default());
        assert!(d.cells.contains(&CellRef::new(13, 0)));
        // IQR must not flag the bulk.
        assert!(d.len() < 5);
    }

    #[test]
    fn iqr_tighter_factor_flags_more() {
        let t = table_with_outlier();
        let strict = IqrDetector { factor: 0.5 }.detect(&t, &DetectionContext::default());
        let loose = IqrDetector { factor: 3.0 }.detect(&t, &DetectionContext::default());
        assert!(strict.len() >= loose.len());
    }

    #[test]
    fn isolation_forest_flags_outlier_row() {
        let t = table_with_outlier();
        let d = IsolationForestDetector::default().detect(&t, &DetectionContext::default());
        assert!(
            d.cells.contains(&CellRef::new(13, 0)),
            "cells: {:?}",
            d.cells
        );
    }

    #[test]
    fn detectors_skip_tiny_tables() {
        let t = Table::new("t", vec![Column::from_f64("x", [Some(1.0), Some(2.0)])]).unwrap();
        let ctx = DetectionContext::default();
        assert!(SdDetector::default().detect(&t, &ctx).is_empty());
        assert!(IqrDetector::default().detect(&t, &ctx).is_empty());
        assert!(IsolationForestDetector::default()
            .detect(&t, &ctx)
            .is_empty());
    }

    #[test]
    fn nulls_are_not_outliers_for_stat_detectors() {
        let mut vals: Vec<Option<f64>> = (0..30).map(|i| Some(i as f64)).collect();
        vals[5] = None;
        let t = Table::new("t", vec![Column::from_f64("x", vals)]).unwrap();
        let d = SdDetector::default().detect(&t, &DetectionContext::default());
        assert!(!d.cells.contains(&CellRef::new(5, 0)));
    }
}

//! Deterministic hashing primitives shared by every sketch.
//!
//! All randomness in this crate is *derived*: a sketch is seeded once
//! (typically from the column name via [`column_seed`]) and every hash or
//! coin flip is a pure function of that seed plus the input. No ambient
//! RNG is ever consulted, so a sketch built twice over the same values is
//! byte-identical — the property the profile cache and the determinism
//! tests rely on.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Salt folded into [`column_seed`] so column-name hashes used here are
/// uncorrelated with the profile cache's content fingerprints (which are
/// also FNV-1a based).
const COLUMN_SEED_SALT: u64 = 0x5b8d_2f10_9c4e_7a33;

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over `bytes` starting from `basis`.
#[inline]
pub fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Seeded 64-bit hash of a byte string: FNV-1a keyed by the seed, then a
/// SplitMix64 finalizer so low-entropy inputs still spread over all bits
/// (HLL reads the top bits, the reservoir compares full words).
#[inline]
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    splitmix64(fnv1a(FNV_OFFSET ^ seed, bytes))
}

/// The fixed per-column sketch seed: a pure function of the column name.
/// Two runs (cold or warm cache, any thread count) derive the same seed,
/// so sketches serialize bit-identically; two columns with identical
/// contents but different names hash differently, which is why cached
/// sketch partials are keyed by `(content fingerprint, params+seed
/// fingerprint)` rather than by content alone.
#[inline]
pub fn column_seed(name: &str) -> u64 {
    splitmix64(fnv1a(FNV_OFFSET, name.as_bytes()) ^ COLUMN_SEED_SALT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_seed_is_stable_and_name_sensitive() {
        assert_eq!(column_seed("price"), column_seed("price"));
        assert_ne!(column_seed("price"), column_seed("prices"));
        assert_ne!(column_seed(""), column_seed(" "));
    }

    #[test]
    fn hash_bytes_depends_on_seed_and_input() {
        assert_eq!(hash_bytes(7, b"abc"), hash_bytes(7, b"abc"));
        assert_ne!(hash_bytes(7, b"abc"), hash_bytes(8, b"abc"));
        assert_ne!(hash_bytes(7, b"abc"), hash_bytes(7, b"abd"));
    }

    #[test]
    fn splitmix64_spreads_sequential_inputs() {
        // Consecutive integers should not share high bits after mixing.
        let a = splitmix64(1) >> 56;
        let b = splitmix64(2) >> 56;
        let c = splitmix64(3) >> 56;
        assert!(!(a == b && b == c));
    }
}

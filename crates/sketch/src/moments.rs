//! Mergeable central moments (up to 4th order) plus exact extrema and
//! sign counts — the constant-size companion to the quantile sketch, so
//! approximate profiles report *exact* mean/variance/skew/kurtosis while
//! staying one bounded pass.
//!
//! Uses the one-pass update and pairwise merge of Chan, Golub & LeVeque
//! (extended to third and fourth moments by Terriberry / Pébay). These
//! are exact up to floating-point rounding — there is no sketching error
//! here, only the usual numerical error of streaming accumulation.

use serde::{Deserialize, Serialize};

/// Streaming central moments over finite `f64` values; non-finite inputs
/// are counted separately and excluded from the moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    count: u64,
    non_finite: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
    zeros: u64,
    negatives: u64,
    sum: f64,
}

impl Default for Moments {
    fn default() -> Moments {
        Moments::new()
    }
}

impl Moments {
    pub fn new() -> Moments {
        Moments {
            count: 0,
            non_finite: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            zeros: 0,
            negatives: 0,
            sum: 0.0,
        }
    }

    /// Observe one value.
    #[inline]
    pub fn insert(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        if v == 0.0 {
            self.zeros += 1;
        }
        if v < 0.0 {
            self.negatives += 1;
        }
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.sum += v;
        let n0 = self.count as f64;
        self.count += 1;
        let n = self.count as f64;
        let delta = v - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Pairwise (Chan-style) merge; exact up to floating-point rounding.
    pub fn merge(&mut self, other: &Moments) {
        self.non_finite += other.non_finite;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let nf = self.non_finite;
            *self = other.clone();
            self.non_finite = nf;
            return;
        }
        let na = self.count as f64;
        let nb = other.count as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta3 * delta;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        self.count += other.count;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.zeros += other.zeros;
        self.negatives += other.negatives;
        self.sum += other.sum;
    }

    pub fn count(&self) -> u64 {
        self.count
    }
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }
    pub fn mean(&self) -> f64 {
        self.mean
    }
    /// Population variance `m2 / count` (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Population skewness `sqrt(n)·m3 / m2^(3/2)` (0 when degenerate).
    pub fn skewness(&self) -> f64 {
        let n = self.count as f64;
        if self.count == 0 || self.m2 <= 0.0 {
            0.0
        } else {
            n.sqrt() * self.m3 / self.m2.powf(1.5)
        }
    }
    /// Population excess kurtosis `n·m4 / m2² − 3` (0 when degenerate).
    pub fn kurtosis(&self) -> f64 {
        let n = self.count as f64;
        if self.count == 0 || self.m2 <= 0.0 {
            0.0
        } else {
            n * self.m4 / (self.m2 * self.m2) - 3.0
        }
    }
    pub fn min(&self) -> f64 {
        self.min
    }
    pub fn max(&self) -> f64 {
        self.max
    }
    pub fn zeros(&self) -> u64 {
        self.zeros
    }
    pub fn negatives(&self) -> u64 {
        self.negatives
    }
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn matches_direct_computation() {
        let vals: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.5 - 10.0).collect();
        let mut m = Moments::new();
        for &v in &vals {
            m.insert(v);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!(close(m.mean(), mean));
        assert!(close(m.variance(), var));
        assert_eq!(m.count(), 100);
        assert_eq!(m.min(), -10.0);
        assert_eq!(m.max(), 39.5);
    }

    #[test]
    fn merge_equals_flat() {
        let vals: Vec<f64> = (0..1000)
            .map(|i| f64::from((i * 37) % 101) - 50.0)
            .collect();
        let mut flat = Moments::new();
        for &v in &vals {
            flat.insert(v);
        }
        let mut merged = Moments::new();
        for chunk in vals.chunks(64) {
            let mut part = Moments::new();
            for &v in chunk {
                part.insert(v);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), flat.count());
        assert!(close(merged.mean(), flat.mean()));
        assert!(close(merged.variance(), flat.variance()));
        assert!(close(merged.skewness(), flat.skewness()));
        assert!(close(merged.kurtosis(), flat.kurtosis()));
        assert_eq!(merged.zeros(), flat.zeros());
        assert_eq!(merged.negatives(), flat.negatives());
    }

    #[test]
    fn non_finite_counted_separately() {
        let mut m = Moments::new();
        m.insert(f64::NAN);
        m.insert(f64::INFINITY);
        m.insert(2.0);
        assert_eq!(m.non_finite(), 2);
        assert_eq!(m.count(), 1);
        assert!(close(m.mean(), 2.0));
    }
}

//! `datalens-sketch`: bounded-size, mergeable, deterministic sketches for
//! approximate profiling.
//!
//! Exact profile statistics (distinct counts, quantiles, frequent values)
//! are O(rows) in time *and* memory — the wrong contract for chunked,
//! larger-than-RAM tables. This crate provides the bounded-memory
//! alternative: per-chunk summaries a few KiB in size that merge in chunk
//! order into a whole-column summary, so profile-at-ingest becomes a
//! single bounded pass and editing one chunk re-sketches only that chunk.
//!
//! # The sketches
//!
//! | type | statistic | size | error bound |
//! |------|-----------|------|-------------|
//! | [`HyperLogLog`] | distinct count | `2^p` bytes | RSE `1.04/√2^p` (≈1.6 % at p=12); ~95 % of estimates within 2·RSE |
//! | [`KllSketch`] | quantiles / ranks | O(k·log(n/k)) | rank ε ≈ `2/k` (1 % at k=200) |
//! | [`SpaceSaving`] | top-k frequent values | `capacity` counters | `count − overcount ≤ true ≤ count`, overcount ≤ `n/capacity` |
//! | [`ReservoirSample`] | value sample | `k` entries | uniform pseudo-sample (bottom-k by hash) |
//! | [`Moments`] | mean/var/skew/kurtosis | O(1) | exact up to FP rounding |
//!
//! # Determinism
//!
//! Every sketch is a pure function of `(seed, input stream)` — there is
//! no ambient RNG anywhere. Seeds derive from the column name via
//! [`hash::column_seed`], KLL compaction coins from
//! `splitmix64(seed ^ compaction_counter)`, and reservoir tags from
//! seeded hashing. Merging per-chunk sketches in chunk order therefore
//! yields byte-identical results at any thread count, cold or warm cache.
//!
//! # Merge semantics
//!
//! All five summaries expose `merge(&Self)`:
//! - HLL: register-wise max — *lossless* (equals the union's sketch).
//! - KLL: level-wise concatenation + deterministic compaction.
//! - Space-saving: mergeable-summaries union with floor-inflated
//!   overcounts, truncated back to capacity.
//! - Reservoir: union + keep the k smallest tags — commutative.
//! - Moments: Chan/Terriberry pairwise combination — exact.

pub mod column;
pub mod hash;
pub mod hll;
pub mod kll;
pub mod moments;
pub mod reservoir;
pub mod topk;

pub use column::{ColumnSketch, SketchParams};
pub use hash::column_seed;
pub use hll::HyperLogLog;
pub use kll::KllSketch;
pub use moments::Moments;
pub use reservoir::ReservoirSample;
pub use topk::{SpaceSaving, TopEntry};

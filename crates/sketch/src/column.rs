//! Per-column composite sketch: the bundle the profiler folds per chunk
//! and merges in chunk order.

use serde::{Deserialize, Serialize};

use crate::hash::{fnv1a, hash_bytes, FNV_OFFSET};
use crate::hll::HyperLogLog;
use crate::kll::KllSketch;
use crate::moments::Moments;
use crate::reservoir::ReservoirSample;
use crate::topk::SpaceSaving;

/// Tunable sketch sizes. The defaults bound each column sketch to a few
/// KiB while keeping the documented error bounds:
///
/// | sketch       | parameter          | default | error bound                  |
/// |--------------|--------------------|---------|------------------------------|
/// | HyperLogLog  | `hll_precision`    | 12      | RSE 1.04/√2¹² ≈ 1.6 %        |
/// | KLL          | `kll_k`            | 200     | rank ε ≈ 2/k = 1 %           |
/// | space-saving | `top_capacity`     | 64      | overcount ≤ n/64             |
/// | bottom-k     | `reservoir_k`      | 32      | — (uniform pseudo-sample)    |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchParams {
    #[serde(default)]
    pub hll_precision: u8,
    #[serde(default)]
    pub kll_k: u16,
    #[serde(default)]
    pub top_capacity: u32,
    #[serde(default)]
    pub reservoir_k: u32,
}

impl Default for SketchParams {
    fn default() -> SketchParams {
        SketchParams {
            hll_precision: 12,
            kll_k: 200,
            top_capacity: 64,
            reservoir_k: 32,
        }
    }
}

impl SketchParams {
    /// Fingerprint of the parameters together with a sketch seed. The
    /// profile cache keys sketch partials by `(chunk content fingerprint,
    /// this fingerprint)` so changing any sketch parameter — or the
    /// column the seed derives from — can never serve a stale partial.
    pub fn fingerprint(&self, seed: u64) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &[self.hll_precision]);
        h = fnv1a(h, &self.kll_k.to_le_bytes());
        h = fnv1a(h, &self.top_capacity.to_le_bytes());
        h = fnv1a(h, &self.reservoir_k.to_le_bytes());
        fnv1a(h, &seed.to_le_bytes())
    }
}

/// Everything the profiler needs from one column, in bounded memory:
/// null accounting, an HLL over rendered values, space-saving top-k, a
/// deterministic sample, and (for numeric columns) KLL quantiles plus
/// exact streaming moments. Built per chunk, merged in chunk order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSketch {
    params: SketchParams,
    seed: u64,
    rows: u64,
    nulls: u64,
    hll: HyperLogLog,
    topk: SpaceSaving,
    reservoir: ReservoirSample,
    kll: KllSketch,
    moments: Moments,
    /// Rendered-value byte lengths over non-null values; `min_len` is
    /// `u64::MAX` while empty.
    min_len: u64,
    max_len: u64,
}

impl ColumnSketch {
    /// Create an empty sketch for one column. `seed` should come from
    /// [`crate::hash::column_seed`] so it is a pure function of the
    /// column name.
    pub fn new(params: SketchParams, seed: u64) -> ColumnSketch {
        ColumnSketch {
            params,
            seed,
            rows: 0,
            nulls: 0,
            hll: HyperLogLog::new(params.hll_precision),
            topk: SpaceSaving::new(params.top_capacity),
            reservoir: ReservoirSample::new(params.reservoir_k, seed),
            kll: KllSketch::new(params.kll_k, seed),
            moments: Moments::new(),
            min_len: u64::MAX,
            max_len: 0,
        }
    }

    pub fn params(&self) -> SketchParams {
        self.params
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Observe a null cell.
    #[inline]
    pub fn push_null(&mut self) {
        self.rows += 1;
        self.nulls += 1;
    }

    /// Observe a non-null value by its rendered text (the same rendering
    /// the exact profiler's `top` listing uses).
    #[inline]
    pub fn push_rendered(&mut self, rendered: &str) {
        self.rows += 1;
        self.hll
            .insert_hash(hash_bytes(self.seed, rendered.as_bytes()));
        self.topk.insert(rendered);
        self.reservoir.insert(rendered);
        // Character count, matching the exact profiler's length stats.
        let len = rendered.chars().count() as u64;
        if len < self.min_len {
            self.min_len = len;
        }
        if len > self.max_len {
            self.max_len = len;
        }
    }

    /// Observe a non-null numeric value: rendered text feeds the
    /// categorical sketches, the `f64` feeds KLL + moments.
    #[inline]
    pub fn push_numeric(&mut self, rendered: &str, v: f64) {
        self.push_rendered(rendered);
        self.moments.insert(v);
        if v.is_finite() {
            self.kll.insert(v);
        }
    }

    /// Merge another chunk's sketch (same params and seed — callers key
    /// cached partials by [`SketchParams::fingerprint`] to guarantee it).
    pub fn merge(&mut self, other: &ColumnSketch) {
        self.rows += other.rows;
        self.nulls += other.nulls;
        self.hll.merge(&other.hll);
        self.topk.merge(&other.topk);
        self.reservoir.merge(&other.reservoir);
        self.kll.merge(&other.kll);
        self.moments.merge(&other.moments);
        if other.min_len < self.min_len {
            self.min_len = other.min_len;
        }
        if other.max_len > self.max_len {
            self.max_len = other.max_len;
        }
    }

    pub fn rows(&self) -> u64 {
        self.rows
    }
    pub fn nulls(&self) -> u64 {
        self.nulls
    }
    /// Non-null value count.
    pub fn values(&self) -> u64 {
        self.rows - self.nulls
    }
    pub fn hll(&self) -> &HyperLogLog {
        &self.hll
    }
    pub fn topk(&self) -> &SpaceSaving {
        &self.topk
    }
    pub fn reservoir(&self) -> &ReservoirSample {
        &self.reservoir
    }
    pub fn kll(&self) -> &KllSketch {
        &self.kll
    }
    pub fn moments(&self) -> &Moments {
        &self.moments
    }
    /// (min, max) rendered length over non-null values, or `None` when
    /// no value was observed.
    pub fn length_range(&self) -> Option<(u64, u64)> {
        if self.min_len == u64::MAX {
            None
        } else {
            Some((self.min_len, self.max_len))
        }
    }

    /// Estimated distinct count, clamped to the observed value count.
    pub fn distinct_estimate(&self) -> f64 {
        self.hll.estimate().min(self.values() as f64)
    }

    /// Approximate heap footprint of the whole bundle in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.hll.resident_bytes()
            + self.topk.resident_bytes()
            + self.reservoir.resident_bytes()
            + self.kll.resident_bytes()
            + std::mem::size_of::<Moments>()
            + std::mem::size_of::<ColumnSketch>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::column_seed;

    #[test]
    fn params_fingerprint_separates_params_and_seed() {
        let p = SketchParams::default();
        let q = SketchParams {
            kll_k: 100,
            ..SketchParams::default()
        };
        let s1 = column_seed("a");
        let s2 = column_seed("b");
        assert_eq!(p.fingerprint(s1), p.fingerprint(s1));
        assert_ne!(p.fingerprint(s1), q.fingerprint(s1));
        assert_ne!(p.fingerprint(s1), p.fingerprint(s2));
    }

    #[test]
    fn chunked_fold_matches_single_pass() {
        let params = SketchParams::default();
        let seed = column_seed("col");
        let mut whole = ColumnSketch::new(params, seed);
        let mut parts: Vec<ColumnSketch> = Vec::new();
        for c in 0..4 {
            let mut part = ColumnSketch::new(params, seed);
            for i in 0..250 {
                let v = f64::from(c * 250 + i);
                let rendered = format!("{v}");
                part.push_numeric(&rendered, v);
                // The whole-stream sketch sees positions restart per
                // chunk exactly like the per-chunk fold does, so build it
                // from the same parts.
            }
            parts.push(part);
        }
        let mut folded = ColumnSketch::new(params, seed);
        for p in &parts {
            folded.merge(p);
        }
        for p in &parts {
            whole.merge(p);
        }
        assert_eq!(folded, whole);
        assert_eq!(folded.rows(), 1000);
        assert_eq!(folded.nulls(), 0);
        let d = folded.distinct_estimate();
        assert!((d - 1000.0).abs() / 1000.0 < 0.05, "distinct {d}");
    }

    #[test]
    fn null_accounting() {
        let mut s = ColumnSketch::new(SketchParams::default(), 1);
        s.push_null();
        s.push_rendered("x");
        s.push_null();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.nulls(), 2);
        assert_eq!(s.values(), 1);
        assert_eq!(s.length_range(), Some((1, 1)));
    }
}

//! Deterministic reservoir sample (bottom-k by hash).
//!
//! Bounded size: at most `k` retained `(tag, value)` entries. Instead of
//! the classical RNG-driven reservoir, every stream element is assigned a
//! deterministic 64-bit tag `hash(seed, position-in-chunk, value)` and
//! the sample is the `k` entries with the smallest tags — a *bottom-k*
//! sample, which is uniform over tags and therefore a pseudo-uniform
//! sample of the stream.
//!
//! # Why bottom-k
//!
//! - **No RNG state**: the sample is a pure function of (seed, stream),
//!   so warm-cache and cold runs serialize bit-identically.
//! - **Mergeable**: the bottom-k of a union is the bottom-k of the
//!   concatenated entry lists — merge is union + truncate, and commutes.
//! - **Cache-friendly**: a per-chunk sample depends only on the chunk's
//!   contents (positions restart per chunk), matching the profile cache's
//!   content-addressed chunk partials.

use serde::{Deserialize, Serialize};

use crate::hash::{hash_bytes, splitmix64};

/// Bottom-k-by-hash sample; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservoirSample {
    k: u32,
    seed: u64,
    n: u64,
    /// Sorted ascending by `(tag, value)`; length ≤ `k`.
    entries: Vec<(u64, String)>,
}

impl ReservoirSample {
    /// Create an empty sample holding at most `k` values (clamped to
    /// `1..=4096`).
    pub fn new(k: u32, seed: u64) -> ReservoirSample {
        ReservoirSample {
            k: k.clamp(1, 4096),
            seed,
            n: 0,
            entries: Vec::new(),
        }
    }

    /// Total stream length observed (including merged sketches).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Observe one value. The tag mixes the position within this sketch's
    /// own stream (i.e. the chunk) so repeated values still sample
    /// distinct occurrences.
    pub fn insert(&mut self, value: &str) {
        let tag = hash_bytes(self.seed ^ splitmix64(self.n), value.as_bytes());
        self.n += 1;
        if self.entries.len() >= self.k as usize {
            if let Some(last) = self.entries.last() {
                if (tag, value) >= (last.0, last.1.as_str()) {
                    return;
                }
            }
        }
        let probe = (tag, value.to_string());
        let at = self
            .entries
            .binary_search_by(|e| (e.0, e.1.as_str()).cmp(&(probe.0, probe.1.as_str())))
            .unwrap_or_else(|i| i);
        self.entries.insert(at, probe);
        self.entries.truncate(self.k as usize);
    }

    /// Merge another sample (same `k` and seed, enforced upstream):
    /// union the entry lists, keep the `k` smallest tags. Commutative and
    /// associative, so the merged sample is chunking-independent given
    /// identical per-chunk streams.
    pub fn merge(&mut self, other: &ReservoirSample) {
        assert_eq!(self.k, other.k, "reservoir merge requires equal k");
        self.n += other.n;
        self.entries.extend(other.entries.iter().cloned());
        self.entries
            .sort_by(|a, b| (a.0, a.1.as_str()).cmp(&(b.0, b.1.as_str())));
        self.entries.truncate(self.k as usize);
    }

    /// The sampled values, in tag order (pseudo-random but stable).
    pub fn values(&self) -> Vec<String> {
        self.entries.iter().map(|(_, v)| v.clone()).collect()
    }

    /// Number of retained samples (≤ k).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, v)| v.len() + std::mem::size_of::<(u64, String)>())
            .sum::<usize>()
            + std::mem::size_of::<ReservoirSample>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_builds() {
        let build = || {
            let mut r = ReservoirSample::new(8, 99);
            for i in 0..1000 {
                r.insert(&format!("row{i}"));
            }
            r
        };
        assert_eq!(build(), build());
        assert_eq!(build().len(), 8);
    }

    #[test]
    fn seed_changes_the_sample() {
        let build = |seed| {
            let mut r = ReservoirSample::new(8, seed);
            for i in 0..1000 {
                r.insert(&format!("row{i}"));
            }
            r.values()
        };
        assert_ne!(build(1), build(2));
    }

    #[test]
    fn merge_commutes() {
        let fill = |lo: u32, hi: u32| {
            let mut r = ReservoirSample::new(16, 7);
            for i in lo..hi {
                r.insert(&format!("v{i}"));
            }
            r
        };
        let a = fill(0, 500);
        let b = fill(500, 1000);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 1000);
        assert_eq!(ab.len(), 16);
    }

    #[test]
    fn short_streams_keep_everything() {
        let mut r = ReservoirSample::new(32, 3);
        for i in 0..5 {
            r.insert(&format!("x{i}"));
        }
        let mut vals = r.values();
        vals.sort();
        assert_eq!(vals, vec!["x0", "x1", "x2", "x3", "x4"]);
    }
}

//! Space-saving heavy-hitters (top-k) sketch over strings.
//!
//! Bounded size: at most `capacity` `(value, count, overcount)` counters.
//! Mergeable in the style of Agarwal et al.'s mergeable summaries: counts
//! for values absent from one side are bounded by that side's minimum
//! counter, which is added as overcount.
//!
//! # Error bound
//!
//! For every tracked value, `count − overcount ≤ true frequency ≤ count`,
//! and `overcount ≤ n / capacity` where `n` is the total stream length
//! (summed across merged sketches). Any value with true frequency above
//! `n / capacity` is guaranteed to be tracked. At the default capacity 64
//! a top-10 listing is exact whenever the column has ≤ 64 distinct
//! values — the common case for categorical columns.
//!
//! # Determinism
//!
//! Victim selection and truncation tie-break by (count, value) with a
//! total lexicographic order, so insertion of the same stream and merges
//! in a fixed order reproduce byte-identical sketches.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One tracked counter: estimated `count` and its maximum `overcount`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopEntry {
    pub count: u64,
    pub overcount: u64,
}

/// Space-saving sketch; see the module docs for bounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceSaving {
    capacity: u32,
    n: u64,
    counters: BTreeMap<String, TopEntry>,
}

impl SpaceSaving {
    /// Create an empty sketch tracking at most `capacity` values
    /// (clamped to `1..=4096`).
    pub fn new(capacity: u32) -> SpaceSaving {
        SpaceSaving {
            capacity: capacity.clamp(1, 4096),
            n: 0,
            counters: BTreeMap::new(),
        }
    }

    /// Total observed stream length (including merged sketches).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The smallest tracked count, or 0 when under capacity. This is the
    /// implicit upper bound on the frequency of every untracked value.
    fn floor(&self) -> u64 {
        if self.counters.len() < self.capacity as usize {
            0
        } else {
            self.counters.values().map(|e| e.count).min().unwrap_or(0)
        }
    }

    /// Observe one value.
    pub fn insert(&mut self, value: &str) {
        self.n += 1;
        if let Some(e) = self.counters.get_mut(value) {
            e.count += 1;
            return;
        }
        if self.counters.len() < self.capacity as usize {
            self.counters.insert(
                value.to_string(),
                TopEntry {
                    count: 1,
                    overcount: 0,
                },
            );
            return;
        }
        // Evict the (count, value)-minimal counter and inherit its count
        // as overcount — the space-saving replacement rule.
        let victim = self
            .counters
            .iter()
            .min_by(|a, b| (a.1.count, a.0).cmp(&(b.1.count, b.0)))
            .map(|(k, e)| (k.clone(), e.count));
        if let Some((key, floor)) = victim {
            self.counters.remove(&key);
            self.counters.insert(
                value.to_string(),
                TopEntry {
                    count: floor + 1,
                    overcount: floor,
                },
            );
        }
    }

    /// Merge another sketch (same capacity, enforced upstream). Counts
    /// add across the union of tracked values; a value absent from one
    /// side contributes that side's floor as additional overcount. The
    /// union is then truncated back to capacity keeping the largest
    /// counts (ties broken by value ascending).
    pub fn merge(&mut self, other: &SpaceSaving) {
        assert_eq!(
            self.capacity, other.capacity,
            "space-saving merge requires equal capacity"
        );
        let self_floor = self.floor();
        let other_floor = other.floor();
        let mut union: BTreeMap<String, TopEntry> = BTreeMap::new();
        for (k, e) in &self.counters {
            let (oc, oe) = other
                .counters
                .get(k)
                .map(|o| (o.count, o.overcount))
                .unwrap_or((other_floor, other_floor));
            union.insert(
                k.clone(),
                TopEntry {
                    count: e.count + oc,
                    overcount: e.overcount + oe,
                },
            );
        }
        for (k, o) in &other.counters {
            if union.contains_key(k) {
                continue;
            }
            union.insert(
                k.clone(),
                TopEntry {
                    count: o.count + self_floor,
                    overcount: o.overcount + self_floor,
                },
            );
        }
        if union.len() > self.capacity as usize {
            let mut order: Vec<(String, TopEntry)> = union.into_iter().collect();
            order.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(&b.0)));
            order.truncate(self.capacity as usize);
            union = order.into_iter().collect();
        }
        self.counters = union;
        self.n += other.n;
    }

    /// The `k` most frequent tracked values as `(value, estimated count)`
    /// sorted by count descending, then value ascending.
    pub fn top(&self, k: usize) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .iter()
            .map(|(v, e)| (v.clone(), e.count))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// All tracked counters (for entropy-style estimates downstream).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &TopEntry)> {
        self.counters.iter().map(|(k, e)| (k.as_str(), e))
    }

    /// Maximum possible overcount of any reported count: `n / capacity`.
    pub fn max_overcount(&self) -> u64 {
        self.n / u64::from(self.capacity)
    }

    /// Approximate heap footprint in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.counters
            .keys()
            .map(|k| k.len() + std::mem::size_of::<TopEntry>() + 48)
            .sum::<usize>()
            + std::mem::size_of::<SpaceSaving>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_under_capacity() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..5 {
            s.insert("a");
        }
        for _ in 0..3 {
            s.insert("b");
        }
        s.insert("c");
        assert_eq!(s.top(2), vec![("a".to_string(), 5), ("b".to_string(), 3)]);
        assert_eq!(s.max_overcount(), 1);
    }

    #[test]
    fn heavy_hitters_survive_eviction() {
        let mut s = SpaceSaving::new(16);
        // 40% "hot", the rest a churn of rare values.
        for i in 0..10_000u64 {
            if i % 5 < 2 {
                s.insert("hot");
            } else {
                s.insert(&format!("rare{}", i));
            }
        }
        let top = s.top(1);
        assert_eq!(top[0].0, "hot");
        let est = top[0].1;
        assert!(est >= 4000, "count underestimated: {est}");
        assert!(est <= 4000 + s.max_overcount());
    }

    #[test]
    fn merge_is_order_insensitive_for_exact_streams() {
        let mut a = SpaceSaving::new(32);
        let mut b = SpaceSaving::new(32);
        for i in 0..50u64 {
            a.insert(&format!("v{}", i % 5));
            b.insert(&format!("v{}", i % 7));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.top(12), ba.top(12));
        assert_eq!(ab.count(), 100);
    }

    #[test]
    fn ties_break_by_value_ascending() {
        let mut s = SpaceSaving::new(8);
        s.insert("b");
        s.insert("a");
        s.insert("c");
        assert_eq!(
            s.top(3),
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 1),
                ("c".to_string(), 1)
            ]
        );
    }
}

//! KLL-style quantile sketch over `f64` values.
//!
//! Bounded size: a hierarchy of compactor buffers whose capacities decay
//! geometrically (ratio 2/3) from `k` at the top, so the sketch holds
//! O(k log(n/k)) values regardless of stream length (≈ 3·k retained
//! values in practice). Items at level `l` each represent `2^l` stream
//! values.
//!
//! # Error bound
//!
//! For the default `k = 200`, the normalized rank error of
//! [`KllSketch::quantile`] and [`KllSketch::rank`] is at most **ε ≈ 1 %**
//! with high probability (the classical KLL bound is ε = O(1/k); the
//! property tests in this crate assert ε ≤ 0.02 on uniform, zipf and
//! constant streams, and ≤ 0.03 after merging many per-chunk sketches).
//!
//! # Determinism
//!
//! Compaction keeps the even- or odd-indexed half of a sorted buffer; the
//! choice is the classical random coin, here derived as
//! `splitmix64(seed ^ compaction_counter)`, so a sketch built twice over
//! the same values with the same seed is byte-identical, and merging in a
//! fixed (chunk) order is reproducible at any thread count.

use serde::{Deserialize, Serialize};

use crate::hash::splitmix64;

/// Quantile sketch; see the module docs for the ε bound and determinism
/// contract. NaN inputs are ignored; ±∞ participate normally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KllSketch {
    k: u16,
    seed: u64,
    n: u64,
    compactions: u64,
    /// `levels[l]` holds items of weight `2^l`. Level 0 is the insert
    /// buffer and may be unsorted; higher levels are kept sorted.
    levels: Vec<Vec<f64>>,
    min: f64,
    max: f64,
}

impl KllSketch {
    /// Create an empty sketch. `k` is clamped to `8..=4096`; the rank
    /// error shrinks as O(1/k) while memory grows as O(k).
    pub fn new(k: u16, seed: u64) -> KllSketch {
        KllSketch {
            k: k.clamp(8, 4096),
            seed,
            n: 0,
            compactions: 0,
            levels: vec![Vec::new()],
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of inserted (non-NaN) values.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Smallest inserted value (exact), or +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest inserted value (exact), or −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Capacity of level `l` out of `depth` levels: `k` at the top,
    /// decaying by 2/3 per level below, floored at 2.
    fn capacity(&self, level: usize, depth: usize) -> usize {
        let from_top = (depth - 1 - level) as i32;
        let cap = f64::from(self.k) * (2.0f64 / 3.0).powi(from_top);
        (cap.ceil() as usize).max(2)
    }

    fn total_capacity(&self) -> usize {
        let depth = self.levels.len();
        (0..depth).map(|l| self.capacity(l, depth)).sum()
    }

    fn total_retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Insert one value. NaN is ignored (profiling counts non-finite
    /// values separately).
    #[inline]
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.n += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.levels[0].push(v);
        if self.total_retained() > self.total_capacity() {
            self.compress();
        }
    }

    /// Compact the lowest over-capacity level into the one above it.
    fn compress(&mut self) {
        while self.total_retained() > self.total_capacity() {
            let depth = self.levels.len();
            let mut compacted = false;
            for l in 0..depth {
                if self.levels[l].len() > self.capacity(l, depth) {
                    self.compact_level(l);
                    compacted = true;
                    break;
                }
            }
            if !compacted {
                // Every level is within its own capacity but the sum is
                // over budget (possible right after a merge): grow by
                // compacting the fullest level.
                let l = (0..depth)
                    .max_by_key(|&l| self.levels[l].len())
                    .unwrap_or(0);
                if self.levels[l].len() < 2 {
                    break;
                }
                self.compact_level(l);
            }
        }
    }

    fn compact_level(&mut self, l: usize) {
        if self.levels[l].len() < 2 {
            return;
        }
        if l + 1 == self.levels.len() {
            self.levels.push(Vec::new());
        }
        let mut buf = std::mem::take(&mut self.levels[l]);
        buf.sort_by(f64::total_cmp);
        if buf.len() % 2 == 1 {
            // Leave the largest item behind so the compacted run has even
            // length and total weight is conserved.
            if let Some(leftover) = buf.pop() {
                self.levels[l].push(leftover);
            }
        }
        // Deterministic coin: a fixed function of (seed, compaction index).
        let offset = (splitmix64(self.seed ^ self.compactions) & 1) as usize;
        self.compactions += 1;
        let survivors: Vec<f64> = buf.iter().copied().skip(offset).step_by(2).collect();
        let up = &mut self.levels[l + 1];
        up.extend_from_slice(&survivors);
        up.sort_by(f64::total_cmp);
    }

    /// Merge another sketch (same `k` and seed, enforced upstream by the
    /// params fingerprint). Buffers are concatenated level-wise, then
    /// compacted; with a fixed merge order the result is reproducible.
    pub fn merge(&mut self, other: &KllSketch) {
        assert_eq!(self.k, other.k, "KLL merge requires equal k");
        self.n += other.n;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (l, buf) in other.levels.iter().enumerate() {
            self.levels[l].extend_from_slice(buf);
        }
        self.compactions = self.compactions.wrapping_add(other.compactions);
        for l in 1..self.levels.len() {
            self.levels[l].sort_by(f64::total_cmp);
        }
        self.compress();
    }

    /// Weighted items: `(value, weight)` for every retained item.
    fn weighted(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.total_retained());
        for (l, buf) in self.levels.iter().enumerate() {
            let w = 1u64 << l;
            out.extend(buf.iter().map(|&v| (v, w)));
        }
        out.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
        out
    }

    /// Approximate `q`-quantile (`q` clamped to `[0, 1]`): the retained
    /// value whose cumulative weight first reaches `q·n`. Normalized rank
    /// error is bounded by the module-level ε. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let items = self.weighted();
        let target = q * self.n as f64;
        let mut cum = 0.0;
        for (v, w) in &items {
            cum += *w as f64;
            if cum >= target {
                return Some(*v);
            }
        }
        Some(self.max)
    }

    /// Approximate normalized rank of `v`: the fraction of inserted
    /// values `< v` (mid-weighted for ties), in `[0, 1]`. The error is
    /// bounded by the module-level ε. Returns 0 when empty.
    pub fn rank(&self, v: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mut below = 0.0f64;
        let mut equal = 0.0f64;
        for (l, buf) in self.levels.iter().enumerate() {
            let w = (1u64 << l) as f64;
            for &x in buf {
                if x < v {
                    below += w;
                } else if x == v {
                    equal += w;
                }
            }
        }
        ((below + equal * 0.5) / self.n as f64).clamp(0.0, 1.0)
    }

    /// Documented normalized rank-error bound for this sketch's `k`
    /// (empirically validated at ≈ 2/k by this crate's property tests).
    pub fn rank_error_bound(&self) -> f64 {
        2.0 / f64::from(self.k)
    }

    /// Approximate heap footprint in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<f64>())
            .sum::<usize>()
            + std::mem::size_of::<KllSketch>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_quantiles() {
        let s = KllSketch::new(200, 1);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.rank(1.0), 0.0);
    }

    #[test]
    fn small_streams_are_exact() {
        let mut s = KllSketch::new(200, 1);
        for i in 0..100 {
            s.insert(f64::from(i));
        }
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 99.0);
        let med = s.quantile(0.5).unwrap();
        assert!((med - 49.5).abs() <= 1.0, "median {med}");
    }

    #[test]
    fn uniform_rank_error_within_bound() {
        let n = 100_000;
        let mut s = KllSketch::new(200, 7);
        for i in 0..n {
            s.insert(f64::from(i));
        }
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let v = s.quantile(q).unwrap();
            let true_rank = v / f64::from(n);
            assert!(
                (true_rank - q).abs() <= s.rank_error_bound(),
                "q={q} v={v} err={}",
                (true_rank - q).abs()
            );
        }
    }

    #[test]
    fn sketch_is_bounded() {
        let mut s = KllSketch::new(200, 3);
        for i in 0..1_000_000 {
            s.insert(f64::from(i % 10_000));
        }
        assert!(s.total_retained() < 1200, "retained {}", s.total_retained());
        assert!(s.resident_bytes() < 64 * 1024);
    }

    #[test]
    fn determinism_same_seed_same_bytes() {
        let build = || {
            let mut s = KllSketch::new(64, 42);
            for i in 0..5000 {
                s.insert(f64::from((i * 37) % 501));
            }
            s
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn merge_tracks_min_max_and_count() {
        let mut a = KllSketch::new(128, 5);
        let mut b = KllSketch::new(128, 5);
        for i in 0..3000 {
            a.insert(f64::from(i));
            b.insert(f64::from(i + 3000));
        }
        a.merge(&b);
        assert_eq!(a.count(), 6000);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 5999.0);
        let med = a.quantile(0.5).unwrap();
        assert!((med / 6000.0 - 0.5).abs() <= 2.0 * a.rank_error_bound());
    }

    #[test]
    fn nan_is_ignored() {
        let mut s = KllSketch::new(64, 1);
        s.insert(f64::NAN);
        s.insert(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), Some(1.0));
    }
}

//! HyperLogLog distinct-count sketch.
//!
//! Bounded size: `2^precision` one-byte registers (4 KiB at the default
//! precision 12). Mergeable: the register-wise maximum of two sketches
//! over streams A and B equals the sketch of A ∪ B exactly, so merge
//! order never changes the result.
//!
//! # Error bound
//!
//! The relative standard error of [`HyperLogLog::estimate`] is
//! `1.04 / sqrt(2^precision)` — about **1.6 % at precision 12** — and the
//! estimate is within 2 standard errors (~3.3 %) with ~95 % confidence.
//! Small cardinalities (below `2.5 * 2^precision`) switch to linear
//! counting, which is near-exact. Hashes are 64-bit, so no large-range
//! correction is needed at any realistic cardinality.

use serde::{Deserialize, Serialize};

/// HyperLogLog with dense one-byte registers. See the module docs for the
/// error bound; construction clamps precision to `4..=16`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Create an empty sketch with `2^precision` registers. Precision is
    /// clamped to `4..=16` (16 B to 64 KiB of registers).
    pub fn new(precision: u8) -> HyperLogLog {
        let p = precision.clamp(4, 16);
        HyperLogLog {
            precision: p,
            registers: vec![0u8; 1usize << p],
        }
    }

    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Observe one already-hashed value. The caller hashes with a seeded
    /// hash ([`crate::hash::hash_bytes`]) so the sketch itself holds no
    /// RNG state.
    #[inline]
    pub fn insert_hash(&mut self, h: u64) {
        let p = self.precision as u32;
        let idx = (h >> (64 - p)) as usize;
        // Rank of the first set bit in the remaining 64-p bits, in 1..=64-p+1.
        let rest = h << p;
        let rho = if rest == 0 {
            (64 - p + 1) as u8
        } else {
            (rest.leading_zeros() + 1) as u8
        };
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Register-wise maximum. Merging sketches of disjoint chunks yields
    /// exactly the sketch of the concatenated stream, so the estimate is
    /// independent of chunking and merge order. Both sketches must share
    /// a precision (enforced upstream by the params fingerprint).
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(
            self.precision, other.precision,
            "HLL merge requires equal precision"
        );
        for (r, o) in self.registers.iter_mut().zip(&other.registers) {
            if *o > *r {
                *r = *o;
            }
        }
    }

    /// Estimated number of distinct hashed values.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 2.0f64.powi(-i32::from(r));
            if r == 0 {
                zeros += 1;
            }
        }
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Linear counting: near-exact in the small-cardinality regime.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Relative standard error of [`estimate`](Self::estimate):
    /// `1.04 / sqrt(2^precision)`.
    pub fn relative_standard_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// True if no value has been inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Approximate heap footprint in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.registers.len() + std::mem::size_of::<HyperLogLog>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_bytes;

    fn filled(seed: u64, distinct: u64, reps: u64) -> HyperLogLog {
        let mut h = HyperLogLog::new(12);
        for r in 0..reps {
            let _ = r;
            for i in 0..distinct {
                h.insert_hash(hash_bytes(seed, format!("v{i}").as_bytes()));
            }
        }
        h
    }

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLog::new(12);
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn small_range_is_near_exact() {
        let h = filled(1, 100, 3);
        let est = h.estimate();
        assert!((est - 100.0).abs() < 3.0, "est {est}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let once = filled(2, 5000, 1);
        let thrice = filled(2, 5000, 3);
        assert_eq!(once, thrice);
    }

    #[test]
    fn large_range_within_error_bound() {
        let h = filled(3, 200_000, 1);
        let est = h.estimate();
        let rel = (est - 200_000.0).abs() / 200_000.0;
        // 3 standard errors at p=12 is ~4.9%.
        assert!(rel < 3.0 * h.relative_standard_error(), "rel err {rel}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        let mut whole = HyperLogLog::new(12);
        for i in 0..10_000u64 {
            let h = hash_bytes(9, format!("k{i}").as_bytes());
            if i % 2 == 0 {
                a.insert_hash(h);
            } else {
                b.insert_hash(h);
            }
            whole.insert_hash(h);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}

//! Property tests pinning the documented error bounds against exact
//! computations on synthetic distributions: uniform, zipf, constant and
//! all-null columns, plus merge-of-many-chunks vs single-sketch
//! equivalence. These are the bounds the rustdoc advertises; if a bound
//! has to be loosened here, loosen the docs with it.

use std::collections::HashMap;

use datalens_sketch::hash::{column_seed, splitmix64};
use datalens_sketch::{ColumnSketch, HyperLogLog, KllSketch, SketchParams, SpaceSaving};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Synthetic distributions (deterministic: driven by splitmix64 streams).

fn uniform_values(n: usize, distinct: u64, stream: u64) -> Vec<u64> {
    (0..n)
        .map(|i| splitmix64(stream.wrapping_add(i as u64)) % distinct)
        .collect()
}

/// Zipf-ish skew: rank r gets weight ∝ 1/(r+1); realized by mapping a
/// uniform hash through the inverse CDF of the harmonic distribution.
fn zipf_values(n: usize, distinct: u64, stream: u64) -> Vec<u64> {
    let harmonics: Vec<f64> = {
        let mut acc = 0.0;
        (0..distinct)
            .map(|r| {
                acc += 1.0 / (r as f64 + 1.0);
                acc
            })
            .collect()
    };
    let total = *harmonics.last().unwrap_or(&1.0);
    (0..n)
        .map(|i| {
            let u = splitmix64(stream.wrapping_add(i as u64)) as f64 / u64::MAX as f64 * total;
            harmonics.partition_point(|&h| h < u) as u64
        })
        .collect()
}

fn exact_distinct(vals: &[u64]) -> usize {
    let mut seen: Vec<u64> = vals.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

fn exact_rank(sorted: &[f64], v: f64) -> f64 {
    sorted.partition_point(|&x| x < v) as f64 / sorted.len() as f64
}

// ---------------------------------------------------------------------
// HyperLogLog relative error.

fn hll_of(vals: &[u64], seed: u64) -> HyperLogLog {
    let mut h = HyperLogLog::new(12);
    for v in vals {
        h.insert_hash(datalens_sketch::hash::hash_bytes(
            seed,
            v.to_string().as_bytes(),
        ));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn hll_uniform_within_bound(stream in 0u64..1000, distinct in 1000u64..60_000) {
        let vals = uniform_values(120_000, distinct, stream);
        let h = hll_of(&vals, column_seed("u"));
        let truth = exact_distinct(&vals) as f64;
        let rel = (h.estimate() - truth).abs() / truth;
        // 3 standard errors at p=12 ≈ 4.9 %.
        prop_assert!(rel <= 3.0 * h.relative_standard_error(), "rel err {rel}");
    }

    #[test]
    fn hll_zipf_within_bound(stream in 0u64..1000) {
        let vals = zipf_values(80_000, 20_000, stream);
        let h = hll_of(&vals, column_seed("z"));
        let truth = exact_distinct(&vals) as f64;
        let rel = (h.estimate() - truth).abs() / truth;
        prop_assert!(rel <= 3.0 * h.relative_standard_error(), "rel err {rel}");
    }

    #[test]
    fn kll_uniform_rank_error_within_bound(stream in 0u64..1000) {
        let vals: Vec<f64> = uniform_values(50_000, 1 << 40, stream)
            .into_iter().map(|v| v as f64).collect();
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        let mut s = KllSketch::new(200, column_seed("kll-u"));
        for &v in &vals {
            s.insert(v);
        }
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let est = s.quantile(q).unwrap();
            let err = (exact_rank(&sorted, est) - q).abs();
            prop_assert!(err <= s.rank_error_bound(), "q={q} err={err}");
        }
    }

    #[test]
    fn kll_zipf_rank_error_within_bound(stream in 0u64..1000) {
        let vals: Vec<f64> = zipf_values(50_000, 5_000, stream)
            .into_iter().map(|v| v as f64).collect();
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        let mut s = KllSketch::new(200, column_seed("kll-z"));
        for &v in &vals {
            s.insert(v);
        }
        for q in [0.1, 0.5, 0.9] {
            let est = s.quantile(q).unwrap();
            // Heavy ties: compare against the closest achievable rank on
            // either side of the estimate.
            let lo = exact_rank(&sorted, est);
            let hi = exact_rank(&sorted, est + 0.5);
            let err = if (lo..=hi).contains(&q) {
                0.0
            } else {
                (lo - q).abs().min((hi - q).abs())
            };
            prop_assert!(err <= s.rank_error_bound(), "q={q} err={err} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn merged_chunks_match_single_sketch(stream in 0u64..500, chunks in 2usize..12) {
        // HLL merge is lossless (register-wise max), so merging per-chunk
        // sketches must reproduce the single-pass sketch *exactly*; KLL
        // and space-saving stay within their documented bounds.
        let vals = uniform_values(20_000, 3_000, stream);
        let seed = column_seed("merged");
        let single = hll_of(&vals, seed);
        let mut merged = HyperLogLog::new(12);
        let per = vals.len().div_ceil(chunks);
        for part in vals.chunks(per) {
            merged.merge(&hll_of(part, seed));
        }
        prop_assert_eq!(&merged, &single);

        let floats: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
        let mut sorted = floats.clone();
        sorted.sort_by(f64::total_cmp);
        let mut kll_merged = KllSketch::new(200, seed);
        for part in floats.chunks(per) {
            let mut p = KllSketch::new(200, seed);
            for &v in part {
                p.insert(v);
            }
            kll_merged.merge(&p);
        }
        prop_assert_eq!(kll_merged.count(), floats.len() as u64);
        for q in [0.25, 0.5, 0.75] {
            let est = kll_merged.quantile(q).unwrap();
            let err = (exact_rank(&sorted, est) - q).abs();
            // Merged sketches get a little extra slack (still ≪ 2ε).
            prop_assert!(err <= 1.5 * kll_merged.rank_error_bound(), "q={q} err={err}");
        }
    }
}

// ---------------------------------------------------------------------
// Degenerate distributions: constant and all-null columns.

#[test]
fn constant_column_is_exact() {
    let params = SketchParams::default();
    let seed = column_seed("const");
    let mut s = ColumnSketch::new(params, seed);
    for _ in 0..10_000 {
        s.push_numeric("7", 7.0);
    }
    assert_eq!(s.distinct_estimate().round() as u64, 1);
    assert_eq!(s.kll().quantile(0.5), Some(7.0));
    assert_eq!(s.kll().min(), 7.0);
    assert_eq!(s.kll().max(), 7.0);
    assert_eq!(s.topk().top(1), vec![("7".to_string(), 10_000)]);
    assert_eq!(s.moments().variance(), 0.0);
}

#[test]
fn all_null_column_is_empty() {
    let mut s = ColumnSketch::new(SketchParams::default(), column_seed("nulls"));
    for _ in 0..5_000 {
        s.push_null();
    }
    assert_eq!(s.rows(), 5_000);
    assert_eq!(s.nulls(), 5_000);
    assert_eq!(s.distinct_estimate(), 0.0);
    assert_eq!(s.kll().quantile(0.5), None);
    assert!(s.topk().top(5).is_empty());
    assert!(s.reservoir().is_empty());
    assert_eq!(s.length_range(), None);
}

// ---------------------------------------------------------------------
// Space-saving bounds on a skewed stream.

#[test]
fn space_saving_bounds_hold_on_zipf() {
    let vals = zipf_values(60_000, 10_000, 17);
    let mut exact: HashMap<u64, u64> = HashMap::new();
    for &v in &vals {
        *exact.entry(v).or_insert(0) += 1;
    }
    let mut s = SpaceSaving::new(64);
    for v in &vals {
        s.insert(&v.to_string());
    }
    // Guarantee: estimated count never under-reports, and over-reports by
    // at most n/capacity.
    for (value, est) in s.top(10) {
        let truth = exact[&value.parse::<u64>().unwrap()];
        assert!(est >= truth, "under-report {value}: {est} < {truth}");
        assert!(
            est <= truth + s.max_overcount(),
            "over-report {value}: {est} > {truth} + {}",
            s.max_overcount()
        );
    }
    // Every value more frequent than n/capacity must be tracked.
    let floor = s.max_overcount();
    let tracked: Vec<String> = s.top(64).into_iter().map(|(v, _)| v).collect();
    for (&value, &truth) in &exact {
        if truth > floor {
            assert!(
                tracked.contains(&value.to_string()),
                "frequent value {value} (count {truth}) not tracked"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Whole-bundle determinism: the ColumnSketch built twice (and via
// different chunkings of the same per-chunk streams) is byte-identical.

#[test]
fn column_sketch_serialization_is_deterministic() {
    let build = || {
        let params = SketchParams::default();
        let mut s = ColumnSketch::new(params, column_seed("det"));
        for i in 0..5_000u64 {
            if i % 11 == 0 {
                s.push_null();
            } else {
                let v = (splitmix64(i) % 997) as f64;
                s.push_numeric(&v.to_string(), v);
            }
        }
        s
    };
    let a = build();
    let b = build();
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

//! Figure 5 harness: impact of the number of search iterations on the
//! iterative-cleaning outcome.
//!
//! For each iteration budget (the paper sweeps 5..20), run the TPE search
//! over (detector × repairer), score the downstream decision tree, and
//! plot against the dirty-data and ground-truth baselines. The expected
//! shape: more iterations → better (lower MSE / higher F1) scores,
//! approaching the ground-truth baseline and clearly beating dirty.

use datalens::iterative::{run_iterative_cleaning, IterativeCleaningConfig, SamplerKind};
use datalens_datasets::{registry, Task};
use datalens_fd::RuleSet;

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    pub iterations: usize,
    pub best_score: f64,
    pub best_detector: String,
    pub best_repairer: String,
}

/// The full figure for one dataset/task.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    pub dataset: String,
    pub task: Task,
    pub points: Vec<Fig5Point>,
    pub dirty_baseline: f64,
    pub clean_baseline: f64,
}

/// Which metric label the task uses.
pub fn metric_name(task: Task) -> &'static str {
    match task {
        Task::Regression => "MSE",
        Task::Classification => "F1",
    }
}

/// Run the Figure 5 sweep.
pub fn run(dataset: &str, iteration_counts: &[usize], seed: u64) -> Fig5Result {
    let meta = registry::catalog()
        .into_iter()
        .find(|d| d.name == dataset)
        .expect("known dataset");
    let dd = registry::dirty(dataset, seed).expect("known dataset");

    let mut points = Vec::new();
    let mut dirty_baseline = f64::NAN;
    let mut clean_baseline = f64::NAN;
    for &iterations in iteration_counts {
        let config = IterativeCleaningConfig {
            iterations,
            sampler: SamplerKind::Tpe,
            seed,
            ..IterativeCleaningConfig::new(meta.target, meta.task)
        };
        let report = run_iterative_cleaning(&dd.dirty, &RuleSet::new(), &config, Some(&dd.clean))
            .expect("search runs");
        dirty_baseline = report.dirty_baseline;
        clean_baseline = report.clean_baseline.expect("clean table provided");
        points.push(Fig5Point {
            iterations,
            best_score: report.best.score,
            best_detector: report.best.detector,
            best_repairer: report.best.repairer,
        });
    }
    Fig5Result {
        dataset: dataset.to_string(),
        task: meta.task,
        points,
        dirty_baseline,
        clean_baseline,
    }
}

/// Render the figure as a text series.
pub fn render(result: &Fig5Result) -> String {
    let metric = metric_name(result.task);
    let mut out = format!(
        "Figure 5 ({}): iterative cleaning, {metric} vs search iterations\n",
        result.dataset
    );
    out.push_str(&format!(
        "baseline dirty data:        {metric} = {:>10.4}\n",
        result.dirty_baseline
    ));
    out.push_str(&format!(
        "baseline ground truth:      {metric} = {:>10.4}\n",
        result.clean_baseline
    ));
    out.push_str(&format!(
        "{:>10}  {:>12}  best tool combination\n",
        "iterations", metric
    ));
    for p in &result.points {
        out.push_str(&format!(
            "{:>10}  {:>12.4}  {} + {}\n",
            p.iterations, p.best_score, p.best_detector, p.best_repairer
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nasa_regression_beats_dirty_and_trends_toward_clean() {
        let r = run("nasa", &[3, 8], 0);
        assert_eq!(r.points.len(), 2);
        // Cleaning beats the dirty baseline at the larger budget.
        let best = r.points.last().unwrap().best_score;
        assert!(
            best < r.dirty_baseline,
            "best {best:.2} vs dirty {:.2}",
            r.dirty_baseline
        );
        // The clean baseline is the floor (up to noise).
        assert!(r.clean_baseline <= r.dirty_baseline);
        // More iterations never hurt (TPE keeps the best).
        assert!(r.points[1].best_score <= r.points[0].best_score + 1e-9);
    }

    #[test]
    fn render_mentions_baselines() {
        let r = run("nasa", &[2], 1);
        let text = render(&r);
        assert!(text.contains("baseline dirty"));
        assert!(text.contains("ground truth"));
        assert!(text.contains("MSE"));
    }
}

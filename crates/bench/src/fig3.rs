//! Figure 3 harness: evaluation of the RAHA labeling process.
//!
//! For each labeling budget N ∈ {5, 10, 15, 20}, a simulated user drives
//! the RAHA session on the (NASA / Beers) dirty dataset; we record the
//! number of tuples actually *reviewed* (the paper's headline: reviewed
//! consistently exceeds ~2× the budget because the tuple-selection
//! strategy often surfaces clean tuples) and the detection F1 against
//! ground truth (rising modestly with budget: 0.34 → 0.40 in the paper).

use datalens::user::SimulatedUser;
use datalens::{DashboardConfig, DashboardController};
use datalens_datasets::registry;
use datalens_detect::RahaConfig;

/// One measured point of the figure.
#[derive(Debug, Clone)]
pub struct Fig3Point {
    pub budget: usize,
    pub avg_reviewed: f64,
    pub avg_f1: f64,
    pub avg_precision: f64,
    pub avg_recall: f64,
    pub seeds: usize,
}

/// Run the Figure 3 sweep for one dataset.
pub fn run(dataset: &str, budgets: &[usize], seeds: u64) -> Vec<Fig3Point> {
    budgets
        .iter()
        .map(|&budget| {
            let mut total_reviewed = 0usize;
            let mut total_f1 = 0.0;
            let mut total_p = 0.0;
            let mut total_r = 0.0;
            for seed in 0..seeds {
                let dd = registry::dirty(dataset, seed).expect("known dataset");
                let mut dash = DashboardController::new(DashboardConfig {
                    workspace_dir: None,
                    seed,
                    ..Default::default()
                })
                .expect("in-memory controller");
                dash.ingest_dirty_dataset(&dd, dataset).expect("ingest");
                let mut user = SimulatedUser::perfect(&dd);
                let outcome = dash
                    .run_raha_with_user(
                        RahaConfig {
                            labeling_budget: budget,
                            seed,
                            ..Default::default()
                        },
                        &mut user,
                    )
                    .expect("raha run");
                let score = dd.score_detections(&outcome.detection.cells);
                total_reviewed += outcome.tuples_reviewed;
                total_f1 += score.f1;
                total_p += score.precision;
                total_r += score.recall;
            }
            let n = seeds as f64;
            Fig3Point {
                budget,
                avg_reviewed: total_reviewed as f64 / n,
                avg_f1: total_f1 / n,
                avg_precision: total_p / n,
                avg_recall: total_r / n,
                seeds: seeds as usize,
            }
        })
        .collect()
}

/// Render the figure as the text series the paper plots.
pub fn render(dataset: &str, points: &[Fig3Point]) -> String {
    let mut out = format!(
        "Figure 3 ({dataset}): RAHA labeling evaluation ({} seeds)\n",
        points.first().map(|p| p.seeds).unwrap_or(0)
    );
    out.push_str("budget  avg_reviewed  reviewed/budget  avg_F1  avg_P   avg_R\n");
    for p in points {
        out.push_str(&format!(
            "{:>6}  {:>12.1}  {:>15.2}  {:>6.3}  {:>5.3}  {:>5.3}\n",
            p.budget,
            p.avg_reviewed,
            p.avg_reviewed / p.budget.max(1) as f64,
            p.avg_f1,
            p.avg_precision,
            p.avg_recall,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_on_nasa() {
        let points = run("nasa", &[5, 20], 2);
        assert_eq!(points.len(), 2);
        // Reviewed exceeds budget on every point (Fig 3's key finding).
        for p in &points {
            assert!(
                p.avg_reviewed > p.budget as f64,
                "budget {} reviewed {}",
                p.budget,
                p.avg_reviewed
            );
            assert!(p.avg_f1 > 0.0 && p.avg_f1 <= 1.0);
        }
        // F1 does not collapse as budget grows.
        assert!(points[1].avg_f1 >= points[0].avg_f1 - 0.1);
    }

    #[test]
    fn render_contains_series() {
        let points = run("beers", &[5], 1);
        let text = render("beers", &points);
        assert!(text.contains("budget"));
        assert!(text.contains("Figure 3 (beers)"));
    }
}

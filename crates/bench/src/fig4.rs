//! Figure 4 harness: distribution of detections across the attributes of
//! the NASA dataset, by tool (IQR, SD, FAHES, RAHA) plus user tags.

use std::collections::BTreeMap;

use datalens::user::SimulatedUser;
use datalens::{DashboardConfig, DashboardController};
use datalens_datasets::registry;
use datalens_detect::{detector_by_name, Detection, DetectionContext, RahaConfig};

/// The figure's data: tool → per-attribute detection counts.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    pub attributes: Vec<String>,
    pub counts: BTreeMap<String, Vec<usize>>,
    pub ground_truth_counts: Vec<usize>,
}

/// Run the Figure 4 pipeline on a preloaded dataset.
pub fn run(dataset: &str, seed: u64) -> Fig4Result {
    let dd = registry::dirty(dataset, seed).expect("known dataset");
    let mut dash = DashboardController::new(DashboardConfig {
        workspace_dir: None,
        seed,
        ..Default::default()
    })
    .expect("controller");
    dash.ingest_dirty_dataset(&dd, dataset).expect("ingest");

    // User tags the classic sentinels (§3's example values).
    dash.tag_value("-1").expect("tag");
    dash.tag_value("99999").expect("tag");

    // Interactive RAHA first (the paper: it starts with the others but
    // resolves after labeling).
    let mut user = SimulatedUser::perfect(&dd);
    let raha = dash
        .run_raha_with_user(
            RahaConfig {
                labeling_budget: 20,
                seed,
                ..Default::default()
            },
            &mut user,
        )
        .expect("raha");

    // The automated tools of the figure.
    let ctx = DetectionContext {
        rules: dash.rules().expect("rules").clone(),
        tagged_values: vec!["-1".into(), "99999".into()],
        seed,
    };
    let table = dash.table().expect("table").clone();
    let mut detections: Vec<Detection> = ["iqr", "sd", "fahes", "user_tags"]
        .iter()
        .map(|name| {
            detector_by_name(name)
                .expect("registered")
                .detect(&table, &ctx)
        })
        .collect();
    detections.push(raha.detection);

    dash.finish_detection(&["iqr", "sd", "fahes", "user_tags", "raha"], detections)
        .expect("consolidate");

    let merged = dash.detections().expect("detections");
    let attributes: Vec<String> = table.column_names().iter().map(|s| s.to_string()).collect();
    let counts = merged.per_attribute_counts(&table);

    // Ground truth per attribute, for EXPERIMENTS.md's shape check.
    let mut gt = vec![0usize; table.n_cols()];
    for cell in dd.errors.keys() {
        gt[cell.col] += 1;
    }

    Fig4Result {
        attributes,
        counts,
        ground_truth_counts: gt,
    }
}

/// Render the figure as an aligned text matrix.
pub fn render(dataset: &str, result: &Fig4Result) -> String {
    let mut out = format!("Figure 4 ({dataset}): detections per attribute by tool\n");
    let name_w = result
        .counts
        .keys()
        .map(String::len)
        .chain(std::iter::once("ground_truth".len()))
        .max()
        .unwrap_or(8);
    out.push_str(&format!("{:<name_w$}", "tool"));
    for a in &result.attributes {
        out.push_str(&format!("  {a:>22}"));
    }
    out.push('\n');
    for (tool, row) in &result.counts {
        out.push_str(&format!("{tool:<name_w$}"));
        for c in row {
            out.push_str(&format!("  {c:>22}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<name_w$}", "ground_truth"));
    for c in &result.ground_truth_counts {
        out.push_str(&format!("  {c:>22}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_varies_by_tool_and_attribute() {
        let r = run("nasa", 0);
        assert_eq!(r.attributes.len(), 6);
        assert!(r.counts.contains_key("sd"));
        assert!(r.counts.contains_key("fahes"));
        assert!(r.counts.contains_key("raha"));
        // Some tool found something somewhere.
        let total: usize = r.counts.values().flatten().sum();
        assert!(total > 0);
        // The protected target column has zero ground-truth errors.
        let target_idx = r
            .attributes
            .iter()
            .position(|a| a == datalens_datasets::nasa::TARGET)
            .unwrap();
        assert_eq!(r.ground_truth_counts[target_idx], 0);
    }

    #[test]
    fn render_is_a_matrix() {
        let r = run("nasa", 1);
        let text = render("nasa", &r);
        assert!(text.contains("frequency"));
        assert!(text.contains("ground_truth"));
    }
}

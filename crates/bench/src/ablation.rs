//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Min-K sweep** — ensemble agreement threshold vs precision/recall
//!    (the paper's claim: consolidation across tools improves precision);
//! 2. **TPE vs Random vs Grid** — the value of Bayesian search (§4's
//!    choice of Optuna) at equal trial budgets;
//! 3. **RAHA label quality** — detection F1 as the simulated user gets
//!    noisier (the realistic-evaluation argument of §1, contribution 5).

use datalens::iterative::{run_iterative_cleaning, IterativeCleaningConfig, SamplerKind};
use datalens::user::SimulatedUser;
use datalens::{DashboardConfig, DashboardController};
use datalens_datasets::{registry, DetectionScore, Task};
use datalens_detect::{
    DetectionContext, Detector, FahesDetector, IqrDetector, MinKDetector, MvDetector, RahaConfig,
    SdDetector,
};
use datalens_fd::RuleSet;

/// Min-K sweep result: one row per K.
#[derive(Debug, Clone)]
pub struct MinKPoint {
    pub k: usize,
    pub score: DetectionScore,
}

/// Sweep the ensemble threshold K on a preloaded dataset.
pub fn min_k_sweep(dataset: &str, seed: u64) -> Vec<MinKPoint> {
    let dd = registry::dirty(dataset, seed).expect("known dataset");
    let ctx = DetectionContext {
        seed,
        ..Default::default()
    };
    let base: Vec<datalens_detect::Detection> = vec![
        SdDetector::default().detect(&dd.dirty, &ctx),
        IqrDetector::default().detect(&dd.dirty, &ctx),
        MvDetector::default().detect(&dd.dirty, &ctx),
        FahesDetector::default().detect(&dd.dirty, &ctx),
    ];
    (1..=base.len())
        .map(|k| {
            let vote = MinKDetector::vote(&base, k);
            MinKPoint {
                k,
                score: dd.score_detections(&vote.cells),
            }
        })
        .collect()
}

/// Sampler-comparison result.
#[derive(Debug, Clone)]
pub struct SamplerPoint {
    pub sampler: SamplerKind,
    pub best_score: f64,
}

/// Compare samplers at an equal trial budget on a preloaded dataset
/// (averaged over seeds to damp noise).
pub fn sampler_comparison(dataset: &str, iterations: usize, seeds: u64) -> Vec<SamplerPoint> {
    let meta = registry::catalog()
        .into_iter()
        .find(|d| d.name == dataset)
        .expect("known dataset");
    [
        SamplerKind::Tpe,
        SamplerKind::Random,
        SamplerKind::Grid,
        SamplerKind::Ucb,
    ]
    .into_iter()
    .map(|sampler| {
        let mut total = 0.0;
        for seed in 0..seeds {
            let dd = registry::dirty(dataset, seed).expect("known dataset");
            let config = IterativeCleaningConfig {
                iterations,
                sampler,
                seed,
                // Cheap tool set keeps the ablation tractable.
                detectors: vec![
                    "sd".into(),
                    "iqr".into(),
                    "mv_detector".into(),
                    "fahes".into(),
                ],
                ..IterativeCleaningConfig::new(meta.target, meta.task)
            };
            let report = run_iterative_cleaning(&dd.dirty, &RuleSet::new(), &config, None)
                .expect("search runs");
            total += report.best.score;
        }
        SamplerPoint {
            sampler,
            best_score: total / seeds as f64,
        }
    })
    .collect()
}

/// RAHA user-noise sweep result.
#[derive(Debug, Clone)]
pub struct NoisePoint {
    pub miss_rate: f64,
    pub f1: f64,
}

/// Degrade the simulated user and measure RAHA's F1.
pub fn raha_noise_sweep(dataset: &str, miss_rates: &[f64], seed: u64) -> Vec<NoisePoint> {
    miss_rates
        .iter()
        .map(|&miss_rate| {
            let dd = registry::dirty(dataset, seed).expect("known dataset");
            let mut dash = DashboardController::new(DashboardConfig {
                workspace_dir: None,
                seed,
                ..Default::default()
            })
            .expect("controller");
            dash.ingest_dirty_dataset(&dd, dataset).expect("ingest");
            let mut user = SimulatedUser::noisy(&dd, miss_rate, 0.0, seed);
            let outcome = dash
                .run_raha_with_user(
                    RahaConfig {
                        labeling_budget: 20,
                        seed,
                        ..Default::default()
                    },
                    &mut user,
                )
                .expect("raha");
            NoisePoint {
                miss_rate,
                f1: dd.score_detections(&outcome.detection.cells).f1,
            }
        })
        .collect()
}

/// Render all three ablations.
pub fn render(dataset: &str, seed: u64) -> String {
    let mut out = format!("=== Ablations on {dataset} ===\n\n");

    out.push_str("Min-K ensemble threshold (SD+IQR+MV+FAHES):\n");
    out.push_str("  K  precision  recall   F1\n");
    for p in min_k_sweep(dataset, seed) {
        out.push_str(&format!(
            "  {}  {:>9.3}  {:>6.3}  {:>5.3}\n",
            p.k, p.score.precision, p.score.recall, p.score.f1
        ));
    }

    out.push_str("\nSampler comparison (8 iterations, 3 seeds):\n");
    let meta = registry::catalog()
        .into_iter()
        .find(|d| d.name == dataset)
        .expect("known dataset");
    let metric = match meta.task {
        Task::Regression => "MSE",
        Task::Classification => "F1",
    };
    for p in sampler_comparison(dataset, 8, 3) {
        out.push_str(&format!(
            "  {:?}: best {metric} {:.4}\n",
            p.sampler, p.best_score
        ));
    }

    out.push_str("\nRAHA with a noisy user (budget 20):\n");
    out.push_str("  miss_rate  F1\n");
    for p in raha_noise_sweep(dataset, &[0.0, 0.25, 0.5], seed) {
        out.push_str(&format!("  {:>9.2}  {:.3}\n", p.miss_rate, p.f1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_k_trades_recall_for_precision() {
        let points = min_k_sweep("nasa", 0);
        assert_eq!(points.len(), 4);
        // Recall is monotone non-increasing in K; precision at K=2 should
        // be at least K=1's (agreement filters noise).
        for w in points.windows(2) {
            assert!(w[1].score.recall <= w[0].score.recall + 1e-9);
        }
        assert!(points[1].score.precision >= points[0].score.precision - 0.05);
    }

    #[test]
    fn noisier_users_hurt_raha() {
        let points = raha_noise_sweep("nasa", &[0.0, 0.9], 0);
        assert!(points[0].f1 >= points[1].f1);
    }
}

//! Shared speedup bookkeeping for the performance benches.
//!
//! A `"speedup": seq/par` ratio is only meaningful when the parallel
//! variant could actually run in parallel. On a 1-core CI runner the
//! pool degenerates to sequential execution, the ratio hovers around
//! 1.0 by construction, and downstream tooling would happily plot it as
//! "no speedup achieved". [`speedup_fields`] records the effective
//! worker count and emits `"speedup": null` plus a machine-readable
//! `"speedup_reason"` in that case instead.

use serde_json::Value;

/// One sequential-vs-parallel timing comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupMeasurement {
    pub sequential_ms: f64,
    pub parallel_ms: f64,
    /// Worker/thread count the sequential variant was configured with.
    pub sequential_workers: usize,
    /// Worker/thread count the parallel variant was configured with.
    pub parallel_workers: usize,
    /// `std::thread::available_parallelism()` of the host.
    pub available_parallelism: usize,
}

impl SpeedupMeasurement {
    /// Workers the parallel variant can actually run concurrently: the
    /// configured pool capped by the host's cores.
    pub fn effective_parallel_workers(&self) -> usize {
        self.parallel_workers.min(self.available_parallelism.max(1))
    }

    /// Whether the pool degenerates — no more effective parallelism
    /// than the sequential baseline, so the ratio measures noise.
    pub fn is_degenerate(&self) -> bool {
        self.effective_parallel_workers() <= self.sequential_workers.max(1)
    }
}

/// The JSON fields every `BENCH_*.json` speedup block shares:
/// configured and effective worker counts, both timings, and either a
/// real `"speedup"` ratio or `"speedup": null` with a reason.
pub fn speedup_fields(m: &SpeedupMeasurement) -> Vec<(String, Value)> {
    let mut fields = vec![
        (
            "available_parallelism".to_string(),
            Value::U64(m.available_parallelism as u64),
        ),
        (
            "sequential_workers".to_string(),
            Value::U64(m.sequential_workers as u64),
        ),
        (
            "parallel_workers".to_string(),
            Value::U64(m.parallel_workers as u64),
        ),
        (
            "effective_parallel_workers".to_string(),
            Value::U64(m.effective_parallel_workers() as u64),
        ),
        ("sequential_ms".to_string(), Value::F64(m.sequential_ms)),
        ("parallel_ms".to_string(), Value::F64(m.parallel_ms)),
    ];
    if m.is_degenerate() {
        fields.push(("speedup".to_string(), Value::Null));
        fields.push((
            "speedup_reason".to_string(),
            Value::Str(format!(
                "pool degenerates to {} effective worker(s) on a host with \
                 available_parallelism={}; the ratio would measure noise",
                m.effective_parallel_workers(),
                m.available_parallelism,
            )),
        ));
    } else {
        fields.push((
            "speedup".to_string(),
            Value::F64(m.sequential_ms / m.parallel_ms),
        ));
    }
    fields
}

/// [`speedup_fields`] merged into an existing JSON object (the bench's
/// own metadata fields stay first).
pub fn merge_speedup(base: Value, m: &SpeedupMeasurement) -> Value {
    let mut entries = match base {
        Value::Obj(entries) => entries,
        other => vec![("base".to_string(), other)],
    };
    entries.extend(speedup_fields(m));
    Value::Obj(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(parallel_workers: usize, cores: usize) -> SpeedupMeasurement {
        SpeedupMeasurement {
            sequential_ms: 100.0,
            parallel_ms: 30.0,
            sequential_workers: 1,
            parallel_workers,
            available_parallelism: cores,
        }
    }

    #[test]
    fn real_parallelism_reports_a_ratio() {
        let v = merge_speedup(serde_json::json!({"benchmark": "x"}), &measurement(4, 8));
        assert_eq!(v["benchmark"], "x");
        assert_eq!(v["effective_parallel_workers"], 4);
        let speedup = v["speedup"].as_f64().expect("numeric speedup");
        assert!((speedup - 100.0 / 30.0).abs() < 1e-12);
        assert!(v["speedup_reason"].is_null()); // absent key
    }

    #[test]
    fn single_core_host_yields_null_speedup_with_reason() {
        // Regression: a 4-worker pool on a 1-core host used to report
        // "speedup": ~1.0 as if the parallelisation had been measured.
        let v = merge_speedup(serde_json::json!({"benchmark": "x"}), &measurement(4, 1));
        assert!(v["speedup"].is_null());
        assert_eq!(v["effective_parallel_workers"], 1);
        let reason = v["speedup_reason"].as_str().expect("reason present");
        assert!(reason.contains("available_parallelism=1"));
    }

    #[test]
    fn degenerate_pool_config_is_also_null() {
        // A "parallel" variant configured with 1 worker is degenerate
        // regardless of the host.
        let v = merge_speedup(serde_json::json!({}), &measurement(1, 16));
        assert!(v["speedup"].is_null());
    }

    #[test]
    fn effective_workers_cap_at_cores() {
        assert_eq!(measurement(8, 2).effective_parallel_workers(), 2);
        assert_eq!(measurement(2, 8).effective_parallel_workers(), 2);
        assert!(!measurement(2, 8).is_degenerate());
    }
}

//! Regenerate Figure 5: iterative cleaning score vs search iterations.
//!
//! Usage: `cargo run --release -p datalens-bench --bin fig5 [-- --task regression|classification] [--seed N]`

use datalens_bench::fig5;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let task = arg_value(&args, "--task");
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let iterations = [5usize, 10, 15, 20];
    let datasets: Vec<String> = if let Some(d) = arg_value(&args, "--dataset") {
        vec![d]
    } else {
        match task.as_deref() {
            Some("regression") => vec!["nasa".into()],
            Some("classification") => vec!["beers".into()],
            None => vec!["nasa".into(), "beers".into()],
            Some(other) => {
                eprintln!("unknown task {other:?}; expected regression or classification");
                std::process::exit(2);
            }
        }
    };
    for d in &datasets {
        let result = fig5::run(d, &iterations, seed);
        println!("{}", fig5::render(&result));
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

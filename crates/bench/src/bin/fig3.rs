//! Regenerate Figure 3: RAHA labeling evaluation.
//!
//! Usage: `cargo run --release -p datalens-bench --bin fig3 [-- --dataset nasa|beers] [--seeds N]`

use datalens_bench::fig3;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = arg_value(&args, "--dataset");
    let seeds: u64 = arg_value(&args, "--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let budgets = [5usize, 10, 15, 20];
    let known: Vec<String> = datalens_datasets::catalog()
        .iter()
        .map(|d| d.name.to_string())
        .collect();
    let datasets: Vec<String> = match dataset {
        Some(d) if known.contains(&d) => vec![d],
        Some(other) => {
            eprintln!("unknown dataset {other:?}; expected one of {known:?}");
            std::process::exit(2);
        }
        // The paper's Figure 3 covers NASA and Beers.
        None => vec!["nasa".into(), "beers".into()],
    };
    for d in &datasets {
        let points = fig3::run(d, &budgets, seeds);
        println!("{}", fig3::render(d, &points));
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

//! Regenerate Figure 4: distribution of detections across attributes.
//!
//! Usage: `cargo run --release -p datalens-bench --bin fig4 [-- --dataset nasa] [--seed N]`

use datalens_bench::fig4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = arg_value(&args, "--dataset").unwrap_or_else(|| "nasa".to_string());
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let result = fig4::run(&dataset, seed);
    println!("{}", fig4::render(&dataset, &result));
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

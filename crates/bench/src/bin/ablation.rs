//! Run the ablation studies (Min-K sweep, sampler comparison, noisy-user
//! RAHA).
//!
//! Usage: `cargo run --release -p datalens-bench --bin ablation [-- --dataset nasa] [--seed N]`

use datalens_bench::ablation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = arg_value(&args, "--dataset").unwrap_or_else(|| "nasa".to_string());
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    println!("{}", ablation::render(&dataset, seed));
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

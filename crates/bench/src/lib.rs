//! # datalens-bench
//!
//! The evaluation harness: regenerates every figure of the paper's
//! evaluation (the paper is a demo paper; its quantitative artifacts are
//! Figures 3–5) plus the ablations DESIGN.md calls out.
//!
//! | binary | artifact |
//! |--------|----------|
//! | `fig3` | Figure 3a/3b — RAHA labeling: reviewed tuples & F1 vs budget |
//! | `fig4` | Figure 4 — detections per attribute by tool |
//! | `fig5` | Figure 5a/5b — iterative cleaning score vs iterations |
//! | `ablation` | Min-K sweep, TPE vs random vs grid, noisy-user RAHA |
//!
//! Criterion performance benches for the substrates live in `benches/`.
//! [`perf`] holds their shared speedup bookkeeping (including the
//! `"speedup": null` contract for hosts where the pool degenerates).

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod perf;

//! Submit-to-done latency of the job service: N independent sessions
//! each running the same detect+repair job, executed by a 1-worker pool
//! (sequential baseline) vs. a 4-worker pool. Besides the usual bench
//! printout, emits the timings as `BENCH_jobs.json` at the repo root.
//!
//! The pool speedup is bounded by the host's core count (recorded as
//! `available_parallelism` in the JSON): on a single-core machine the
//! two pool sizes measure the same, which is the expected reading.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use datalens::jobs::{JobService, JobServiceConfig, JobSpec, JobState};

const SEED: u64 = 7;
const SAMPLES: usize = 5;
const SESSIONS: usize = 8;
const DETECT_TOOLS: [&str; 3] = ["sd", "iqr", "mv_detector"];
const REPAIR_TOOL: &str = "ml_imputer";

/// A dirty dataset distinct per session: missing cells plus an outlier.
fn dataset_csv(i: usize) -> String {
    let mut csv = String::from("id,score,grade\n");
    for r in 0..4_000 {
        let score = (r * 7 + i * 13) % 50 + 10;
        if r % 9 == 3 {
            csv.push_str(&format!("{r},,{}\n", score % 5));
        } else if r % 83 == 17 {
            csv.push_str(&format!("{r},{},{}\n", 99_000 + i, score % 5));
        } else {
            csv.push_str(&format!("{r},{score},{}\n", score % 5));
        }
    }
    csv
}

/// Wall-clock milliseconds from first submit to last job done, driving
/// [`SESSIONS`] sessions through a pool of `workers`.
fn submit_to_done_ms(workers: usize) -> f64 {
    let service = JobService::new(JobServiceConfig {
        workers,
        queue_depth: SESSIONS * 2,
        seed: SEED,
        ..JobServiceConfig::default()
    })
    .expect("job service");
    let sessions: Vec<u64> = (0..SESSIONS)
        .map(|i| {
            service
                .create_session_csv(&format!("bench{i}.csv"), &dataset_csv(i))
                .expect("session")
        })
        .collect();

    let start = Instant::now();
    let jobs: Vec<u64> = sessions
        .iter()
        .map(|&sid| {
            service
                .submit(sid, JobSpec::clean(&DETECT_TOOLS, REPAIR_TOOL))
                .expect("submit")
        })
        .collect();
    for jid in jobs {
        let status = service.wait(jid, None).expect("wait");
        assert_eq!(status.state, JobState::Done, "err: {:?}", status.error);
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn median_ms(workers: usize) -> f64 {
    let mut samples: Vec<f64> = (0..SAMPLES).map(|_| submit_to_done_ms(workers)).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_jobs(c: &mut Criterion) {
    let seq_ms = median_ms(1);
    let par_ms = median_ms(4);
    let speedup = seq_ms / par_ms;
    println!(
        "jobs submit-to-done, {SESSIONS} sessions × clean[{}+{REPAIR_TOOL}]: \
         1 worker {seq_ms:.2} ms, 4 workers {par_ms:.2} ms → {speedup:.2}×",
        DETECT_TOOLS.join("+"),
    );

    let json = serde_json::json!({
        "benchmark": "jobs_submit_to_done",
        "sessions": SESSIONS,
        "spec": format!("detect[{}]+repair[{REPAIR_TOOL}]", DETECT_TOOLS.join("+")),
        "samples": SAMPLES,
        "available_parallelism": std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        "sequential_workers": 1,
        "parallel_workers": 4,
        "sequential_ms": seq_ms,
        "parallel_ms": par_ms,
        "speedup": speedup,
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_jobs.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json).expect("render json"),
    )
    .expect("write BENCH_jobs.json");
    println!("wrote {out}");

    // Also register both pool sizes with the harness for its report.
    let mut group = c.benchmark_group("jobs");
    group.sample_size(SAMPLES);
    group.bench_function("submit_to_done_1_worker", |b| {
        b.iter(|| submit_to_done_ms(1))
    });
    group.bench_function("submit_to_done_4_workers", |b| {
        b.iter(|| submit_to_done_ms(4))
    });
    group.finish();
}

criterion_group!(benches, bench_jobs);
criterion_main!(benches);

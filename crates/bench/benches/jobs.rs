//! Submit-to-done latency of the job service: N independent sessions
//! each running the same detect+repair job, executed by a 1-worker pool
//! (sequential baseline) vs. a 4-worker pool — plus the REST serving
//! overhead of that submit/poll loop over a cold connection per request
//! vs. one HTTP/1.1 keep-alive connection. Besides the usual bench
//! printout, emits the timings as `BENCH_jobs.json` at the repo root.
//!
//! The pool speedup is bounded by the host's core count: on a
//! single-core machine the two pool sizes measure the same, and the
//! JSON records `"speedup": null` with a reason instead of a ~1.0
//! ratio (see `datalens_bench::perf`).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use datalens::jobs::rest::job_service_router;
use datalens::jobs::{JobService, JobServiceConfig, JobSpec, JobState};
use datalens_bench::perf::{merge_speedup, SpeedupMeasurement};
use datalens_rest::{Client, Server, ServerConfig};

const SEED: u64 = 7;
const SAMPLES: usize = 5;
const SESSIONS: usize = 8;
const PARALLEL_WORKERS: usize = 4;
const DETECT_TOOLS: [&str; 3] = ["sd", "iqr", "mv_detector"];
const REPAIR_TOOL: &str = "ml_imputer";
/// Requests per REST serving sample: one submit plus a poll loop.
const REST_JOBS: usize = 12;

/// A dirty dataset distinct per session: missing cells plus an outlier.
fn dataset_csv(i: usize) -> String {
    let mut csv = String::from("id,score,grade\n");
    for r in 0..4_000 {
        let score = (r * 7 + i * 13) % 50 + 10;
        if r % 9 == 3 {
            csv.push_str(&format!("{r},,{}\n", score % 5));
        } else if r % 83 == 17 {
            csv.push_str(&format!("{r},{},{}\n", 99_000 + i, score % 5));
        } else {
            csv.push_str(&format!("{r},{score},{}\n", score % 5));
        }
    }
    csv
}

/// Wall-clock milliseconds from first submit to last job done, driving
/// [`SESSIONS`] sessions through a pool of `workers`.
fn submit_to_done_ms(workers: usize) -> f64 {
    let service = JobService::new(JobServiceConfig {
        workers,
        queue_depth: SESSIONS * 2,
        seed: SEED,
        ..JobServiceConfig::default()
    })
    .expect("job service");
    let sessions: Vec<u64> = (0..SESSIONS)
        .map(|i| {
            service
                .create_session_csv(&format!("bench{i}.csv"), &dataset_csv(i))
                .expect("session")
        })
        .collect();

    let start = Instant::now();
    let jobs: Vec<u64> = sessions
        .iter()
        .map(|&sid| {
            service
                .submit(sid, JobSpec::clean(&DETECT_TOOLS, REPAIR_TOOL))
                .expect("submit")
        })
        .collect();
    for jid in jobs {
        let status = service.wait(jid, None).expect("wait");
        assert_eq!(status.state, JobState::Done, "err: {:?}", status.error);
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn median_ms(workers: usize) -> f64 {
    median((0..SAMPLES).map(|_| submit_to_done_ms(workers)).collect())
}

/// One REST serving sample: submit [`REST_JOBS`] cheap jobs and poll
/// each to completion, issuing every request either over a fresh TCP
/// connection (`keep_alive = false`, the dashboard's worst case) or
/// over one persistent keep-alive connection.
fn rest_submit_poll_ms(client: &Client, session: u64, keep_alive: bool) -> f64 {
    let submit_path = format!("/sessions/{session}/jobs");
    let spec = serde_json::to_vec(&JobSpec::new(vec![datalens::jobs::JobStep::Sleep {
        ms: 1,
    }]))
    .expect("spec json");
    let mut conn = keep_alive.then(|| client.connect().expect("keep-alive connection"));
    let mut request = |method_post: bool, path: &str| -> serde_json::Value {
        let resp = match (&mut conn, method_post) {
            (Some(c), true) => c.post(path, spec.clone()),
            (Some(c), false) => c.get(path),
            (None, true) => client.post(path, spec.clone()),
            (None, false) => client.get(path),
        }
        .expect("rest request");
        assert!(resp.status < 300, "status {}", resp.status);
        resp.json_body().expect("json body")
    };

    let start = Instant::now();
    for _ in 0..REST_JOBS {
        let submitted = request(true, &submit_path);
        let job_id = submitted["jobId"].as_u64().expect("job id");
        let status_path = format!("/jobs/{job_id}");
        loop {
            let status = request(false, &status_path);
            let state = status["state"].as_str().unwrap_or_default().to_string();
            match state.as_str() {
                "Done" => break,
                "Failed" | "Cancelled" => panic!("job {job_id} ended {state}"),
                _ => std::thread::sleep(std::time::Duration::from_micros(200)),
            }
        }
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// Median cold-connection and keep-alive timings for the submit/poll
/// loop against one live server.
fn rest_latency_ms() -> (f64, f64) {
    let service = Arc::new(
        JobService::new(JobServiceConfig {
            workers: 2,
            queue_depth: REST_JOBS * 2,
            seed: SEED,
            ..JobServiceConfig::default()
        })
        .expect("job service"),
    );
    let session = service
        .create_session_csv("rest.csv", "a,b\n1,x\n2,y\n")
        .expect("session");
    let server = Server::start_with(
        job_service_router(Arc::clone(&service)),
        ServerConfig::default(),
    )
    .expect("server");
    let client = Client::new(server.addr());
    let cold = median(
        (0..SAMPLES)
            .map(|_| rest_submit_poll_ms(&client, session, false))
            .collect(),
    );
    let keep_alive = median(
        (0..SAMPLES)
            .map(|_| rest_submit_poll_ms(&client, session, true))
            .collect(),
    );
    (cold, keep_alive)
}

fn bench_jobs(c: &mut Criterion) {
    let seq_ms = median_ms(1);
    let par_ms = median_ms(PARALLEL_WORKERS);
    let measurement = SpeedupMeasurement {
        sequential_ms: seq_ms,
        parallel_ms: par_ms,
        sequential_workers: 1,
        parallel_workers: PARALLEL_WORKERS,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    println!(
        "jobs submit-to-done, {SESSIONS} sessions × clean[{}+{REPAIR_TOOL}]: \
         1 worker {seq_ms:.2} ms, {PARALLEL_WORKERS} workers {par_ms:.2} ms ({} effective){}",
        DETECT_TOOLS.join("+"),
        measurement.effective_parallel_workers(),
        if measurement.is_degenerate() {
            " → speedup n/a (degenerate pool)".to_string()
        } else {
            format!(" → {:.2}×", seq_ms / par_ms)
        },
    );

    let (cold_ms, keep_alive_ms) = rest_latency_ms();
    println!(
        "rest submit+poll, {REST_JOBS} jobs: cold connections {cold_ms:.2} ms, \
         keep-alive {keep_alive_ms:.2} ms → {:.2}×",
        cold_ms / keep_alive_ms,
    );

    let json = merge_speedup(
        serde_json::json!({
            "benchmark": "jobs_submit_to_done",
            "sessions": SESSIONS,
            "spec": format!("detect[{}]+repair[{REPAIR_TOOL}]", DETECT_TOOLS.join("+")),
            "samples": SAMPLES,
            "rest_jobs": REST_JOBS,
            "rest_cold_connection_ms": cold_ms,
            "rest_keep_alive_ms": keep_alive_ms,
            "rest_keep_alive_speedup": cold_ms / keep_alive_ms,
        }),
        &measurement,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_jobs.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json).expect("render json"),
    )
    .expect("write BENCH_jobs.json");
    println!("wrote {out}");

    // Also register both pool sizes with the harness for its report.
    let mut group = c.benchmark_group("jobs");
    group.sample_size(SAMPLES);
    group.bench_function("submit_to_done_1_worker", |b| {
        b.iter(|| submit_to_done_ms(1))
    });
    group.bench_function("submit_to_done_4_workers", |b| {
        b.iter(|| submit_to_done_ms(PARALLEL_WORKERS))
    });
    group.finish();
}

criterion_group!(benches, bench_jobs);
criterion_main!(benches);

//! Criterion wrappers around the paper-figure harnesses, so
//! `cargo bench --workspace` exercises every evaluation artifact:
//! Figure 3 (RAHA labeling), Figure 4 (detection distribution), and
//! Figure 5 (iterative cleaning), at reduced sweep sizes — the full
//! sweeps live in the fig3/fig4/fig5 binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use datalens_bench::{fig3, fig4, fig5};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_raha_labeling");
    group.sample_size(10);
    group.bench_function("nasa_budget10", |b| {
        b.iter(|| black_box(fig3::run("nasa", &[10], 1)))
    });
    group.bench_function("beers_budget10", |b| {
        b.iter(|| black_box(fig3::run("beers", &[10], 1)))
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_distribution");
    group.sample_size(10);
    group.bench_function("nasa", |b| b.iter(|| black_box(fig4::run("nasa", 0))));
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_iterative_cleaning");
    group.sample_size(10);
    group.bench_function("nasa_5iters", |b| {
        b.iter(|| black_box(fig5::run("nasa", &[5], 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3, bench_fig4, bench_fig5);
criterion_main!(benches);

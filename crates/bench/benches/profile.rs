//! Sequential vs. parallel profiling, plus the warm-cache incremental
//! path (re-profile after a single-column repair). Besides the usual
//! bench printout, emits the timings as `BENCH_profile.json` at the
//! repo root.
//!
//! The warm-cache samples each mutate one cell with a fresh value
//! first, so every sample genuinely recomputes exactly one column (and
//! its correlation pairs) rather than replaying a fully-cached build.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use datalens_bench::perf::{merge_speedup, SpeedupMeasurement};
use datalens_profile::{BuildOptions, ProfileCache, ProfileConfig, ProfileMode, ProfileReport};
use datalens_table::{CellRef, Column, Table, Value};

const SAMPLES: usize = 7;
const ROWS: usize = 6_000;
const NUM_COLS: usize = 24;
const STR_COLS: usize = 4;

/// Deterministic synthetic table: wide enough that the per-column and
/// per-pair fan-out has real work (24 numeric columns → 552 pearson +
/// spearman cells), no RNG so every run profiles identical content.
fn synthetic_table() -> Table {
    let mut columns = Vec::new();
    for c in 0..NUM_COLS {
        let vals: Vec<Option<f64>> = (0..ROWS)
            .map(|r| {
                if (r + c) % 97 == 0 {
                    None
                } else {
                    Some(((r * (c + 3)) as f64 * 0.137).sin() * 100.0 + c as f64)
                }
            })
            .collect();
        columns.push(Column::from_f64(format!("n{c}"), vals));
    }
    let cats = ["alpha", "beta", "gamma", "delta", "epsilon"];
    for c in 0..STR_COLS {
        let vals: Vec<Option<&str>> = (0..ROWS)
            .map(|r| {
                if (r + c) % 53 == 0 {
                    None
                } else {
                    Some(cats[(r * (c + 2)) % cats.len()])
                }
            })
            .collect();
        columns.push(Column::from_str_vals(format!("s{c}"), vals));
    }
    Table::new("synthetic", columns).expect("columns are same length")
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Median wall-clock milliseconds of a cold (uncached) build.
fn median_build_ms(table: &Table, config: &ProfileConfig, threads: usize) -> f64 {
    median(
        (0..SAMPLES)
            .map(|_| {
                let opts = BuildOptions {
                    threads,
                    cache: None,
                };
                let start = Instant::now();
                std::hint::black_box(ProfileReport::build_with(table, config, &opts));
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    )
}

fn bench_profile(c: &mut Criterion) {
    let mut table = synthetic_table();
    let config = ProfileConfig::default();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let seq_ms = median_build_ms(&table, &config, 1);
    let par_ms = median_build_ms(&table, &config, threads);

    // Approx (sketch) series: compared 1-worker vs 1-worker against the
    // exact build so the ratio is pool-independent, unlike the parallel
    // speedup which `merge_speedup` may mark degenerate on small hosts.
    let approx_config = ProfileConfig {
        mode: ProfileMode::Approx,
        ..ProfileConfig::default()
    };
    let approx_ms = median_build_ms(&table, &approx_config, 1);
    let approx_sketch_bytes: u64 = ProfileReport::build(&table, &approx_config)
        .columns
        .iter()
        .filter_map(|c| c.approx.as_ref())
        .map(|a| a.sketch_bytes)
        .sum();

    // Warm-cache incremental path: prime the cache, then per sample
    // repair one cell (fresh value each time, cycling through columns)
    // and re-profile. Each sample recomputes exactly one column.
    let cache = ProfileCache::new();
    let opts = BuildOptions {
        threads,
        cache: Some(&cache),
    };
    std::hint::black_box(ProfileReport::build_with(&table, &config, &opts));
    let mut recomputed_columns = Vec::new();
    let warm_ms = median(
        (0..SAMPLES)
            .map(|i| {
                table
                    .set(
                        CellRef::new(i % ROWS, i % NUM_COLS),
                        Value::Float(1.0e6 + i as f64),
                    )
                    .expect("cell in range");
                let before = cache.stats();
                let start = Instant::now();
                std::hint::black_box(ProfileReport::build_with(&table, &config, &opts));
                let ms = start.elapsed().as_secs_f64() * 1e3;
                recomputed_columns.push(cache.stats().column_misses - before.column_misses);
                ms
            })
            .collect(),
    );

    let measurement = SpeedupMeasurement {
        sequential_ms: seq_ms,
        parallel_ms: par_ms,
        sequential_workers: 1,
        parallel_workers: threads,
        available_parallelism: threads,
    };
    println!(
        "profile {}×{}: sequential {seq_ms:.2} ms, parallel {par_ms:.2} ms ({threads} threads){}, \
         warm-cache single-column repair {warm_ms:.2} ms (recomputed {:?} columns/sample), \
         approx sequential {approx_ms:.2} ms ({approx_sketch_bytes} sketch bytes)",
        table.n_rows(),
        table.n_cols(),
        if measurement.is_degenerate() {
            " → speedup n/a (degenerate pool)".to_string()
        } else {
            format!(" → {:.2}×", seq_ms / par_ms)
        },
        recomputed_columns,
    );

    let json = merge_speedup(
        serde_json::json!({
            "benchmark": "profile_parallel_and_memoised",
            "dataset": "synthetic",
            "rows": table.n_rows(),
            "cols": table.n_cols(),
            "samples": SAMPLES,
            "warm_cache_ms": warm_ms,
            "warm_cache_speedup_vs_sequential": seq_ms / warm_ms,
            "warm_cache_columns_recomputed_per_sample": recomputed_columns,
            "sequential_rows_per_sec": table.n_rows() as f64 / (seq_ms / 1e3),
            "parallel_rows_per_sec": table.n_rows() as f64 / (par_ms / 1e3),
            "approx_ms": approx_ms,
            "approx_rows_per_sec": table.n_rows() as f64 / (approx_ms / 1e3),
            "approx_speedup_vs_exact_sequential": seq_ms / approx_ms,
            "approx_sketch_bytes_resident": approx_sketch_bytes,
        }),
        &measurement,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_profile.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json).expect("render json"),
    )
    .expect("write BENCH_profile.json");
    println!("wrote {out}");

    // Also register the variants with the harness for its report.
    let mut group = c.benchmark_group("profile");
    group.sample_size(SAMPLES);
    group.bench_function("build_sequential", |b| {
        b.iter(|| {
            ProfileReport::build_with(
                &table,
                &config,
                &BuildOptions {
                    threads: 1,
                    cache: None,
                },
            )
        })
    });
    group.bench_function("build_parallel", |b| {
        b.iter(|| {
            ProfileReport::build_with(
                &table,
                &config,
                &BuildOptions {
                    threads,
                    cache: None,
                },
            )
        })
    });
    group.bench_function("build_warm_cache", |b| {
        b.iter(|| ProfileReport::build_with(&table, &config, &opts))
    });
    group.bench_function("build_approx_sequential", |b| {
        b.iter(|| {
            ProfileReport::build_with(
                &table,
                &approx_config,
                &BuildOptions {
                    threads: 1,
                    cache: None,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_profile);
criterion_main!(benches);

//! Criterion benchmarks: per-detector throughput on the standard dirty
//! NASA and Beers datasets, plus repair throughput. Characterises the
//! cost side of the (detector, repairer) search space that iterative
//! cleaning explores — the runtime trade-off §4 discusses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use datalens_datasets::registry;
use datalens_detect::{detector_by_name, DetectionContext};
use datalens_repair::{repairer_by_name, RepairContext};

fn bench_detectors(c: &mut Criterion) {
    let nasa = registry::dirty("nasa", 0).unwrap();
    let beers = registry::dirty("beers", 0).unwrap();
    let ctx = DetectionContext::default();
    let mut group = c.benchmark_group("detect");
    group.sample_size(10);
    // RAHA is excluded here: it is interactive (benched via fig3).
    for tool in [
        "sd",
        "iqr",
        "mv_detector",
        "fahes",
        "katara",
        "holoclean",
        "min_k",
        "isolation_forest",
    ] {
        group.bench_with_input(BenchmarkId::new(tool, "nasa"), &nasa.dirty, |b, t| {
            let det = detector_by_name(tool).unwrap();
            b.iter(|| black_box(det.detect(t, &ctx)))
        });
        group.bench_with_input(BenchmarkId::new(tool, "beers"), &beers.dirty, |b, t| {
            let det = detector_by_name(tool).unwrap();
            b.iter(|| black_box(det.detect(t, &ctx)))
        });
    }
    group.finish();
}

fn bench_repairers(c: &mut Criterion) {
    let nasa = registry::dirty("nasa", 0).unwrap();
    let errors = nasa.error_cells();
    let ctx = RepairContext::default();
    let mut group = c.benchmark_group("repair");
    group.sample_size(10);
    for tool in ["standard_imputer", "ml_imputer", "holoclean_repairer"] {
        group.bench_with_input(BenchmarkId::new(tool, "nasa"), &nasa.dirty, |b, t| {
            let rep = repairer_by_name(tool).unwrap();
            b.iter(|| black_box(rep.repair(t, &errors, &ctx)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors, bench_repairers);
criterion_main!(benches);

//! Load-shed latency of the health gate: with the job queue saturated
//! and the gate holding, how fast does `POST /sessions/{id}/jobs`
//! answer `429`? The shed happens on a lock-free verdict read before
//! the queue mutex, so time-to-429 should sit in the sub-millisecond
//! range even at p99 — that tail is the whole point of admission
//! control (a shed that queues behind the lock is not a shed).
//!
//! Also times `GET /health` probes while holding (the load balancer's
//! view). Emits `BENCH_health.json` at the repo root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use datalens::jobs::rest::job_service_router;
use datalens::jobs::{JobService, JobServiceConfig, JobSpec, JobStep};
use datalens_rest::{Client, Server, ServerConfig};

const QUEUE_DEPTH: usize = 4;
const SHED_SAMPLES: usize = 512;
const PROBE_SAMPLES: usize = 256;

/// A service pinned into `hold`: one long-running job serialises its
/// session while fillers pack the bounded queue to its capacity.
struct HeldService {
    service: Arc<JobService>,
    server: Server,
    session: u64,
    jobs: Vec<u64>,
}

fn start_held_service() -> HeldService {
    let service = Arc::new(
        JobService::new(JobServiceConfig {
            workers: 2,
            queue_depth: QUEUE_DEPTH,
            ..JobServiceConfig::default()
        })
        .expect("job service"),
    );
    let server = Server::start_with(
        job_service_router(Arc::clone(&service)),
        ServerConfig {
            health_gate: Some(service.health_gate()),
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(30));
    let resp = client
        .post(
            "/sessions",
            br#"{"fileName":"bench.csv","csv":"a,b\n1,x\n2,y\n"}"#.to_vec(),
        )
        .expect("create session");
    assert_eq!(resp.status, 201);
    let body: serde_json::Value = resp.json_body().expect("session json");
    let session = body["session"]["session_id"].as_u64().expect("session id");

    // Pin, wait for the claim, then fill until the first rejection.
    let pin =
        serde_json::to_vec(&JobSpec::new(vec![JobStep::Sleep { ms: 600_000 }])).expect("pin spec");
    let resp = client
        .post(&format!("/sessions/{session}/jobs"), pin)
        .expect("pin submit");
    assert_eq!(resp.status, 202);
    let body: serde_json::Value = resp.json_body().expect("submit json");
    let pinner = body["jobId"].as_u64().expect("job id");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status: serde_json::Value = client
            .get(&format!("/jobs/{pinner}"))
            .expect("status")
            .json_body()
            .expect("status json");
        if status["state"] == "Running" {
            break;
        }
        assert!(Instant::now() < deadline, "pinner never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut jobs = vec![pinner];
    let filler =
        serde_json::to_vec(&JobSpec::new(vec![JobStep::Sleep { ms: 1_000 }])).expect("filler");
    loop {
        let resp = client
            .post(&format!("/sessions/{session}/jobs"), filler.clone())
            .expect("filler submit");
        match resp.status {
            202 => {
                let body: serde_json::Value = resp.json_body().expect("submit json");
                jobs.push(body["jobId"].as_u64().expect("job id"));
            }
            429 => break,
            other => panic!("unexpected submit status {other}"),
        }
        assert!(jobs.len() <= QUEUE_DEPTH + 1, "queue never rejected");
    }
    HeldService {
        service,
        server,
        session,
        jobs,
    }
}

impl HeldService {
    fn drain(mut self) {
        let client = Client::new(self.server.addr()).with_timeout(Duration::from_secs(30));
        for id in &self.jobs {
            let _ = client.delete(&format!("/jobs/{id}"));
        }
        self.server.shutdown();
        drop(self.service);
    }
}

fn percentile_ms(sorted: &[Duration], p: usize) -> f64 {
    sorted[(sorted.len() - 1) * p / 100].as_secs_f64() * 1e3
}

fn bench_health(c: &mut Criterion) {
    let held = start_held_service();
    let client = Client::new(held.server.addr()).with_timeout(Duration::from_secs(30));
    let submit_path = format!("/sessions/{}/jobs", held.session);
    let spec = serde_json::to_vec(&JobSpec::new(vec![JobStep::Sleep { ms: 1_000 }])).expect("spec");

    // Time-to-429 over one warm keep-alive connection.
    let mut conn = client.connect().expect("warm connection");
    let mut shed: Vec<Duration> = Vec::with_capacity(SHED_SAMPLES);
    for _ in 0..SHED_SAMPLES {
        let started = Instant::now();
        let resp = conn.post(&submit_path, spec.clone()).expect("shed submit");
        shed.push(started.elapsed());
        assert_eq!(resp.status, 429, "gate must shed while holding");
    }
    shed.sort();
    let shed_p50 = percentile_ms(&shed, 50);
    let shed_p99 = percentile_ms(&shed, 99);

    // /health probe latency while holding (503 + evidence body).
    let mut probes: Vec<Duration> = Vec::with_capacity(PROBE_SAMPLES);
    for _ in 0..PROBE_SAMPLES {
        let started = Instant::now();
        let resp = conn.get("/health").expect("health probe");
        probes.push(started.elapsed());
        assert_eq!(resp.status, 503, "gate must report hold");
    }
    probes.sort();
    let probe_p50 = percentile_ms(&probes, 50);
    let probe_p99 = percentile_ms(&probes, 99);
    drop(conn);

    println!(
        "health shed: time-to-429 p50 {shed_p50:.3} ms, p99 {shed_p99:.3} ms \
         ({SHED_SAMPLES} samples); /health probe p50 {probe_p50:.3} ms, \
         p99 {probe_p99:.3} ms ({PROBE_SAMPLES} samples)"
    );

    let json = serde_json::json!({
        "benchmark": "health_load_shed",
        "queue_depth": QUEUE_DEPTH,
        "shed_samples": SHED_SAMPLES,
        "shed_time_to_429_p50_ms": shed_p50,
        "shed_time_to_429_p99_ms": shed_p99,
        "probe_samples": PROBE_SAMPLES,
        "health_probe_p50_ms": probe_p50,
        "health_probe_p99_ms": probe_p99,
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_health.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json).expect("render json"),
    )
    .expect("write BENCH_health.json");
    println!("wrote {out}");

    // Register the shed path with the harness report too.
    let mut group = c.benchmark_group("health");
    group.sample_size(10);
    group.bench_function("shed_time_to_429", |b| {
        let conn = std::cell::RefCell::new(client.connect().expect("warm connection"));
        b.iter(|| {
            let resp = conn
                .borrow_mut()
                .post(&submit_path, spec.clone())
                .expect("shed submit");
            assert_eq!(resp.status, 429);
        })
    });
    group.finish();

    held.drain();
}

criterion_group!(benches, bench_health);
criterion_main!(benches);

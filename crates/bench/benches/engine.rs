//! Sequential vs. parallel multi-tool detection through the pipeline
//! engine, on the largest bundled dataset. Besides the usual bench
//! printout, emits the timings as `BENCH_engine.json` at the repo root.
//!
//! On hosts where the thread pool degenerates (one core, or a 1-thread
//! configuration) the JSON records `"speedup": null` with a reason
//! instead of a meaningless ~1.0 ratio (see `datalens_bench::perf`).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use datalens::engine::{Engine, EngineConfig};
use datalens_bench::perf::{merge_speedup, SpeedupMeasurement};
use datalens_datasets::registry;
use datalens_detect::{detector_by_name, DetectionContext, Detector};
use datalens_table::Table;

const SEED: u64 = 7;
const SAMPLES: usize = 7;
const TOOLS: [&str; 7] = [
    "sd",
    "iqr",
    "mv_detector",
    "fahes",
    "nadeef",
    "katara",
    "isolation_forest",
];

/// The bundled dataset with the most cells.
fn largest_dataset() -> (String, Table) {
    registry::catalog()
        .iter()
        .map(|d| {
            let dd = registry::dirty(d.name, SEED).expect("bundled dataset");
            (d.name.to_string(), dd.dirty)
        })
        .max_by_key(|(_, t)| t.n_rows() * t.n_cols())
        .expect("catalog is non-empty")
}

fn detectors() -> Vec<Box<dyn Detector>> {
    TOOLS
        .iter()
        .map(|n| detector_by_name(n).expect("known detector"))
        .collect()
}

/// Median wall-clock milliseconds of `detect_all` over [`SAMPLES`] runs.
fn median_detect_ms(engine: &Engine, table: &Table, ctx: &DetectionContext) -> f64 {
    let dets = detectors();
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let (detections, _) = engine.detect_all(table, ctx, &dets);
            std::hint::black_box(detections);
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_engine(c: &mut Criterion) {
    let (name, table) = largest_dataset();
    let ctx = DetectionContext {
        seed: SEED,
        ..DetectionContext::default()
    };

    let sequential = Engine::new(EngineConfig {
        threads: 1,
        seed: SEED,
    });
    let parallel = Engine::new(EngineConfig {
        threads: 0,
        seed: SEED,
    });

    let seq_ms = median_detect_ms(&sequential, &table, &ctx);
    let par_ms = median_detect_ms(&parallel, &table, &ctx);
    let measurement = SpeedupMeasurement {
        sequential_ms: seq_ms,
        parallel_ms: par_ms,
        sequential_workers: 1,
        parallel_workers: parallel.effective_threads(),
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    println!(
        "engine detect {}×{} ({name}, {} tools): sequential {seq_ms:.2} ms, \
         parallel {par_ms:.2} ms ({} threads){}",
        table.n_rows(),
        table.n_cols(),
        TOOLS.len(),
        parallel.effective_threads(),
        if measurement.is_degenerate() {
            " → speedup n/a (degenerate pool)".to_string()
        } else {
            format!(" → {:.2}×", seq_ms / par_ms)
        },
    );

    let json = merge_speedup(
        serde_json::json!({
            "benchmark": "engine_multi_tool_detection",
            "dataset": name,
            "rows": table.n_rows(),
            "cols": table.n_cols(),
            "tools": TOOLS.to_vec(),
            "samples": SAMPLES,
        }),
        &measurement,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&json).expect("render json"),
    )
    .expect("write BENCH_engine.json");
    println!("wrote {out}");

    // Also register the two variants with the harness for its report.
    let mut group = c.benchmark_group("engine");
    group.sample_size(SAMPLES);
    let dets = detectors();
    group.bench_function("detect_sequential", |b| {
        b.iter(|| sequential.detect_all(&table, &ctx, &dets))
    });
    group.bench_function("detect_parallel", |b| {
        b.iter(|| parallel.detect_all(&table, &ctx, &dets))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);

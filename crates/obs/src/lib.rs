//! # datalens-obs
//!
//! Continuous operational measurement of the serving stack: a lock-cheap
//! registry of [`Counter`]s, [`Gauge`]s, and fixed-bucket latency
//! [`Histogram`]s, rendered as JSON or Prometheus text exposition format
//! for the `GET /metrics` endpoint.
//!
//! Design constraints, in order:
//!
//! 1. **Recording is on the hot path** — every HTTP request, every queue
//!    transition, every engine stage records here. Handles are `Arc`'d
//!    atomics; recording is a handful of relaxed atomic ops and never
//!    takes the registry lock.
//! 2. **Registration is rare** — metric lookup by name takes a read
//!    lock on first use; callers are expected to cache the returned
//!    handle (all in-repo instrumentation does).
//! 3. **Rendering is cold** — `GET /metrics` snapshots under the read
//!    lock with acquire loads (writes that `set` a gauge are release,
//!    so a rendered value is at least as fresh as the last completed
//!    record); a snapshot is *consistent enough* for monitoring, not a
//!    linearizable cut.
//!
//! Metric names follow the Prometheus convention `base{key="value",…}`:
//! the label set is folded into the registry key, so the registry itself
//! stays a flat ordered map ([`labeled`] builds such keys safely).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Bucket upper bounds (milliseconds) that cover everything from a
/// sub-millisecond route hit to a minute-long pipeline stage. The last
/// implicit bucket is `+Inf`.
pub const LATENCY_MS_BUCKETS: [f64; 14] = [
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 5_000.0, 60_000.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        // Pure counter: nothing is published through it, so the
        // increment stays relaxed (the hot-path contract above).
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

/// A gauge: a value that can go up and down (queue depth, active
/// connections).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Release);
    }

    pub fn add(&self, n: i64) {
        // Pure counter-style delta; stays relaxed like Counter::add.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Acquire)
    }
}

/// A fixed-bucket histogram in the Prometheus style: per-bucket counts
/// (non-cumulative internally), a total count, and a running sum.
///
/// Bounds are upper bucket edges, ascending; observations above the last
/// bound land in an implicit `+Inf` bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum, stored as `f64` bits for a CAS-loop atomic add.
    sum_bits: AtomicU64,
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (the `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries (last is `+Inf`).
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl Histogram {
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.is_sorted_by(|a, b| a < b),
            "histogram bounds must be strictly ascending"
        );
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, AtomicU64::default);
        Histogram {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// A histogram with the default latency buckets.
    pub fn latency_ms() -> Histogram {
        Histogram::new(&LATENCY_MS_BUCKETS)
    }

    /// Record one observation. NaN observations are dropped (they would
    /// poison the sum and match no bucket).
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // The running sum is a pure accumulator: nothing else is
        // published through it, and `GET /metrics` snapshots tolerate a
        // monitoring-grade (non-linearizable) read — so the whole
        // read-modify-write loop stays relaxed.
        // lint:allow(relaxed-cross-thread): pure accumulator, see above
        const ORD: Ordering = Ordering::Relaxed;
        let mut cur = self.sum_bits.load(ORD);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(cur, next, ORD, ORD) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Acquire))
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Acquire))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket holding the target rank — the usual
    /// Prometheus-style `histogram_quantile` estimate. Returns 0 when
    /// the histogram is empty. Observations in the overflow (`+Inf`)
    /// bucket are attributed to the largest finite bound, so the
    /// estimate is a lower bound there.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if (cumulative as f64) < rank {
                continue;
            }
            if n == 0 {
                continue;
            }
            let upper = match self.bounds.get(idx) {
                Some(&b) => b,
                // Overflow bucket: clamp to the largest finite bound.
                None => return self.bounds.last().copied().unwrap_or(0.0),
            };
            let lower = if idx == 0 { 0.0 } else { self.bounds[idx - 1] };
            let into = rank - (cumulative - n) as f64;
            return lower + (upper - lower) * (into / n as f64);
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The metric registry: an ordered map from full metric name (labels
/// folded in) to the metric. Shared by `Arc` across the server, job
/// service, and engine.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or register the counter `name`.
    ///
    /// If `name` is already registered as a different metric kind, a
    /// detached handle is returned (recorded values go nowhere) rather
    /// than corrupting the registered metric — a deliberate fail-soft
    /// for the monitoring path.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = self.get(name) {
            return c;
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::default()),
        }
    }

    /// Get or register the gauge `name` (same kind-mismatch contract as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = self.get(name) {
            return g;
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::default()),
        }
    }

    /// Get or register the histogram `name` with the given bucket
    /// bounds. An existing histogram keeps its original bounds.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.get(name) {
            return h;
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new(bounds)),
        }
    }

    /// A latency histogram with the default millisecond buckets.
    pub fn latency_histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, &LATENCY_MS_BUCKETS)
    }

    fn get(&self, name: &str) -> Option<Metric> {
        self.metrics.read().get(name).cloned()
    }

    /// Every registered metric name, in order.
    pub fn names(&self) -> Vec<String> {
        self.metrics.read().keys().cloned().collect()
    }

    /// Snapshot as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let metrics = self.metrics.read();
        let mut counters: Vec<(String, Value)> = Vec::new();
        let mut gauges: Vec<(String, Value)> = Vec::new();
        let mut histograms: Vec<(String, Value)> = Vec::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), Value::U64(c.get()))),
                Metric::Gauge(g) => gauges.push((name.clone(), Value::I64(g.get()))),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let buckets: Vec<Value> = s
                        .bounds
                        .iter()
                        .map(|b| Value::F64(*b))
                        .chain(std::iter::once(Value::Str("+Inf".into())))
                        .zip(&s.buckets)
                        .map(|(le, count)| serde_json::json!({"le": le, "count": *count}))
                        .collect();
                    histograms.push((
                        name.clone(),
                        serde_json::json!({
                            "count": s.count,
                            "sum": s.sum,
                            "mean": if s.count == 0 { 0.0 } else { s.sum / s.count as f64 },
                            "buckets": Value::Arr(buckets),
                        }),
                    ));
                }
            }
        }
        serde_json::json!({
            "counters": Value::Obj(counters),
            "gauges": Value::Obj(gauges),
            "histograms": Value::Obj(histograms),
        })
    }

    /// Snapshot in the Prometheus text exposition format (v0.0.4):
    /// `# TYPE` lines per metric family, cumulative `_bucket{le=…}`
    /// series plus `_sum`/`_count` for histograms.
    pub fn to_prometheus(&self) -> String {
        let metrics = self.metrics.read();
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for (name, metric) in metrics.iter() {
            let (base, labels) = split_labels(name);
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if typed.insert(base.to_string()) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let mut cumulative = 0u64;
                    for (bound, count) in s
                        .bounds
                        .iter()
                        .map(|b| format!("{b}"))
                        .chain(std::iter::once("+Inf".to_string()))
                        .zip(&s.buckets)
                    {
                        cumulative += count;
                        out.push_str(&format!(
                            "{base}_bucket{{{}le=\"{bound}\"}} {cumulative}\n",
                            join_labels(labels),
                        ));
                    }
                    out.push_str(&format!("{base}_sum{labels} {}\n", s.sum));
                    out.push_str(&format!("{base}_count{labels} {}\n", s.count));
                }
            }
        }
        out
    }

    /// Compact plain-text summary for the dashboard's metrics panel.
    pub fn render_text(&self) -> String {
        let metrics = self.metrics.read();
        let mut out = String::from("── Metrics ──\n");
        if metrics.is_empty() {
            out.push_str("  (no metrics recorded yet)\n");
            return out;
        }
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("  {name:<56} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("  {name:<56} {}\n", g.get())),
                Metric::Histogram(h) => out.push_str(&format!(
                    "  {name:<56} n={} mean={:.3} ms\n",
                    h.count(),
                    h.mean(),
                )),
            }
        }
        out
    }
}

/// Build a `base{k="v",…}` metric name. Label values are escaped so a
/// `"` or `\` in a route or tool name cannot break the exposition
/// format.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{base}{{{}}}", body.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Split `base{labels}` into `("base", "{labels}")`; the label part is
/// empty when the name has none.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// `"{a=\"b\"}"` → `a="b",` (for splicing an extra `le` label in).
fn join_labels(labels: &str) -> String {
    let inner = labels.trim_start_matches('{').trim_end_matches('}');
    if inner.is_empty() {
        String::new()
    } else {
        format!("{inner},")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(r.counter("requests_total").get(), 5);

        let g = r.gauge("queue_depth");
        g.set(7);
        g.sub(2);
        g.add(1);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 0.9, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1, 1]); // last is +Inf
        assert_eq!(s.count, 5);
        assert!((s.sum - 556.4).abs() < 1e-9);
        assert!((h.mean() - 556.4 / 5.0).abs() < 1e-9);
        // NaN observations are dropped, not binned.
        h.observe(f64::NAN);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0);
        h.observe(2.0);
        assert_eq!(h.snapshot().buckets, vec![1, 1, 0]);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::new(&[10.0, 20.0, 40.0]);
        assert_eq!(h.quantile(0.5), 0.0); // empty histogram
        for _ in 0..50 {
            h.observe(5.0); // bucket (0, 10]
        }
        for _ in 0..50 {
            h.observe(15.0); // bucket (10, 20]
        }
        // Median sits exactly at the first bucket's upper bound.
        assert!((h.quantile(0.5) - 10.0).abs() < 1e-9, "{}", h.quantile(0.5));
        // p99 interpolates inside the second bucket: rank 99 of 100.
        let p99 = h.quantile(0.99);
        assert!(p99 > 19.0 && p99 <= 20.0, "{p99}");
        // Out-of-range q clamps rather than panicking.
        assert!(h.quantile(2.0) <= 20.0);
        assert!(h.quantile(-1.0) >= 0.0);
    }

    #[test]
    fn quantile_overflow_bucket_clamps_to_last_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(100.0); // +Inf bucket
        assert_eq!(h.quantile(0.5), 2.0);
    }

    #[test]
    fn labeled_names_escape_quotes() {
        assert_eq!(labeled("m", &[]), "m");
        assert_eq!(
            labeled("m", &[("route", "/jobs/{id}"), ("method", "GET")]),
            "m{route=\"/jobs/{id}\",method=\"GET\"}"
        );
        assert_eq!(labeled("m", &[("k", "a\"b\\c")]), "m{k=\"a\\\"b\\\\c\"}");
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let r = Registry::new();
        r.counter("m").add(3);
        // Asking for the same name as a gauge must not clobber the
        // counter; the detached gauge just swallows writes.
        let g = r.gauge("m");
        g.set(99);
        assert_eq!(r.counter("m").get(), 3);
        assert_eq!(r.names(), vec!["m".to_string()]);
    }

    #[test]
    fn json_snapshot_shape() {
        let r = Registry::new();
        r.counter("hits_total").add(2);
        r.gauge("depth").set(1);
        r.histogram("lat_ms", &[1.0, 10.0]).observe(3.0);
        let v = r.to_json();
        assert_eq!(v["counters"]["hits_total"], 2);
        assert_eq!(v["gauges"]["depth"], 1);
        assert_eq!(v["histograms"]["lat_ms"]["count"], 1);
        assert_eq!(v["histograms"]["lat_ms"]["buckets"][1]["count"], 1);
        assert_eq!(v["histograms"]["lat_ms"]["buckets"][2]["le"], "+Inf");
    }

    #[test]
    fn prometheus_text_is_cumulative_with_labels() {
        let r = Registry::new();
        r.counter(&labeled("http_requests_total", &[("route", "/ping")]))
            .add(3);
        let h = r.histogram(
            &labeled("http_request_ms", &[("route", "/ping")]),
            &[1.0, 10.0],
        );
        h.observe(0.5);
        h.observe(5.0);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE http_requests_total counter"));
        assert!(text.contains("http_requests_total{route=\"/ping\"} 3"));
        assert!(text.contains("# TYPE http_request_ms histogram"));
        assert!(text.contains("http_request_ms_bucket{route=\"/ping\",le=\"1\"} 1"));
        assert!(text.contains("http_request_ms_bucket{route=\"/ping\",le=\"10\"} 2"));
        assert!(text.contains("http_request_ms_bucket{route=\"/ping\",le=\"+Inf\"} 2"));
        assert!(text.contains("http_request_ms_count{route=\"/ping\"} 2"));
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let r = Arc::new(Registry::new());
        let c = r.counter("n");
        let h = r.latency_histogram("ms");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let (c, h) = (Arc::clone(&c), Arc::clone(&h));
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        c.inc();
                        h.observe(i as f64 % 17.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8_000);
        assert_eq!(h.count(), 8_000);
    }

    #[test]
    fn render_text_lists_metrics() {
        let r = Registry::new();
        assert!(r.render_text().contains("no metrics"));
        r.counter("a_total").inc();
        r.latency_histogram("b_ms").observe(2.0);
        let text = r.render_text();
        assert!(text.contains("a_total"));
        assert!(text.contains("n=1"));
    }
}

//! HyFD-style hybrid FD discovery (Papenbrock & Naumann, 2016).
//!
//! The original HyFD alternates between a row-pair *sampling* phase that
//! cheaply collects violated FDs (the negative cover) and a focused
//! *validation* phase that checks the candidate FDs induced from that
//! cover, feeding each validation failure back as new negative evidence.
//! This module implements that loop:
//!
//! 1. sample row pairs → agree sets → negative cover;
//! 2. induce the positive cover (minimal candidate FDs consistent with all
//!    evidence) by iterative specialisation;
//! 3. validate candidates on the full relation; failures produce new agree
//!    sets and the loop continues until everything validates.
//!
//! The result provably equals exact TANE's output (up to the lhs-size cap),
//! which the crate's proptests pin down.

use std::collections::HashSet;

use rand::prelude::*;
use rand::rngs::StdRng;

use datalens_table::Table;

use crate::rule::{Fd, FdRule, RuleProvenance};

/// Options for [`hyfd`].
#[derive(Debug, Clone)]
pub struct HyFdConfig {
    /// Maximum determinant size.
    pub max_lhs: usize,
    /// Number of random row pairs sampled up front.
    pub sample_pairs: usize,
    pub seed: u64,
}

impl Default for HyFdConfig {
    fn default() -> Self {
        HyFdConfig {
            max_lhs: 4,
            sample_pairs: 512,
            seed: 0,
        }
    }
}

type AttrSet = u64;

fn bits(set: AttrSet, n: usize) -> impl Iterator<Item = usize> {
    (0..n).filter(move |i| set & (1 << i) != 0)
}

/// Rendered comparison key (nulls equal each other, as in TANE).
fn key(table: &Table, row: usize, col: usize) -> String {
    let c = table.column(col).expect("col in range");
    if c.is_null(row) {
        "\u{0}null".to_string()
    } else {
        c.get(row).render()
    }
}

/// Attribute-agreement bitmask for a row pair.
fn agree_set(table: &Table, a: usize, b: usize) -> AttrSet {
    let mut s: AttrSet = 0;
    for c in 0..table.n_cols() {
        if key(table, a, c) == key(table, b, c) {
            s |= 1 << c;
        }
    }
    s
}

/// Per-rhs candidate lhs sets (the evolving positive cover).
struct PositiveCover {
    n_attrs: usize,
    max_lhs: usize,
    /// `candidates[a]` = minimal lhs bitmasks currently believed to
    /// determine attribute `a`.
    candidates: Vec<Vec<AttrSet>>,
}

impl PositiveCover {
    fn new(n_attrs: usize, max_lhs: usize) -> PositiveCover {
        PositiveCover {
            n_attrs,
            max_lhs,
            candidates: vec![vec![0]; n_attrs], // start from ∅ → A
        }
    }

    /// Apply one piece of negative evidence: rows agreeing exactly on
    /// `agree` differ on every attribute outside it, so for every rhs
    /// outside `agree`, no lhs ⊆ agree can determine rhs.
    fn apply(&mut self, agree: AttrSet) {
        let n = self.n_attrs;
        let max_lhs = self.max_lhs;
        for rhs in 0..n {
            if agree & (1 << rhs) != 0 {
                continue;
            }
            let cands = &mut self.candidates[rhs];
            let (violated, mut kept): (Vec<AttrSet>, Vec<AttrSet>) =
                cands.iter().partition(|&&lhs| lhs & !agree == 0);
            if violated.is_empty() {
                continue;
            }
            for lhs in violated {
                // Specialise: extend with one attribute outside the agree
                // set (so the new lhs distinguishes the offending pair).
                for b in 0..n {
                    if b == rhs || agree & (1 << b) != 0 || lhs & (1 << b) != 0 {
                        continue;
                    }
                    let ext = lhs | (1 << b);
                    if (ext.count_ones() as usize) > max_lhs {
                        continue;
                    }
                    // Keep only if not a superset of an existing candidate.
                    if kept.iter().any(|&k| k & !ext == 0) {
                        continue;
                    }
                    kept.retain(|&k| ext & !k != 0); // drop supersets of ext
                    kept.push(ext);
                }
            }
            kept.sort_unstable();
            kept.dedup();
            *cands = kept;
        }
    }
}

/// Find one violating row pair for `lhs → rhs`, or `None` if the FD holds.
fn find_violation(table: &Table, lhs: AttrSet, rhs: usize) -> Option<(usize, usize)> {
    use std::collections::HashMap;
    let n = table.n_cols();
    let lhs_cols: Vec<usize> = bits(lhs, n).collect();
    let mut seen: HashMap<Vec<String>, (usize, String)> = HashMap::new();
    for r in 0..table.n_rows() {
        let k: Vec<String> = lhs_cols.iter().map(|&c| key(table, r, c)).collect();
        let v = key(table, r, rhs);
        match seen.get(&k) {
            Some((prev_row, prev_val)) if *prev_val != v => return Some((*prev_row, r)),
            Some(_) => {}
            None => {
                seen.insert(k, (r, v));
            }
        }
    }
    None
}

/// Run the hybrid miner, returning minimal exact FDs (provenance
/// [`RuleProvenance::HyFd`]).
pub fn hyfd(table: &Table, config: &HyFdConfig) -> Vec<FdRule> {
    let n = table.n_cols();
    assert!(n <= 64, "HyFD implementation caps at 64 columns");
    if n < 2 || table.n_rows() < 2 {
        return Vec::new();
    }

    let mut cover = PositiveCover::new(n, config.max_lhs);
    let mut seen_agree: HashSet<AttrSet> = HashSet::new();

    // --- Phase 1: sampling ---
    let mut rng = StdRng::seed_from_u64(config.seed);
    let rows = table.n_rows();
    // Neighbouring pairs under the original order catch clustered data;
    // random pairs catch the rest.
    for r in 1..rows {
        let s = agree_set(table, r - 1, r);
        if seen_agree.insert(s) {
            cover.apply(s);
        }
    }
    for _ in 0..config.sample_pairs {
        let a = rng.random_range(0..rows);
        let b = rng.random_range(0..rows);
        if a == b {
            continue;
        }
        let s = agree_set(table, a, b);
        if seen_agree.insert(s) {
            cover.apply(s);
        }
    }

    // --- Phases 2+3: induce candidates, validate, refine ---
    loop {
        let mut new_evidence: Vec<AttrSet> = Vec::new();
        for rhs in 0..n {
            for &lhs in &cover.candidates[rhs] {
                if lhs == 0 {
                    // ∅ → rhs: rhs constant? Validate via a scan.
                    if let Some((a, b)) = find_violation(table, 0, rhs) {
                        let s = agree_set(table, a, b);
                        if seen_agree.insert(s) {
                            new_evidence.push(s);
                        }
                    }
                    continue;
                }
                if let Some((a, b)) = find_violation(table, lhs, rhs) {
                    let s = agree_set(table, a, b);
                    if seen_agree.insert(s) {
                        new_evidence.push(s);
                    }
                }
            }
        }
        if new_evidence.is_empty() {
            break;
        }
        for s in new_evidence {
            cover.apply(s);
        }
    }

    // --- Emit validated, minimal, non-empty-lhs FDs ---
    let names: Vec<String> = table.column_names().iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    for rhs in 0..n {
        for &lhs in &cover.candidates[rhs] {
            if lhs == 0 {
                continue; // constant column; not expressed as an FD rule
            }
            let lhs_names: Vec<String> = bits(lhs, n).map(|i| names[i].clone()).collect();
            if let Some(fd) = Fd::new(lhs_names, names[rhs].clone()) {
                out.push(FdRule::discovered(fd, RuleProvenance::HyFd, 0.0));
            }
        }
    }
    out.sort_by(|a, b| {
        (a.fd.lhs.len(), &a.fd.lhs, &a.fd.rhs).cmp(&(b.fd.lhs.len(), &b.fd.lhs, &b.fd.rhs))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tane::{brute_force_fds, tane, TaneConfig};
    use datalens_table::Column;

    fn zip_city_table() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_i64("zip", [Some(1), Some(1), Some(2), Some(3)]),
                Column::from_str_vals(
                    "city",
                    [Some("ulm"), Some("ulm"), Some("bonn"), Some("ulm")],
                ),
                Column::from_i64("pop", [Some(10), Some(10), Some(20), Some(30)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn agrees_with_tane_on_example() {
        let t = zip_city_table();
        let mut h: Vec<String> = hyfd(&t, &HyFdConfig::default())
            .iter()
            .map(|r| r.fd.to_string())
            .collect();
        let mut ta: Vec<String> = tane(
            &t,
            &TaneConfig {
                max_lhs: 4,
                max_g3_error: 0.0,
            },
        )
        .iter()
        .map(|r| r.fd.to_string())
        .collect();
        h.sort();
        ta.sort();
        assert_eq!(h, ta);
    }

    #[test]
    fn agrees_with_brute_force() {
        let t = zip_city_table();
        let mut h: Vec<String> = hyfd(
            &t,
            &HyFdConfig {
                max_lhs: 3,
                ..Default::default()
            },
        )
        .iter()
        .map(|r| r.fd.to_string())
        .collect();
        let mut b: Vec<String> = brute_force_fds(&t, 3).iter().map(Fd::to_string).collect();
        h.sort();
        b.sort();
        assert_eq!(h, b);
    }

    #[test]
    fn no_fds_on_independent_columns() {
        // Two columns enumerating a full cross product: no FD either way.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                a.push(Some(i));
                b.push(Some(j));
            }
        }
        let t = Table::new(
            "t",
            vec![Column::from_i64("a", a), Column::from_i64("b", b)],
        )
        .unwrap();
        assert!(hyfd(&t, &HyFdConfig::default()).is_empty());
    }

    #[test]
    fn key_column_determines_everything() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("id", [Some(1), Some(2), Some(3)]),
                Column::from_str_vals("x", [Some("p"), Some("p"), Some("q")]),
            ],
        )
        .unwrap();
        let fds: Vec<String> = hyfd(&t, &HyFdConfig::default())
            .iter()
            .map(|r| r.fd.to_string())
            .collect();
        assert!(fds.contains(&"[id] -> x".to_string()), "{fds:?}");
        assert!(!fds.contains(&"[x] -> id".to_string()));
    }

    #[test]
    fn respects_max_lhs() {
        let t = zip_city_table();
        let rules = hyfd(
            &t,
            &HyFdConfig {
                max_lhs: 1,
                ..Default::default()
            },
        );
        assert!(rules.iter().all(|r| r.fd.lhs.len() <= 1));
    }

    #[test]
    fn trivial_tables_yield_nothing() {
        let t = Table::new("t", vec![Column::from_i64("a", [Some(1)])]).unwrap();
        assert!(hyfd(&t, &HyFdConfig::default()).is_empty());
    }
}

//! Stripped partitions — the core data structure of TANE.
//!
//! A partition of the rows by an attribute set X groups rows that agree on
//! all attributes of X. "Stripped" means singleton groups are dropped: they
//! can never witness an FD violation. TANE's key facts, both used here:
//!
//! - X → A holds iff the partition of X has the same *error* as X ∪ {A}
//!   (equivalently, refining by A does not split any group);
//! - the partition of X ∪ Y is the product of the partitions of X and Y,
//!   computable in O(n).

use std::collections::HashMap;

use datalens_table::Table;

/// A stripped partition: equivalence classes (row-index groups) of size ≥ 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    /// Number of rows in the underlying relation.
    pub n_rows: usize,
    /// Groups of size ≥ 2, each sorted ascending.
    pub groups: Vec<Vec<usize>>,
}

impl StrippedPartition {
    /// Partition of the rows by a single column (nulls compare equal to
    /// each other, the pandas groupby convention used by FD miners).
    pub fn for_column(table: &Table, col: usize) -> StrippedPartition {
        let column = table.column(col).expect("column in range");
        let mut map: HashMap<String, Vec<usize>> = HashMap::new();
        for r in 0..table.n_rows() {
            // Render keys: equal values render equally; null renders "".
            let key = column.get(r).render();
            let key = if column.is_null(r) {
                "\u{0}null".to_string()
            } else {
                key
            };
            map.entry(key).or_default().push(r);
        }
        let mut groups: Vec<Vec<usize>> = map.into_values().filter(|g| g.len() >= 2).collect();
        groups.sort();
        StrippedPartition {
            n_rows: table.n_rows(),
            groups,
        }
    }

    /// The single-group partition (empty attribute set): all rows agree.
    pub fn unit(n_rows: usize) -> StrippedPartition {
        let groups = if n_rows >= 2 {
            vec![(0..n_rows).collect()]
        } else {
            Vec::new()
        };
        StrippedPartition { n_rows, groups }
    }

    /// Number of equivalence classes **including** the stripped singletons.
    pub fn n_classes(&self) -> usize {
        let grouped_rows: usize = self.groups.iter().map(Vec::len).sum();
        self.groups.len() + (self.n_rows - grouped_rows)
    }

    /// TANE's error measure e(X): the minimum number of rows to remove so
    /// the grouped rows become unique, i.e. Σ(|group| − 1).
    pub fn error(&self) -> usize {
        self.groups.iter().map(|g| g.len() - 1).sum()
    }

    /// Product partition Π_X · Π_Y = Π_{X∪Y}, linear-time via the probe
    /// table technique from the TANE paper.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        assert_eq!(self.n_rows, other.n_rows, "row count mismatch");
        // probe[r] = group id of r in self, or NONE.
        const NONE: usize = usize::MAX;
        let mut probe = vec![NONE; self.n_rows];
        for (gid, group) in self.groups.iter().enumerate() {
            for &r in group {
                probe[r] = gid;
            }
        }
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut bucket: HashMap<usize, Vec<usize>> = HashMap::new();
        for group in &other.groups {
            bucket.clear();
            for &r in group {
                if probe[r] != NONE {
                    bucket.entry(probe[r]).or_default().push(r);
                }
            }
            for (_, rows) in bucket.drain() {
                if rows.len() >= 2 {
                    out.push(rows);
                }
            }
        }
        out.sort();
        StrippedPartition {
            n_rows: self.n_rows,
            groups: out,
        }
    }

    /// Does the FD (attributes of `self`) → (attributes refined in
    /// `refined`) hold exactly? True iff refining does not increase error.
    pub fn implies(&self, refined: &StrippedPartition) -> bool {
        self.error() == refined.error()
    }

    /// g3 approximation error of the FD X → A, where `self` = Π_X and
    /// `refined` = Π_{X∪A}: the minimum fraction of rows that must be
    /// removed for the FD to hold exactly (Kivinen & Mannila's g3; 0 =
    /// exact FD).
    ///
    /// Within each X-group, every row outside the *largest* agreeing
    /// X∪A-subgroup must go. Note the naive `(e(X) − e(X∪A))/n` is **not**
    /// g3 — it stays small for independent low-cardinality attributes and
    /// would admit nonsense "approximate FDs".
    pub fn g3_error(&self, refined: &StrippedPartition) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        // probe[r] = refined group id of row r; usize::MAX = singleton.
        const NONE: usize = usize::MAX;
        let mut probe = vec![NONE; self.n_rows];
        for (gid, group) in refined.groups.iter().enumerate() {
            for &r in group {
                probe[r] = gid;
            }
        }
        let mut removed = 0usize;
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for group in &self.groups {
            counts.clear();
            let mut singles = 0usize;
            for &r in group {
                if probe[r] == NONE {
                    singles += 1; // its own refined subgroup of size 1
                } else {
                    *counts.entry(probe[r]).or_insert(0) += 1;
                }
            }
            let max_keep = counts
                .values()
                .copied()
                .max()
                .unwrap_or(0)
                .max(usize::from(singles > 0));
            removed += group.len() - max_keep;
        }
        // Rows stripped from Π_X are singleton X-classes: trivially kept.
        removed as f64 / self.n_rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn table() -> Table {
        // zip → city holds; city → zip does not (ulm has two zips).
        Table::new(
            "t",
            vec![
                Column::from_str_vals(
                    "city",
                    [Some("ulm"), Some("ulm"), Some("bonn"), Some("ulm")],
                ),
                Column::from_i64("zip", [Some(1), Some(1), Some(2), Some(3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_partition_groups_equal_values() {
        let p = StrippedPartition::for_column(&table(), 0);
        assert_eq!(p.groups, vec![vec![0, 1, 3]]); // bonn singleton stripped
        assert_eq!(p.error(), 2);
        assert_eq!(p.n_classes(), 2);
    }

    #[test]
    fn nulls_group_together() {
        let t = Table::new("t", vec![Column::from_i64("x", [None, None, Some(1)])]).unwrap();
        let p = StrippedPartition::for_column(&t, 0);
        assert_eq!(p.groups, vec![vec![0, 1]]);
    }

    #[test]
    fn unit_partition_single_group() {
        let p = StrippedPartition::unit(4);
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.error(), 3);
        assert_eq!(p.n_classes(), 1);
    }

    #[test]
    fn product_refines() {
        let t = table();
        let city = StrippedPartition::for_column(&t, 0);
        let zip = StrippedPartition::for_column(&t, 1);
        let both = city.product(&zip);
        // {0,1,3} ∩ {0,1} = {0,1}; row 3 becomes a singleton and is stripped.
        assert_eq!(both.groups, vec![vec![0, 1]]);
        assert_eq!(both.error(), 1);
        // Product is commutative in content.
        assert_eq!(both, zip.product(&city));
    }

    #[test]
    fn fd_check_via_error_equality() {
        let t = table();
        let city = StrippedPartition::for_column(&t, 0);
        let zip = StrippedPartition::for_column(&t, 1);
        let both = city.product(&zip);
        // zip → city: e(zip) == e(zip ∪ city)?
        assert!(zip.implies(&both));
        // city → zip: e(city)=2, e(both)=1 → violated.
        assert!(!city.implies(&both));
    }

    #[test]
    fn g3_error_quantifies_violation() {
        let t = table();
        let city = StrippedPartition::for_column(&t, 0);
        let zip = StrippedPartition::for_column(&t, 1);
        let both = city.product(&zip);
        assert_eq!(zip.g3_error(&both), 0.0);
        assert!((city.g3_error(&both) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn g3_is_removal_fraction_not_group_delta() {
        // Two independent low-cardinality columns: a (2 values) and
        // b (3 values), uniform 6×k rows. a → b is *badly* violated:
        // within each a-group only the majority b survives (one third),
        // so g3 = 2/3 — while the naive group-count delta would report a
        // deceptively small value.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..30 {
            a.push(Some((i % 2) as i64));
            b.push(Some((i % 3) as i64));
        }
        let t = Table::new(
            "t",
            vec![Column::from_i64("a", a), Column::from_i64("b", b)],
        )
        .unwrap();
        let pa = StrippedPartition::for_column(&t, 0);
        let pb = StrippedPartition::for_column(&t, 1);
        let pab = pa.product(&pb);
        let g3 = pa.g3_error(&pab);
        assert!((g3 - 2.0 / 3.0).abs() < 1e-9, "g3 = {g3}");
    }

    #[test]
    fn product_with_unit_is_identity_on_error() {
        let t = table();
        let city = StrippedPartition::for_column(&t, 0);
        let unit = StrippedPartition::unit(t.n_rows());
        let prod = unit.product(&city);
        assert_eq!(prod.error(), city.error());
    }
}

//! # datalens-fd
//!
//! Functional-dependency discovery — the reproduction's stand-in for the
//! Metanome tool suite (HyFD, TANE) the paper calls through a CLI (§3
//! "Automated Data Profiling"). Two independent miners are provided:
//!
//! - [`tane::tane`]: level-wise lattice search over stripped partitions,
//!   supporting exact and approximate (g3-bounded) FDs;
//! - [`hyfd::hyfd`]: a sampling + focused-validation hybrid in the spirit
//!   of HyFD, exact FDs only.
//!
//! Discovered FDs become [`rule::FdRule`]s carrying provenance and the
//! user-in-the-loop validation lifecycle (confirm / reject / modify /
//! custom rules) described in the paper.
//!
//! ```
//! use datalens_fd::{tane, TaneConfig};
//! use datalens_table::{Column, Table};
//!
//! let t = Table::new("t", vec![
//!     Column::from_i64("zip", [Some(1), Some(1), Some(2)]),
//!     Column::from_str_vals("city", [Some("ulm"), Some("ulm"), Some("bonn")]),
//! ]).unwrap();
//! let rules = tane(&t, &TaneConfig::default());
//! assert!(rules.iter().any(|r| r.fd.to_string() == "[zip] -> city"));
//! ```

pub mod hyfd;
pub mod partition;
pub mod rule;
pub mod tane;

pub use hyfd::{hyfd, HyFdConfig};
pub use partition::StrippedPartition;
pub use rule::{Fd, FdRule, RuleProvenance, RuleSet, RuleStatus};
pub use tane::{brute_force_fds, fd_holds, tane, TaneConfig};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use datalens_table::{Column, Table};

    use crate::hyfd::{hyfd, HyFdConfig};
    use crate::rule::Fd;
    use crate::tane::{brute_force_fds, tane, TaneConfig};

    /// Small random tables with low-cardinality columns (so FDs actually
    /// occur) — the classic stress input for FD miners.
    fn table_strategy() -> impl Strategy<Value = Table> {
        (2usize..5, 2usize..12).prop_flat_map(|(cols, rows)| {
            proptest::collection::vec(proptest::collection::vec(0i64..3, rows), cols).prop_map(
                |data| {
                    let columns: Vec<Column> = data
                        .into_iter()
                        .enumerate()
                        .map(|(i, vals)| {
                            Column::from_i64(format!("c{i}"), vals.into_iter().map(Some))
                        })
                        .collect();
                    Table::new("prop", columns).unwrap()
                },
            )
        })
    }

    fn sorted_fds(fds: Vec<Fd>) -> Vec<String> {
        let mut v: Vec<String> = fds.into_iter().map(|f| f.to_string()).collect();
        v.sort();
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Exact TANE finds exactly the brute-force minimal FDs.
        #[test]
        fn tane_matches_brute_force(t in table_strategy()) {
            let max_lhs = t.n_cols() - 1;
            let mined = tane(&t, &TaneConfig { max_lhs, max_g3_error: 0.0 });
            let mined = sorted_fds(mined.into_iter().map(|r| r.fd).collect());
            let brute = sorted_fds(brute_force_fds(&t, max_lhs));
            prop_assert_eq!(mined, brute);
        }

        /// HyFD agrees with TANE on every input.
        #[test]
        fn hyfd_matches_tane(t in table_strategy(), seed in any::<u64>()) {
            let max_lhs = t.n_cols() - 1;
            let a = sorted_fds(
                hyfd(&t, &HyFdConfig { max_lhs, sample_pairs: 32, seed })
                    .into_iter().map(|r| r.fd).collect(),
            );
            let b = sorted_fds(
                tane(&t, &TaneConfig { max_lhs, max_g3_error: 0.0 })
                    .into_iter().map(|r| r.fd).collect(),
            );
            prop_assert_eq!(a, b);
        }

        /// g3 is a true removal fraction: bounded by [0, 1], zero exactly
        /// when the FD holds, and achievable (removing ⌈g3·n⌉ rows can
        /// always restore the FD).
        #[test]
        fn g3_is_a_valid_removal_fraction(t in table_strategy()) {
            use crate::partition::StrippedPartition;
            let pa = StrippedPartition::for_column(&t, 0);
            let pb = StrippedPartition::for_column(&t, 1);
            let pab = pa.product(&pb);
            let g3 = pa.g3_error(&pab);
            prop_assert!((0.0..=1.0).contains(&g3), "g3 = {g3}");
            let holds = crate::tane::fd_holds(&t, &[0], 1);
            prop_assert_eq!(g3 == 0.0, holds, "g3 {} vs holds {}", g3, holds);
        }

        /// Every reported FD actually holds, and is minimal.
        #[test]
        fn reported_fds_hold_and_are_minimal(t in table_strategy()) {
            let rules = tane(&t, &TaneConfig { max_lhs: 3, max_g3_error: 0.0 });
            let names: Vec<&str> = t.column_names();
            for r in &rules {
                let lhs: Vec<usize> = r.fd.lhs.iter()
                    .map(|n| names.iter().position(|m| m == n).unwrap())
                    .collect();
                let rhs = names.iter().position(|m| *m == r.fd.rhs).unwrap();
                prop_assert!(crate::tane::fd_holds(&t, &lhs, rhs), "{} does not hold", r.fd);
                // Minimality: removing any lhs attribute breaks the FD.
                if lhs.len() > 1 {
                    for drop in 0..lhs.len() {
                        let sub: Vec<usize> = lhs.iter().enumerate()
                            .filter(|(i, _)| *i != drop)
                            .map(|(_, &c)| c)
                            .collect();
                        prop_assert!(
                            !crate::tane::fd_holds(&t, &sub, rhs),
                            "{} is not minimal", r.fd
                        );
                    }
                }
            }
        }
    }
}

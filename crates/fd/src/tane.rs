//! TANE: level-wise discovery of minimal functional dependencies
//! (Huhtala, Kärkkäinen, Porkka & Toivonen, 1999) — one of the two FD
//! miners DataLens drives through Metanome.
//!
//! Attribute sets are `u64` bitmasks (≤ 64 columns). The lattice is
//! traversed level by level; candidate-rhs sets C⁺(X) and key pruning keep
//! the search space small, and partitions for level k are built as products
//! of level-(k−1) partitions.

// Index-based loops here mirror the published algorithms' notation;
// iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;

use datalens_table::Table;

use crate::partition::StrippedPartition;
use crate::rule::{Fd, FdRule, RuleProvenance};

/// Options for [`tane`].
#[derive(Debug, Clone)]
pub struct TaneConfig {
    /// Maximum determinant (lhs) size.
    pub max_lhs: usize,
    /// Maximum g3 error for an FD to be reported. `0.0` = exact FDs only;
    /// larger values admit approximate FDs (TANE/approx).
    pub max_g3_error: f64,
}

impl Default for TaneConfig {
    fn default() -> Self {
        TaneConfig {
            max_lhs: 4,
            max_g3_error: 0.0,
        }
    }
}

type AttrSet = u64;

fn bits(set: AttrSet) -> impl Iterator<Item = usize> {
    (0..64).filter(move |i| set & (1 << i) != 0)
}

fn set_of(attrs: &[usize]) -> AttrSet {
    attrs.iter().fold(0, |acc, &a| acc | (1 << a))
}

/// Run TANE over all columns of `table`, returning minimal FDs as rules
/// (provenance [`RuleProvenance::Tane`]).
pub fn tane(table: &Table, config: &TaneConfig) -> Vec<FdRule> {
    let n_attrs = table.n_cols();
    assert!(n_attrs <= 64, "TANE implementation caps at 64 columns");
    if n_attrs < 2 || table.n_rows() == 0 {
        return Vec::new();
    }
    let names: Vec<String> = table.column_names().iter().map(|s| s.to_string()).collect();
    let all: AttrSet = (0..n_attrs).fold(0, |acc, a| acc | (1 << a));

    // Level 1: single-attribute partitions and C+.
    let mut partitions: HashMap<AttrSet, StrippedPartition> = HashMap::new();
    let unit = StrippedPartition::unit(table.n_rows());
    for a in 0..n_attrs {
        partitions.insert(1 << a, StrippedPartition::for_column(table, a));
    }

    let mut cplus: HashMap<AttrSet, AttrSet> = HashMap::new();
    cplus.insert(0, all);
    let mut level: Vec<AttrSet> = (0..n_attrs).map(|a| 1 << a).collect();
    for &x in &level {
        cplus.insert(x, all);
    }

    let mut results: Vec<FdRule> = Vec::new();

    let mut depth = 1usize;
    while !level.is_empty() && depth <= config.max_lhs + 1 {
        // --- compute dependencies at this level ---
        for &x in &level {
            let candidates = cplus[&x] & x;
            for a in bits(candidates) {
                let lhs_set = x & !(1 << a);
                let lhs_part = if lhs_set == 0 {
                    // ∅ → A: holds iff column A is constant.
                    &unit
                } else {
                    &partitions[&lhs_set]
                };
                let xa = &partitions[&x];
                // Exactness via the cheap error-equality test; the true
                // (costlier) g3 only when approximate FDs are requested.
                let exact = lhs_part.implies(xa);
                let g3 = if exact {
                    0.0
                } else if config.max_g3_error > 0.0 {
                    lhs_part.g3_error(xa)
                } else {
                    1.0
                };
                let valid = g3 <= config.max_g3_error + 1e-12;
                if valid && lhs_set != 0 {
                    let lhs_names: Vec<String> = bits(lhs_set).map(|i| names[i].clone()).collect();
                    if let Some(fd) = Fd::new(lhs_names, names[a].clone()) {
                        results.push(FdRule::discovered(fd, RuleProvenance::Tane, g3));
                    }
                }
                if exact {
                    // Prune: A proven dependent; remove A and all of R\X.
                    // Only *exact* FDs may prune — approximate validity
                    // does not license TANE's C+ implication rules.
                    let entry = cplus.get_mut(&x).expect("cplus exists");
                    *entry &= !(1 << a);
                    *entry &= !(all & !x);
                }
            }
        }

        // --- prune the level ---
        // C+-based pruning only. TANE's additional key pruning requires a
        // companion output rule to avoid losing FDs whose lhs is a key; we
        // keep keys in the lattice instead — the C+ sets still collapse
        // their supersets quickly.
        level.retain(|x| cplus[x] != 0);

        // --- generate the next level via prefix blocks ---
        if depth > config.max_lhs {
            break;
        }
        let mut next: Vec<AttrSet> = Vec::new();
        let mut sorted_level = level.clone();
        sorted_level.sort();
        for i in 0..sorted_level.len() {
            for j in (i + 1)..sorted_level.len() {
                let a = sorted_level[i];
                let b = sorted_level[j];
                // Same prefix block: differ only in the highest bit.
                let union = a | b;
                if (union.count_ones() as usize) != depth + 1 {
                    continue;
                }
                // All subsets of size `depth` must be present in the level.
                let all_subsets_present = bits(union).all(|k| {
                    let sub = union & !(1 << k);
                    sorted_level.binary_search(&sub).is_ok()
                });
                if !all_subsets_present || next.contains(&union) {
                    continue;
                }
                // Partition and C+ for the union.
                let p = partitions[&a].product(&partitions[&b]);
                partitions.insert(union, p);
                let mut c = all;
                for k in bits(union) {
                    let sub = union & !(1 << k);
                    c &= cplus.get(&sub).copied().unwrap_or(0);
                }
                cplus.insert(union, c);
                next.push(union);
            }
        }
        next.sort();
        next.dedup();
        level = next;
        depth += 1;
    }

    minimise(results)
}

/// Keep only minimal FDs: drop any rule whose lhs is a strict superset of
/// another rule's lhs with the same rhs.
fn minimise(rules: Vec<FdRule>) -> Vec<FdRule> {
    let mut out: Vec<FdRule> = Vec::new();
    for r in &rules {
        let minimal = !rules
            .iter()
            .any(|s| s.fd != r.fd && s.fd.generalises(&r.fd));
        if minimal {
            out.push(r.clone());
        }
    }
    out.sort_by(|a, b| {
        (a.fd.lhs.len(), &a.fd.lhs, &a.fd.rhs).cmp(&(b.fd.lhs.len(), &b.fd.lhs, &b.fd.rhs))
    });
    out
}

/// Reference implementation for tests and HyFD validation: check whether
/// `lhs → rhs` (column indices) holds exactly on `table`.
pub fn fd_holds(table: &Table, lhs: &[usize], rhs: usize) -> bool {
    let lhs_set = set_of(lhs);
    debug_assert_eq!(lhs_set & (1 << rhs), 0, "rhs must not be in lhs");
    let mut seen: HashMap<Vec<String>, String> = HashMap::new();
    for r in 0..table.n_rows() {
        let key: Vec<String> = lhs.iter().map(|&c| render_key(table, r, c)).collect();
        let val = render_key(table, r, rhs);
        match seen.get(&key) {
            Some(existing) if existing != &val => return false,
            Some(_) => {}
            None => {
                seen.insert(key, val);
            }
        }
    }
    true
}

fn render_key(table: &Table, row: usize, col: usize) -> String {
    let c = table.column(col).expect("col in range");
    if c.is_null(row) {
        "\u{0}null".to_string()
    } else {
        c.get(row).render()
    }
}

/// Brute-force minimal-FD miner for small tables (test oracle).
pub fn brute_force_fds(table: &Table, max_lhs: usize) -> Vec<Fd> {
    let n = table.n_cols();
    let names: Vec<String> = table.column_names().iter().map(|s| s.to_string()).collect();
    let mut found: Vec<(Vec<usize>, usize)> = Vec::new();
    let mut all_subsets: Vec<Vec<usize>> = vec![vec![]];
    for a in 0..n {
        let mut extended: Vec<Vec<usize>> = Vec::new();
        for s in &all_subsets {
            if s.len() < max_lhs {
                let mut t = s.clone();
                t.push(a);
                extended.push(t);
            }
        }
        all_subsets.extend(extended);
    }
    // Constant columns are determined by the empty set; TANE therefore
    // reports no non-empty-lhs FD for them, and neither does this oracle.
    let constant: Vec<bool> = (0..n).map(|c| fd_holds(table, &[], c)).collect();
    for lhs in all_subsets.iter().filter(|s| !s.is_empty()) {
        for rhs in 0..n {
            if lhs.contains(&rhs) || constant[rhs] {
                continue;
            }
            // Minimality: no strict subset of lhs already determines rhs.
            let has_smaller = found.iter().any(|(l, r)| {
                *r == rhs && l.iter().all(|a| lhs.contains(a)) && l.len() < lhs.len()
            });
            if has_smaller {
                continue;
            }
            if fd_holds(table, lhs, rhs) {
                found.push((lhs.clone(), rhs));
            }
        }
    }
    found
        .into_iter()
        .filter_map(|(lhs, rhs)| {
            Fd::new(
                lhs.iter().map(|&i| names[i].clone()).collect(),
                names[rhs].clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn zip_city_table() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_i64("zip", [Some(1), Some(1), Some(2), Some(3)]),
                Column::from_str_vals(
                    "city",
                    [Some("ulm"), Some("ulm"), Some("bonn"), Some("ulm")],
                ),
                Column::from_i64("pop", [Some(10), Some(10), Some(20), Some(30)]),
            ],
        )
        .unwrap()
    }

    fn fds_of(rules: &[FdRule]) -> Vec<String> {
        rules.iter().map(|r| r.fd.to_string()).collect()
    }

    #[test]
    fn finds_zip_determines_city() {
        let rules = tane(&zip_city_table(), &TaneConfig::default());
        let fds = fds_of(&rules);
        assert!(fds.contains(&"[zip] -> city".to_string()), "{fds:?}");
        assert!(fds.contains(&"[zip] -> pop".to_string()), "{fds:?}");
        assert!(fds.contains(&"[pop] -> zip".to_string()), "{fds:?}");
        // city → zip must NOT be found (ulm has zips 1 and 3).
        assert!(!fds.contains(&"[city] -> zip".to_string()), "{fds:?}");
    }

    #[test]
    fn results_are_minimal() {
        let rules = tane(&zip_city_table(), &TaneConfig::default());
        // [zip] -> city exists, so [zip, pop] -> city must not be reported.
        assert!(rules.iter().all(|r| !(r.fd.rhs == "city"
            && r.fd.lhs.len() > 1
            && r.fd.lhs.contains(&"zip".to_string()))));
    }

    #[test]
    fn matches_brute_force_on_small_table() {
        let t = zip_city_table();
        let mut tane_fds: Vec<String> = tane(
            &t,
            &TaneConfig {
                max_lhs: 3,
                max_g3_error: 0.0,
            },
        )
        .iter()
        .map(|r| r.fd.to_string())
        .collect();
        let mut brute: Vec<String> = brute_force_fds(&t, 3).iter().map(Fd::to_string).collect();
        tane_fds.sort();
        brute.sort();
        assert_eq!(tane_fds, brute);
    }

    #[test]
    fn approximate_mode_admits_near_fds() {
        // city → zip is violated by exactly 1 of 4 rows (g3 = 0.25).
        let t = zip_city_table();
        let exact = tane(&t, &TaneConfig::default());
        assert!(!fds_of(&exact).contains(&"[city] -> zip".to_string()));
        let approx = tane(
            &t,
            &TaneConfig {
                max_lhs: 2,
                max_g3_error: 0.3,
            },
        );
        assert!(fds_of(&approx).contains(&"[city] -> zip".to_string()));
        let rule = approx
            .iter()
            .find(|r| r.fd.to_string() == "[city] -> zip")
            .unwrap();
        assert!((rule.g3_error - 0.25).abs() < 1e-9);
    }

    #[test]
    fn max_lhs_caps_determinant_size() {
        let t = zip_city_table();
        let rules = tane(
            &t,
            &TaneConfig {
                max_lhs: 1,
                max_g3_error: 0.0,
            },
        );
        assert!(rules.iter().all(|r| r.fd.lhs.len() <= 1));
    }

    #[test]
    fn empty_and_single_column_tables() {
        let t = Table::new("t", vec![Column::from_i64("only", [Some(1), Some(2)])]).unwrap();
        assert!(tane(&t, &TaneConfig::default()).is_empty());
    }

    #[test]
    fn fd_holds_reference() {
        let t = zip_city_table();
        assert!(fd_holds(&t, &[0], 1));
        assert!(!fd_holds(&t, &[1], 0));
        assert!(fd_holds(&t, &[0, 1], 2));
    }

    #[test]
    fn nulls_treated_as_equal_values() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("a", [None, None, Some(1)]),
                Column::from_i64("b", [Some(5), Some(5), Some(9)]),
            ],
        )
        .unwrap();
        // null→5, null→5, 1→9: a → b holds.
        assert!(fd_holds(&t, &[0], 1));
        let fds = fds_of(&tane(&t, &TaneConfig::default()));
        assert!(fds.contains(&"[a] -> b".to_string()));
    }
}

//! The FD rule model: discovered and user-defined rules, plus the
//! validation lifecycle driven by the user-in-the-loop module.
//!
//! The paper: "DataLens empowers users to validate automatically generated
//! FD rules and engineer custom rules … users can review, confirm, modify,
//! or reject these automatically generated rules."

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Where a rule came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleProvenance {
    /// Discovered by TANE.
    Tane,
    /// Discovered by the HyFD-style hybrid miner.
    HyFd,
    /// Entered by a user.
    User,
}

/// User-in-the-loop validation state of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleStatus {
    /// Awaiting review (initial state of discovered rules).
    Pending,
    /// Confirmed by a user (initial state of user rules).
    Confirmed,
    /// Rejected by a user; excluded from rule-based detection.
    Rejected,
    /// Replaced by a modified rule (the replacement is a separate rule).
    Superseded,
}

/// A functional dependency `lhs → rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fd {
    /// Determinant columns (sorted, non-empty, no duplicates).
    pub lhs: Vec<String>,
    /// Dependent column (not in `lhs`).
    pub rhs: String,
}

impl Fd {
    /// Build a canonicalised FD. Returns `None` when `lhs` is empty,
    /// contains duplicates, or contains `rhs`.
    pub fn new(mut lhs: Vec<String>, rhs: String) -> Option<Fd> {
        if lhs.is_empty() {
            return None;
        }
        lhs.sort();
        let before = lhs.len();
        lhs.dedup();
        if lhs.len() != before || lhs.contains(&rhs) {
            return None;
        }
        Some(Fd { lhs, rhs })
    }

    /// Is `self` at least as general as `other` (same rhs, lhs ⊆ other.lhs)?
    pub fn generalises(&self, other: &Fd) -> bool {
        self.rhs == other.rhs && self.lhs.iter().all(|a| other.lhs.contains(a))
    }
}

impl Fd {
    /// Parse a rule from text — the paper's future-work item (1),
    /// "natural language processing for rule definition". Accepted forms
    /// (case-insensitive keywords, column names taken verbatim):
    ///
    /// - arrow syntax: `zip -> city`, `[zip, street] -> city`;
    /// - "determines": `zip determines city`,
    ///   `zip and street determine city`;
    /// - "depends on": `city depends on zip`,
    ///   `city depends on zip and street`.
    pub fn parse(text: &str) -> Option<Fd> {
        let text = text.trim();
        // Arrow form.
        if let Some((lhs, rhs)) = text.split_once("->") {
            let lhs = lhs.trim().trim_start_matches('[').trim_end_matches(']');
            return Fd::new(split_columns(lhs), rhs.trim().to_string());
        }
        // "X determines Y" / "X and Z determine Y".
        let lower = text.to_ascii_lowercase();
        for kw in ["determines", "determine"] {
            if let Some(pos) = lower.find(kw) {
                let (lhs, rhs) = (&text[..pos], &text[pos + kw.len()..]);
                return Fd::new(split_columns(lhs), rhs.trim().to_string());
            }
        }
        // "Y depends on X".
        if let Some(pos) = lower.find("depends on") {
            let (rhs, lhs) = (&text[..pos], &text[pos + "depends on".len()..]);
            return Fd::new(split_columns(lhs), rhs.trim().to_string());
        }
        None
    }
}

/// Split a determinant list on commas and the word "and".
fn split_columns(text: &str) -> Vec<String> {
    text.split(',')
        .flat_map(|part| {
            // Split on standalone "and" words.
            let mut pieces = Vec::new();
            let mut current = Vec::new();
            for word in part.split_whitespace() {
                if word.eq_ignore_ascii_case("and") {
                    if !current.is_empty() {
                        pieces.push(current.join(" "));
                        current = Vec::new();
                    }
                } else {
                    current.push(word);
                }
            }
            if !current.is_empty() {
                pieces.push(current.join(" "));
            }
            pieces
        })
        .filter(|s| !s.is_empty())
        .collect()
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] -> {}", self.lhs.join(", "), self.rhs)
    }
}

/// A rule: an FD plus its provenance, lifecycle state, and quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FdRule {
    pub fd: Fd,
    pub provenance: RuleProvenance,
    pub status: RuleStatus,
    /// g3 approximation error measured at discovery (0 = exact FD).
    pub g3_error: f64,
}

impl FdRule {
    pub fn discovered(fd: Fd, provenance: RuleProvenance, g3_error: f64) -> FdRule {
        FdRule {
            fd,
            provenance,
            status: RuleStatus::Pending,
            g3_error,
        }
    }

    pub fn user_defined(fd: Fd) -> FdRule {
        FdRule {
            fd,
            provenance: RuleProvenance::User,
            status: RuleStatus::Confirmed,
            g3_error: 0.0,
        }
    }

    /// Is this rule usable by rule-based error detection? Pending rules
    /// count (the dashboard runs them until the user rejects them).
    pub fn is_active(&self) -> bool {
        matches!(self.status, RuleStatus::Pending | RuleStatus::Confirmed)
    }
}

/// The mutable set of rules attached to a dataset, with the user-facing
/// validation operations.
///
/// The rule list sits behind an [`Arc`], so cloning a `RuleSet` (which
/// happens on every detection and repair run, to snapshot the rules into
/// the tool context) is O(1); the user-facing mutations copy on write.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Arc<Vec<FdRule>>,
}

impl RuleSet {
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Add a rule, skipping exact duplicates of the same FD. Returns true
    /// if the rule was added.
    pub fn add(&mut self, rule: FdRule) -> bool {
        if self.rules.iter().any(|r| r.fd == rule.fd) {
            return false;
        }
        Arc::make_mut(&mut self.rules).push(rule);
        true
    }

    /// Whether two rule sets share the same backing allocation.
    pub fn shares_rules_with(&self, other: &RuleSet) -> bool {
        Arc::ptr_eq(&self.rules, &other.rules)
    }

    pub fn rules(&self) -> &[FdRule] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rules currently usable by detection.
    pub fn active(&self) -> impl Iterator<Item = &FdRule> {
        self.rules.iter().filter(|r| r.is_active())
    }

    fn position(&self, fd: &Fd) -> Option<usize> {
        self.rules.iter().position(|r| &r.fd == fd)
    }

    /// User confirms a rule. Returns false when the FD is unknown.
    pub fn confirm(&mut self, fd: &Fd) -> bool {
        if let Some(i) = self.position(fd) {
            Arc::make_mut(&mut self.rules)[i].status = RuleStatus::Confirmed;
            true
        } else {
            false
        }
    }

    /// User rejects a rule.
    pub fn reject(&mut self, fd: &Fd) -> bool {
        if let Some(i) = self.position(fd) {
            Arc::make_mut(&mut self.rules)[i].status = RuleStatus::Rejected;
            true
        } else {
            false
        }
    }

    /// User modifies a rule: the original becomes Superseded and the
    /// replacement is added as a confirmed user rule. Returns false when
    /// the original is unknown or the replacement is a duplicate.
    pub fn modify(&mut self, original: &Fd, replacement: Fd) -> bool {
        let Some(i) = self.position(original) else {
            return false;
        };
        if self.rules.iter().any(|r| r.fd == replacement) {
            return false;
        }
        let rules = Arc::make_mut(&mut self.rules);
        rules[i].status = RuleStatus::Superseded;
        rules.push(FdRule::user_defined(replacement));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(lhs: &[&str], rhs: &str) -> Fd {
        Fd::new(lhs.iter().map(|s| s.to_string()).collect(), rhs.to_string()).unwrap()
    }

    #[test]
    fn fd_canonicalises_lhs() {
        let a = fd(&["b", "a"], "c");
        let b = fd(&["a", "b"], "c");
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "[a, b] -> c");
    }

    #[test]
    fn fd_rejects_degenerate_forms() {
        assert!(Fd::new(vec![], "c".into()).is_none());
        assert!(Fd::new(vec!["a".into(), "a".into()], "c".into()).is_none());
        assert!(Fd::new(vec!["c".into()], "c".into()).is_none());
    }

    #[test]
    fn generalisation_ordering() {
        assert!(fd(&["a"], "c").generalises(&fd(&["a", "b"], "c")));
        assert!(!fd(&["a", "b"], "c").generalises(&fd(&["a"], "c")));
        assert!(!fd(&["a"], "c").generalises(&fd(&["a", "b"], "d")));
        assert!(fd(&["a"], "c").generalises(&fd(&["a"], "c")));
    }

    #[test]
    fn ruleset_dedupes() {
        let mut rs = RuleSet::new();
        assert!(rs.add(FdRule::discovered(
            fd(&["a"], "b"),
            RuleProvenance::Tane,
            0.0
        )));
        assert!(!rs.add(FdRule::user_defined(fd(&["a"], "b"))));
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn validation_lifecycle() {
        let mut rs = RuleSet::new();
        rs.add(FdRule::discovered(
            fd(&["a"], "b"),
            RuleProvenance::Tane,
            0.0,
        ));
        assert_eq!(rs.rules()[0].status, RuleStatus::Pending);
        assert!(rs.rules()[0].is_active());

        assert!(rs.confirm(&fd(&["a"], "b")));
        assert_eq!(rs.rules()[0].status, RuleStatus::Confirmed);

        assert!(rs.reject(&fd(&["a"], "b")));
        assert!(!rs.rules()[0].is_active());
        assert_eq!(rs.active().count(), 0);

        assert!(!rs.confirm(&fd(&["zz"], "b")));
    }

    #[test]
    fn parse_arrow_forms() {
        assert_eq!(Fd::parse("zip -> city"), Some(fd(&["zip"], "city")));
        assert_eq!(
            Fd::parse("[zip, street] -> city"),
            Some(fd(&["street", "zip"], "city"))
        );
        assert_eq!(Fd::parse(" a ->b "), Some(fd(&["a"], "b")));
    }

    #[test]
    fn parse_natural_language_forms() {
        assert_eq!(Fd::parse("zip determines city"), Some(fd(&["zip"], "city")));
        assert_eq!(
            Fd::parse("zip and street determine city"),
            Some(fd(&["street", "zip"], "city"))
        );
        assert_eq!(Fd::parse("city depends on zip"), Some(fd(&["zip"], "city")));
        assert_eq!(
            Fd::parse("city depends on zip and street"),
            Some(fd(&["street", "zip"], "city"))
        );
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert_eq!(Fd::parse("just some words"), None);
        assert_eq!(Fd::parse("-> city"), None);
        assert_eq!(Fd::parse("zip determines zip"), None);
        assert_eq!(Fd::parse(""), None);
    }

    #[test]
    fn clone_shares_rules_until_mutation() {
        let mut rs = RuleSet::new();
        rs.add(FdRule::discovered(
            fd(&["a"], "b"),
            RuleProvenance::Tane,
            0.0,
        ));
        let snapshot = rs.clone();
        assert!(rs.shares_rules_with(&snapshot));
        // Copy-on-write: the snapshot keeps the old state.
        rs.reject(&fd(&["a"], "b"));
        assert!(!rs.shares_rules_with(&snapshot));
        assert_eq!(snapshot.rules()[0].status, RuleStatus::Pending);
        assert_eq!(rs.rules()[0].status, RuleStatus::Rejected);
    }

    #[test]
    fn modify_supersedes_and_adds() {
        let mut rs = RuleSet::new();
        rs.add(FdRule::discovered(
            fd(&["zip"], "inhabitants"),
            RuleProvenance::HyFd,
            0.01,
        ));
        assert!(rs.modify(&fd(&["zip"], "inhabitants"), fd(&["zip"], "city")));
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rules()[0].status, RuleStatus::Superseded);
        assert_eq!(rs.rules()[1].provenance, RuleProvenance::User);
        assert_eq!(rs.active().count(), 1);
        // Modifying to an existing FD fails.
        rs.add(FdRule::user_defined(fd(&["a"], "b")));
        assert!(!rs.modify(&fd(&["a"], "b"), fd(&["zip"], "city")));
    }
}

//! Tool recommendation — addressing the paper's opening challenge:
//! "Knowing which tool to use, when to use it, and how to best use it
//! requires a deep understanding of both the tools themselves and the
//! specific data quality issues at hand."
//!
//! Given the data profile and the rule set, [`recommend_tools`] proposes
//! the detector subset (with reasons) a domain expert would start from —
//! shown in the dashboard before the user picks tools manually, and
//! usable as the initial search space of iterative cleaning.

use datalens_fd::RuleSet;
use datalens_profile::{AlertKind, ProfileReport};
use datalens_table::DataType;

/// One recommendation with its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recommendation {
    /// Detector machine name (resolvable via
    /// `datalens_detect::detector_by_name`).
    pub tool: &'static str,
    /// Why this tool fits this dataset.
    pub reason: String,
}

/// Propose detectors for the profiled dataset. Deterministic, ordered by
/// decreasing relevance; always non-empty (min_k is the universal
/// fallback).
pub fn recommend_tools(profile: &ProfileReport, rules: &RuleSet) -> Vec<Recommendation> {
    let mut out: Vec<Recommendation> = Vec::new();

    let n_numeric = profile
        .columns
        .iter()
        .filter(|c| c.dtype.is_numeric())
        .count();
    let n_string = profile
        .columns
        .iter()
        .filter(|c| c.dtype == DataType::Str)
        .count();

    if profile.table.missing_cells > 0 {
        out.push(Recommendation {
            tool: "mv_detector",
            reason: format!(
                "{} cells ({:.1}%) are explicitly missing",
                profile.table.missing_cells,
                profile.table.missing_fraction * 100.0
            ),
        });
    }

    if n_numeric > 0 {
        // Skewed columns break the z-score assumption: prefer IQR there.
        let skewed = profile
            .alerts
            .iter()
            .filter(|a| a.kind == AlertKind::Skewed)
            .count();
        if skewed > 0 {
            out.push(Recommendation {
                tool: "iqr",
                reason: format!(
                    "{skewed} skewed numeric column(s): quartile fences are \
                     robust where z-scores are not"
                ),
            });
            out.push(Recommendation {
                tool: "sd",
                reason: format!("{n_numeric} numeric column(s) for z-score screening"),
            });
        } else {
            out.push(Recommendation {
                tool: "sd",
                reason: format!(
                    "{n_numeric} numeric column(s) with no skew alerts: \
                     z-scores apply cleanly"
                ),
            });
            out.push(Recommendation {
                tool: "iqr",
                reason: "quartile fences as a second statistical opinion".into(),
            });
        }
        if n_numeric >= 3 && profile.table.n_rows >= 100 {
            out.push(Recommendation {
                tool: "isolation_forest",
                reason: format!(
                    "{n_numeric} numeric dimensions and {} rows: enough for \
                     multivariate row-level anomaly detection",
                    profile.table.n_rows
                ),
            });
        }
    }

    let dominant = profile
        .alerts
        .iter()
        .filter(|a| a.kind == AlertKind::DominantValue)
        .count();
    if dominant > 0 {
        out.push(Recommendation {
            tool: "fahes",
            reason: format!(
                "{dominant} column(s) show a dominant repeated value — the \
                 disguised-missing-value signature"
            ),
        });
    } else if n_string > 0 || n_numeric > 0 {
        out.push(Recommendation {
            tool: "fahes",
            reason: "screen for disguised missing values (sentinels, placeholders)".into(),
        });
    }

    if rules.active().count() > 0 {
        out.push(Recommendation {
            tool: "nadeef",
            reason: format!(
                "{} active FD rule(s) available for violation detection",
                rules.active().count()
            ),
        });
        out.push(Recommendation {
            tool: "holoclean",
            reason: "rules plus statistics: probabilistic signal combination applies".into(),
        });
    }

    if n_string > 0 {
        out.push(Recommendation {
            tool: "katara",
            reason: format!("{n_string} string column(s) to align against the knowledge base"),
        });
    }

    out.push(Recommendation {
        tool: "min_k",
        reason: "ensemble vote over the statistical tools for a high-precision pass".into(),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_fd::{Fd, FdRule};
    use datalens_profile::ProfileConfig;
    use datalens_table::{Column, Table};

    fn profile_of(t: &Table) -> ProfileReport {
        ProfileReport::build(t, &ProfileConfig::default())
    }

    fn tools(recs: &[Recommendation]) -> Vec<&'static str> {
        recs.iter().map(|r| r.tool).collect()
    }

    #[test]
    fn numeric_table_gets_statistical_tools() {
        let t = Table::new(
            "t",
            vec![Column::from_f64(
                "x",
                (0..50).map(|i| Some(i as f64)).collect::<Vec<_>>(),
            )],
        )
        .unwrap();
        let recs = recommend_tools(&profile_of(&t), &RuleSet::new());
        let names = tools(&recs);
        assert!(names.contains(&"sd"));
        assert!(names.contains(&"iqr"));
        assert!(!names.contains(&"nadeef"), "no rules, no nadeef");
        assert!(!names.contains(&"katara"), "no strings, no katara");
    }

    #[test]
    fn missing_values_trigger_mv_detector_first() {
        let t = Table::new(
            "t",
            vec![Column::from_f64("x", [Some(1.0), None, Some(3.0)])],
        )
        .unwrap();
        let recs = recommend_tools(&profile_of(&t), &RuleSet::new());
        assert_eq!(recs[0].tool, "mv_detector");
        assert!(recs[0].reason.contains("missing"));
    }

    #[test]
    fn rules_bring_in_rule_based_tools() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("zip", [Some(1), Some(2)]),
                Column::from_str_vals("city", [Some("a"), Some("b")]),
            ],
        )
        .unwrap();
        let mut rules = RuleSet::new();
        rules.add(FdRule::user_defined(
            Fd::new(vec!["zip".into()], "city".into()).unwrap(),
        ));
        let names = tools(&recommend_tools(&profile_of(&t), &rules));
        assert!(names.contains(&"nadeef"));
        assert!(names.contains(&"holoclean"));
        assert!(names.contains(&"katara"));
    }

    #[test]
    fn skew_prefers_iqr_over_sd() {
        let mut vals: Vec<Option<f64>> = vec![Some(1.0); 40];
        vals.extend([Some(500.0), Some(900.0), Some(1500.0)]);
        let t = Table::new("t", vec![Column::from_f64("x", vals)]).unwrap();
        let recs = recommend_tools(&profile_of(&t), &RuleSet::new());
        let names = tools(&recs);
        let iqr_pos = names.iter().position(|&n| n == "iqr").unwrap();
        let sd_pos = names.iter().position(|&n| n == "sd").unwrap();
        assert!(iqr_pos < sd_pos, "{names:?}");
    }

    #[test]
    fn every_recommended_tool_resolves() {
        let dd = datalens_datasets::registry::dirty("hospital", 0).unwrap();
        let recs = recommend_tools(&profile_of(&dd.dirty), &RuleSet::new());
        assert!(!recs.is_empty());
        for r in &recs {
            assert!(
                datalens_detect::detector_by_name(r.tool).is_some(),
                "{} unknown",
                r.tool
            );
            assert!(!r.reason.is_empty());
        }
        // min_k is always the closing recommendation.
        assert_eq!(recs.last().unwrap().tool, "min_k");
    }
}

//! # datalens
//!
//! The core of the DataLens reproduction: an interactive, ML-oriented
//! tabular data-quality dashboard (EDBT 2025 demonstration paper by
//! Abdelaal, Kreuz, Lokadjaja & Schöning), implemented as a Rust library.
//!
//! The [`controller::DashboardController`] orchestrates the full pipeline
//! of Figure 1:
//!
//! 1. **ingestion** ([`ingest`]): preloaded datasets, CSV uploads, or a
//!    SQL source;
//! 2. **profiling** (`datalens-profile`) and **rule extraction**
//!    (`datalens-fd`: TANE / HyFD) with user validation ([`user`]);
//! 3. **error detection** (`datalens-detect`: SD, IQR, Isolation Forest,
//!    MV, FAHES, NADEEF, KATARA, HoloClean, RAHA, Min-K) with
//!    consolidation and user tagging;
//! 4. **repair** (`datalens-repair`: standard / ML imputers, HoloClean);
//! 5. **iterative cleaning** ([`iterative`]): TPE search over
//!    (detector × repairer) scored by the downstream model (Figure 5);
//! 6. **reproducibility** ([`datasheet`], `datalens-tracking`,
//!    `datalens-delta`): DataSheets, MLflow-style runs, Delta versioning;
//! 7. **presentation** ([`dashboard`], [`quality`]): the four text tabs
//!    and the quality panel; the REST tool bus ([`service`]); and the
//!    multi-session job service ([`jobs`]): queued, cancellable pipeline
//!    runs behind the REST bus.
//!
//! ```
//! use datalens::controller::{DashboardConfig, DashboardController, RuleMiner};
//!
//! let mut dash = DashboardController::new(DashboardConfig::default()).unwrap();
//! dash.ingest_csv_text("demo.csv", "zip,city\n1,ulm\n1,ulm\n2,bonn\n").unwrap();
//! dash.discover_rules(RuleMiner::Tane).unwrap();
//! dash.run_detection(&["sd", "mv_detector", "nadeef"]).unwrap();
//! let sheet = dash.generate_datasheet().unwrap();
//! assert_eq!(sheet.shape, (3, 2));
//! ```

pub mod controller;
pub mod dashboard;
pub mod datasheet;
pub mod engine;
pub mod error;
pub mod ingest;
pub mod iterative;
pub mod jobs;
pub mod quality;
pub mod recommend;
pub mod service;
pub mod user;

pub use controller::{DashboardConfig, DashboardController, RahaOutcome, RuleMiner};
pub use datasheet::DataSheet;
pub use engine::{Engine, EngineConfig, MinerSpec, Stage, StageKind, StageReport};
pub use error::DataLensError;
pub use ingest::{DataSource, InMemorySqlSource, SqlSource};
pub use iterative::{
    run_iterative_cleaning, IterativeCleaningConfig, IterativeCleaningReport, SamplerKind,
    TrialOutcome,
};
pub use jobs::{
    JobError, JobService, JobServiceConfig, JobSpec, JobState, JobStatus, JobStep, SessionInfo,
};
pub use quality::QualityMetrics;
pub use recommend::{recommend_tools, Recommendation};
pub use user::{SimulatedUser, TagList, UserOracle};

//! The user-in-the-loop module (§2/§3): tuple labeling, value tagging,
//! and rule validation — with a ground-truth-driven simulated user for
//! reproducible evaluation (the substitution for the paper's human
//! participants; Figure 3 measures exactly this loop).

use rand::prelude::*;
use rand::rngs::StdRng;

use datalens_datasets::DirtyDataset;
use datalens_table::Table;

/// Something that can review a tuple and mark its dirty columns.
pub trait UserOracle {
    /// Review `row` of `table`; return the column indices the user marks
    /// dirty (empty = tuple looks clean, i.e. "skip").
    fn review_tuple(&mut self, table: &Table, row: usize) -> Vec<usize>;
}

/// A simulated user backed by ground truth, with optional imperfection:
/// `miss_rate` = chance of overlooking a dirty cell, `false_flag_rate` =
/// chance of wrongly flagging a clean cell.
pub struct SimulatedUser<'a> {
    truth: &'a DirtyDataset,
    miss_rate: f64,
    false_flag_rate: f64,
    rng: StdRng,
}

impl<'a> SimulatedUser<'a> {
    /// A perfect oracle.
    pub fn perfect(truth: &'a DirtyDataset) -> SimulatedUser<'a> {
        SimulatedUser {
            truth,
            miss_rate: 0.0,
            false_flag_rate: 0.0,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// A noisy human: misses some errors, occasionally flags clean cells.
    pub fn noisy(
        truth: &'a DirtyDataset,
        miss_rate: f64,
        false_flag_rate: f64,
        seed: u64,
    ) -> SimulatedUser<'a> {
        SimulatedUser {
            truth,
            miss_rate: miss_rate.clamp(0.0, 1.0),
            false_flag_rate: false_flag_rate.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl UserOracle for SimulatedUser<'_> {
    fn review_tuple(&mut self, table: &Table, row: usize) -> Vec<usize> {
        let mut dirty = Vec::new();
        for c in 0..table.n_cols() {
            let cell = datalens_table::CellRef::new(row, c);
            let is_error = self.truth.is_error(cell);
            let flagged = if is_error {
                self.miss_rate == 0.0 || !self.rng.random_bool(self.miss_rate)
            } else {
                self.false_flag_rate > 0.0 && self.rng.random_bool(self.false_flag_rate)
            };
            if flagged {
                dirty.push(c);
            }
        }
        dirty
    }
}

/// A decision the user can make about a discovered rule (the "review,
/// confirm, modify, or reject" flow of §3).
#[derive(Debug, Clone, PartialEq)]
pub enum RuleDecision {
    Confirm,
    Reject,
    Modify(datalens_fd::Fd),
}

/// The user's tagged known-dirty values (§3 "data tagging").
#[derive(Debug, Clone, Default)]
pub struct TagList {
    values: Vec<String>,
}

impl TagList {
    pub fn new() -> TagList {
        TagList::default()
    }

    /// Add a tag; duplicates are ignored. Returns true if added.
    pub fn add(&mut self, value: impl Into<String>) -> bool {
        let value = value.into();
        if self.values.contains(&value) {
            return false;
        }
        self.values.push(value);
        true
    }

    pub fn remove(&mut self, value: &str) -> bool {
        let before = self.values.len();
        self.values.retain(|v| v != value);
        before != self.values.len()
    }

    pub fn values(&self) -> &[String] {
        &self.values
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_datasets::{inject, InjectionConfig};
    use datalens_table::{CellRef, Column};

    fn truth() -> DirtyDataset {
        let clean = Table::new(
            "t",
            vec![Column::from_f64(
                "x",
                (0..100).map(|i| Some(i as f64)).collect::<Vec<_>>(),
            )],
        )
        .unwrap();
        inject(&clean, &InjectionConfig::uniform(0.1, 4))
    }

    #[test]
    fn perfect_user_matches_ground_truth() {
        let dd = truth();
        let mut user = SimulatedUser::perfect(&dd);
        for row in 0..dd.dirty.n_rows() {
            let flags = user.review_tuple(&dd.dirty, row);
            let expected: Vec<usize> = (0..dd.dirty.n_cols())
                .filter(|&c| dd.is_error(CellRef::new(row, c)))
                .collect();
            assert_eq!(flags, expected, "row {row}");
        }
    }

    #[test]
    fn fully_blind_user_sees_nothing() {
        let dd = truth();
        let mut user = SimulatedUser::noisy(&dd, 1.0, 0.0, 1);
        let total: usize = (0..dd.dirty.n_rows())
            .map(|r| user.review_tuple(&dd.dirty, r).len())
            .sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn noisy_user_misses_some() {
        let dd = truth();
        let mut perfect = SimulatedUser::perfect(&dd);
        let mut noisy = SimulatedUser::noisy(&dd, 0.5, 0.0, 2);
        let perfect_total: usize = (0..dd.dirty.n_rows())
            .map(|r| perfect.review_tuple(&dd.dirty, r).len())
            .sum();
        let noisy_total: usize = (0..dd.dirty.n_rows())
            .map(|r| noisy.review_tuple(&dd.dirty, r).len())
            .sum();
        assert!(noisy_total < perfect_total);
        assert!(noisy_total > 0);
    }

    #[test]
    fn tag_list_dedupes() {
        let mut tags = TagList::new();
        assert!(tags.add("-1"));
        assert!(!tags.add("-1"));
        assert!(tags.add("99999"));
        assert_eq!(tags.values(), ["-1", "99999"]);
        assert!(tags.remove("-1"));
        assert!(!tags.remove("-1"));
        assert_eq!(tags.values(), ["99999"]);
    }
}

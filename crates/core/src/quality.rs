//! The Data Quality panel (right segment of Figure 2): table-level quality
//! metrics computed from the profile, the rule set, and the consolidated
//! detections.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use datalens_detect::{DetectionContext, Detector, NadeefDetector};
use datalens_fd::RuleSet;
use datalens_table::Table;

/// The metric panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityMetrics {
    /// 1 − fraction of null cells.
    pub completeness: f64,
    /// 1 − fraction of cells flagged by the detection run.
    pub validity: f64,
    /// 1 − fraction of cells violating active FD rules.
    pub consistency: f64,
    /// 1 − fraction of duplicate rows.
    pub uniqueness: f64,
    /// Unweighted mean of the four.
    pub overall: f64,
}

impl QualityMetrics {
    /// Compute the panel. `flagged_cells` is the consolidated detection
    /// count (0 when detection has not run yet).
    pub fn compute(table: &Table, rules: &RuleSet, flagged_cells: usize) -> QualityMetrics {
        let total_cells = (table.n_rows() * table.n_cols()).max(1);
        let completeness = 1.0 - table.null_count() as f64 / total_cells as f64;
        let validity = 1.0 - (flagged_cells.min(total_cells)) as f64 / total_cells as f64;

        let ctx = DetectionContext::with_rules(rules.clone());
        let violations = NadeefDetector::default().detect(table, &ctx).len();
        let consistency = 1.0 - (violations.min(total_cells)) as f64 / total_cells as f64;

        let dups = table.duplicate_rows().len();
        let uniqueness = 1.0 - dups as f64 / table.n_rows().max(1) as f64;

        let overall = (completeness + validity + consistency + uniqueness) / 4.0;
        QualityMetrics {
            completeness,
            validity,
            consistency,
            uniqueness,
            overall,
        }
    }

    /// As a name → value map (DataSheet embedding). Values are rounded to
    /// six decimals so DataSheets compare bit-exactly after a JSON round
    /// trip.
    pub fn as_map(&self) -> BTreeMap<String, f64> {
        fn round6(v: f64) -> f64 {
            (v * 1e6).round() / 1e6
        }
        let mut m = BTreeMap::new();
        m.insert("completeness".into(), round6(self.completeness));
        m.insert("validity".into(), round6(self.validity));
        m.insert("consistency".into(), round6(self.consistency));
        m.insert("uniqueness".into(), round6(self.uniqueness));
        m.insert("overall".into(), round6(self.overall));
        m
    }

    /// Render as the dashboard's right-hand panel.
    pub fn render_text(&self) -> String {
        fn bar(v: f64) -> String {
            let filled = (v.clamp(0.0, 1.0) * 20.0).round() as usize;
            format!("[{}{}]", "█".repeat(filled), "░".repeat(20 - filled))
        }
        format!(
            "Data Quality\n  completeness {} {:.1}%\n  validity     {} {:.1}%\n  consistency  {} {:.1}%\n  uniqueness   {} {:.1}%\n  overall      {} {:.1}%\n",
            bar(self.completeness),
            self.completeness * 100.0,
            bar(self.validity),
            self.validity * 100.0,
            bar(self.consistency),
            self.consistency * 100.0,
            bar(self.uniqueness),
            self.uniqueness * 100.0,
            bar(self.overall),
            self.overall * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_fd::{Fd, FdRule};
    use datalens_table::Column;

    #[test]
    fn clean_table_scores_one() {
        let t = Table::new(
            "t",
            vec![Column::from_i64("x", [Some(1), Some(2), Some(3)])],
        )
        .unwrap();
        let q = QualityMetrics::compute(&t, &RuleSet::new(), 0);
        assert_eq!(q.completeness, 1.0);
        assert_eq!(q.validity, 1.0);
        assert_eq!(q.consistency, 1.0);
        assert_eq!(q.uniqueness, 1.0);
        assert_eq!(q.overall, 1.0);
    }

    #[test]
    fn nulls_reduce_completeness() {
        let t = Table::new(
            "t",
            vec![Column::from_i64("x", [Some(1), None, Some(3), None])],
        )
        .unwrap();
        let q = QualityMetrics::compute(&t, &RuleSet::new(), 0);
        assert!((q.completeness - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fd_violations_reduce_consistency() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("zip", [Some(1), Some(1), Some(1)]),
                Column::from_str_vals("city", [Some("a"), Some("a"), Some("b")]),
            ],
        )
        .unwrap();
        let mut rules = RuleSet::new();
        rules.add(FdRule::user_defined(
            Fd::new(vec!["zip".into()], "city".into()).unwrap(),
        ));
        let q = QualityMetrics::compute(&t, &rules, 0);
        assert!(q.consistency < 1.0);
    }

    #[test]
    fn duplicates_reduce_uniqueness() {
        let t = Table::new(
            "t",
            vec![Column::from_i64("x", [Some(1), Some(1), Some(2), Some(2)])],
        )
        .unwrap();
        let q = QualityMetrics::compute(&t, &RuleSet::new(), 0);
        assert!((q.uniqueness - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_and_map() {
        let t = Table::new("t", vec![Column::from_i64("x", [Some(1)])]).unwrap();
        let q = QualityMetrics::compute(&t, &RuleSet::new(), 0);
        let text = q.render_text();
        assert!(text.contains("completeness"));
        assert!(text.contains("100.0%"));
        assert_eq!(q.as_map().len(), 5);
    }
}

//! The DataLens command-line interface: the dashboard's pipeline as
//! terminal subcommands over CSV files.
//!
//! ```text
//! datalens datasets                               list preloaded datasets
//! datalens profile  <file.csv>                    Data Profile tab
//! datalens rules    <file.csv> [--approx G3]      FD discovery (TANE)
//! datalens detect   <file.csv> --tools sd,iqr     run detectors (+ --tag V, --rule "a -> b")
//! datalens repair   <file.csv> --tools sd,iqr --repairer ml_imputer [-o out.csv]
//! datalens dashboard <file.csv> [--tools ...]     render all four tabs
//! datalens serve    [--seed N] [--workers N] [--queue-depth N] [--workspace DIR]
//!                   [--port N] [--http-workers N]
//!                                                 REST tool + job service (Ctrl-C to stop)
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use datalens::controller::{DashboardConfig, DashboardController, RuleMiner};
use datalens::dashboard::{render_dashboard, render_tab, Tab};
use datalens::jobs::rest::job_service_router;
use datalens::jobs::{JobService, JobServiceConfig};
use datalens::service::tool_service_router;
use datalens_health::HealthThresholds;
use datalens_obs::Registry;
use datalens_profile::ProfileMode;
use datalens_rest::{metrics_router, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd {
        "datasets" => cmd_datasets(),
        "profile" => cmd_profile(&args[1..]),
        "rules" => cmd_rules(&args[1..]),
        "detect" => cmd_detect(&args[1..], false),
        "repair" => cmd_detect(&args[1..], true),
        "dashboard" => cmd_dashboard(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: datalens <datasets|profile|rules|detect|repair|dashboard|serve> [args]
  datalens profile data.csv [--profile-mode exact|approx]
  datalens rules data.csv --approx 0.1
  datalens detect data.csv --tools sd,iqr,mv_detector --tag -1 --rule 'zip -> city'
  datalens repair data.csv --tools sd,mv_detector --repairer ml_imputer -o repaired.csv
  datalens dashboard data.csv --tools sd,mv_detector
  datalens serve --seed 0 --workers 4 --queue-depth 32
serve flags:  --workers N      job-service worker pool size (default 4)
              --queue-depth N  bounded job queue capacity (default 32)
              --workspace DIR  persist sessions + tracking runs under DIR
              --port N         listen port (default 0 = ephemeral)
              --http-workers N connection worker-pool size (default 8)
              --max-streams N  concurrent SSE streams cap (default 32;
                            GET /jobs/{id}/events and GET /alerts/events)
health gate:  --degraded-queue-ratio R  queue fill ratio reported degraded (0.5)
              --hold-queue-ratio R      queue fill ratio that holds admissions (1.0)
              --hold-failure-streak N   consecutive failures that hold (5)
              --hold-stream-ratio R     SSE lane fill ratio that holds (1.0)
                            verdict + evidence at GET /health; while the
                            gate holds, submits shed with 429 + Retry-After
common flags: --seed N   seed for stochastic tools
              --threads N   detect/profile fan-out threads (0 = one per core;
                            serve default 1 to keep per-job work single-threaded)
              --profile-mode exact|approx
                            profiling backend: exact statistics (default) or
                            bounded-memory mergeable sketches (HLL distinct,
                            KLL quantiles, space-saving top-k)";

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_values(args: &[String], key: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == key {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn parse_profile_mode(args: &[String]) -> Result<ProfileMode, Box<dyn std::error::Error>> {
    match flag_value(args, "--profile-mode") {
        None => Ok(ProfileMode::default()),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid --profile-mode {v:?} (expected exact|approx)").into()),
    }
}

fn positional(args: &[String]) -> Option<&String> {
    // First argument that is not a flag or a flag's value.
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") || a.starts_with('-') && a.len() > 1 && !a.ends_with(".csv") {
            skip_next = true;
            continue;
        }
        return Some(a);
    }
    None
}

/// Build a controller with the file (or preloaded dataset name) loaded.
fn load(args: &[String]) -> Result<DashboardController, Box<dyn std::error::Error>> {
    let input = positional(args).ok_or("missing input file or dataset name")?;
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let threads: usize = flag_value(args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let profile_mode = parse_profile_mode(args)?;
    let mut dash = DashboardController::new(DashboardConfig {
        workspace_dir: None,
        seed,
        threads,
        profile_mode,
        ..Default::default()
    })?;
    if input.ends_with(".csv") {
        // Streams the file in row-group batches — never holds the
        // whole CSV in memory, so larger-than-RAM inputs work.
        dash.ingest_csv_path(input)?;
    } else {
        dash.ingest_preloaded(input)?;
    }
    Ok(dash)
}

fn cmd_datasets() -> CliResult {
    println!("preloaded datasets:");
    for d in datalens_datasets::catalog() {
        println!(
            "  {:<6} target={:<16} {:?}  — {}",
            d.name, d.target, d.task, d.description
        );
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> CliResult {
    let mut dash = load(args)?;
    print!("{}", render_tab(&mut dash, Tab::DataProfile)?);
    Ok(())
}

fn cmd_rules(args: &[String]) -> CliResult {
    let mut dash = load(args)?;
    let added = match flag_value(args, "--approx").and_then(|v| v.parse::<f64>().ok()) {
        Some(g3) => dash.discover_rules_approx(g3)?,
        None => dash.discover_rules(RuleMiner::Tane)?,
    };
    println!("discovered {added} rules:");
    for r in dash.rules()?.rules() {
        println!("  {}  (g3 {:.4}, {:?})", r.fd, r.g3_error, r.provenance);
    }
    Ok(())
}

fn setup_detection(
    dash: &mut DashboardController,
    args: &[String],
) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    for tag in flag_values(args, "--tag") {
        dash.tag_value(tag)?;
    }
    for rule in flag_values(args, "--rule") {
        dash.add_rule_from_text(&rule)?;
    }
    let tools: Vec<String> = flag_value(args, "--tools")
        .unwrap_or_else(|| "sd,iqr,mv_detector,fahes".to_string())
        .split(',')
        .map(str::to_string)
        .collect();
    let tool_refs: Vec<&str> = tools.iter().map(String::as_str).collect();
    dash.run_detection(&tool_refs)?;
    Ok(tools)
}

fn cmd_detect(args: &[String], and_repair: bool) -> CliResult {
    let mut dash = load(args)?;
    setup_detection(&mut dash, args)?;
    print!("{}", render_tab(&mut dash, Tab::DetectionResults)?);
    if and_repair {
        let repairer = flag_value(args, "--repairer").unwrap_or_else(|| "ml_imputer".into());
        let n = dash.repair(&repairer)?;
        println!("\nrepaired {n} cells with {repairer}");
        if let Some(out) = flag_value(args, "-o").or_else(|| flag_value(args, "--output")) {
            datalens_table::csv::write_csv_path(dash.repaired_table()?, &out)?;
            println!("wrote {out}");
        } else {
            print!("{}", dash.repaired_table()?.head(10));
        }
    }
    print!(
        "\n{}",
        datalens::engine::render_stage_reports(dash.stage_reports()?)
    );
    Ok(())
}

fn cmd_dashboard(args: &[String]) -> CliResult {
    let mut dash = load(args)?;
    if flag_value(args, "--tools").is_some() {
        setup_detection(&mut dash, args)?;
    }
    print!("{}", render_dashboard(&mut dash)?);
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let workers: usize = flag_value(args, "--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let queue_depth: usize = flag_value(args, "--queue-depth")
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let port: u16 = flag_value(args, "--port")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let http_workers: usize = flag_value(args, "--http-workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let threads: usize = flag_value(args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let max_streams: usize = flag_value(args, "--max-streams")
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let workspace_dir = flag_value(args, "--workspace").map(std::path::PathBuf::from);
    let profile_mode = parse_profile_mode(args)?;
    let defaults = HealthThresholds::default();
    let health = HealthThresholds {
        queue_degraded_ratio: flag_value(args, "--degraded-queue-ratio")
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.queue_degraded_ratio),
        queue_hold_ratio: flag_value(args, "--hold-queue-ratio")
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.queue_hold_ratio),
        failure_streak_hold: flag_value(args, "--hold-failure-streak")
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.failure_streak_hold),
        stream_hold_ratio: flag_value(args, "--hold-stream-ratio")
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.stream_hold_ratio),
        ..defaults
    };
    let metrics = Arc::new(Registry::new());
    let service = Arc::new(JobService::new(JobServiceConfig {
        workers,
        queue_depth,
        seed,
        threads,
        workspace_dir,
        metrics: Some(Arc::clone(&metrics)),
        profile_mode,
        health,
        ..JobServiceConfig::default()
    })?);
    let router = tool_service_router(seed)
        .merge(job_service_router(Arc::clone(&service)))
        .merge(metrics_router(Arc::clone(&metrics)));
    let server = Server::start_on(
        &format!("127.0.0.1:{port}"),
        router,
        ServerConfig {
            workers: http_workers,
            max_streams,
            metrics: Some(metrics),
            health_gate: Some(service.health_gate()),
            ..ServerConfig::default()
        },
    )?;
    println!(
        "DataLens service on http://{} ({} job workers, queue depth {}, {} connection workers)",
        server.addr(),
        service.config().workers,
        service.config().queue_depth,
        http_workers,
    );
    println!("tool bus:    GET /tools  POST /detect  POST /repair  POST /profile  PUT /context");
    println!("job service: POST /sessions  POST /sessions/{{id}}/jobs  GET /jobs/{{id}}[/result]  DELETE /jobs/{{id}}");
    println!("streaming:   GET /jobs/{{id}}/events  GET /alerts/events (SSE; try `curl -N`)");
    println!("metrics:     GET /metrics (JSON; ?format=prometheus for text exposition)");
    println!("health:      GET /health (pass/degraded/hold + reason codes; 503 while holding)");
    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

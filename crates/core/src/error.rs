//! The unified error type of the dashboard layer.

use std::fmt;

/// Anything that can go wrong inside the dashboard.
#[derive(Debug)]
pub enum DataLensError {
    Table(datalens_table::TableError),
    Delta(datalens_delta::DeltaError),
    Tracking(datalens_tracking::TrackingError),
    /// The controller was asked to act before the prerequisite step ran
    /// (e.g. repair before detection).
    State(String),
    /// Unknown tool / dataset / version names.
    Unknown(String),
    /// DataSheet (de)serialisation problems.
    DataSheet(String),
    Io(std::io::Error),
}

impl fmt::Display for DataLensError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataLensError::Table(e) => write!(f, "table error: {e}"),
            DataLensError::Delta(e) => write!(f, "versioning error: {e}"),
            DataLensError::Tracking(e) => write!(f, "tracking error: {e}"),
            DataLensError::State(m) => write!(f, "invalid state: {m}"),
            DataLensError::Unknown(m) => write!(f, "unknown: {m}"),
            DataLensError::DataSheet(m) => write!(f, "datasheet error: {m}"),
            DataLensError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DataLensError {}

impl From<datalens_table::TableError> for DataLensError {
    fn from(e: datalens_table::TableError) -> Self {
        DataLensError::Table(e)
    }
}
impl From<datalens_delta::DeltaError> for DataLensError {
    fn from(e: datalens_delta::DeltaError) -> Self {
        DataLensError::Delta(e)
    }
}
impl From<datalens_tracking::TrackingError> for DataLensError {
    fn from(e: datalens_tracking::TrackingError) -> Self {
        DataLensError::Tracking(e)
    }
}
impl From<std::io::Error> for DataLensError {
    fn from(e: std::io::Error) -> Self {
        DataLensError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DataLensError::State("repair before detect".into());
        assert!(e.to_string().contains("invalid state"));
        let e = DataLensError::Unknown("tool 'x'".into());
        assert!(e.to_string().contains("unknown"));
    }
}

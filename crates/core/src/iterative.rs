//! The Iterative Cleaning module (§4, Figure 5): "we conceptualize the
//! selection of error detection and repair tools as a hyperparameter
//! tuning problem … DataLens leverages a Bayesian hyperparameter
//! optimization algorithm [Optuna/TPE] … the iterative process continues
//! for a predetermined number of iterations, or until the accuracy of the
//! ML model reaches a desired threshold."

use serde::{Deserialize, Serialize};

use datalens_datasets::Task;
use datalens_detect::{detector_by_name, DetectionContext};
use datalens_fd::RuleSet;
use datalens_ml::encode::{
    classification_target, regression_target, CategoricalEncoding, TableEncoder,
};
use datalens_ml::metrics::{f1_macro, mse};
use datalens_ml::train_test_split;
use datalens_ml::tree::{Criterion, DecisionTreeClassifier, DecisionTreeRegressor, TreeConfig};
use datalens_optimize::{
    Direction, GridSampler, RandomSampler, Sampler, SearchSpace, Study, TpeSampler,
};
use datalens_repair::{repairer_by_name, RepairContext};
use datalens_table::Table;

use crate::error::DataLensError;

/// Which sampler drives the search (TPE is the paper's choice; Random and
/// Grid exist for the ablation benches; Ucb implements the paper's
/// future-work idea of reinforcement-learning-based tool selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplerKind {
    Tpe,
    Random,
    Grid,
    Ucb,
}

/// Configuration of an iterative-cleaning run.
#[derive(Debug, Clone)]
pub struct IterativeCleaningConfig {
    /// Downstream target column.
    pub target: String,
    /// Regression (scored by MSE, minimised) or classification (macro F1,
    /// maximised) — the two scoring functions §4 defines.
    pub task: Task,
    /// Search iterations (Figure 5 sweeps 5..20).
    pub iterations: usize,
    /// Candidate detectors; empty = a sensible default set.
    pub detectors: Vec<String>,
    /// Candidate repairers; empty = all registered.
    pub repairers: Vec<String>,
    pub sampler: SamplerKind,
    /// Optional early-stop threshold on the score (MSE ≤ t or F1 ≥ t).
    pub score_threshold: Option<f64>,
    /// Also search the downstream model's own hyperparameters (tree depth
    /// and minimum leaf size) jointly with the tool choice — §4: cleaning
    /// tools are "optimized jointly with the typical parameters in ML
    /// pipelines".
    pub include_model_params: bool,
    pub test_fraction: f64,
    pub seed: u64,
}

impl IterativeCleaningConfig {
    pub fn new(target: impl Into<String>, task: Task) -> IterativeCleaningConfig {
        IterativeCleaningConfig {
            target: target.into(),
            task,
            iterations: 10,
            detectors: Vec::new(),
            repairers: Vec::new(),
            sampler: SamplerKind::Tpe,
            score_threshold: None,
            include_model_params: false,
            test_fraction: 0.25,
            seed: 0,
        }
    }
}

/// One evaluated (detector, repairer[, model hyperparameters]) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    pub detector: String,
    pub repairer: String,
    /// Jointly-searched model hyperparameters (empty unless
    /// `include_model_params` was set).
    #[serde(default)]
    pub model_params: std::collections::BTreeMap<String, i64>,
    pub score: f64,
}

/// The full search result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterativeCleaningReport {
    pub trials: Vec<TrialOutcome>,
    pub best: TrialOutcome,
    /// Best score seen after each iteration (Figure 5's series).
    pub best_curve: Vec<f64>,
    /// Model score on the raw dirty data (lower baseline).
    pub dirty_baseline: f64,
    /// Model score on the ground-truth clean data, when available
    /// (upper baseline).
    pub clean_baseline: Option<f64>,
    /// Iterations actually executed (early stop may cut the budget).
    pub iterations_run: usize,
}

/// Pull a categorical (string) parameter out of a trial, as a typed
/// error when the sampler produced something unexpected.
fn categorical(params: &datalens_optimize::Params, key: &str) -> Result<String, DataLensError> {
    params
        .get(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| DataLensError::State(format!("trial missing categorical param `{key}`")))
}

/// Materialise the tree hyperparameters a trial selected (defaults when
/// model parameters are not part of the space).
fn tree_from_params(params: &datalens_optimize::Params, joint: bool) -> TreeConfig {
    let mut tree = TreeConfig {
        max_depth: 10,
        min_samples_leaf: 2,
        ..TreeConfig::default()
    };
    if joint {
        if let Some(d) = params.get("max_depth").and_then(|v| v.as_i64()) {
            tree.max_depth = d.max(1) as usize;
        }
        if let Some(l) = params.get("min_samples_leaf").and_then(|v| v.as_i64()) {
            tree.min_samples_leaf = l.max(1) as usize;
        }
    }
    tree
}

/// Default candidate detectors for the search space.
pub fn default_search_detectors() -> Vec<String> {
    [
        "sd",
        "iqr",
        "mv_detector",
        "fahes",
        "holoclean",
        "raha",
        "min_k",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Train the downstream model on `table` and score it: the §4 scoring
/// function (test MSE for regression, test macro-F1 for classification).
/// Rows with a null target are excluded. Uses the default model
/// hyperparameters; see [`train_and_score_with`] for the joint-search
/// variant.
pub fn train_and_score(
    table: &Table,
    target: &str,
    task: Task,
    test_fraction: f64,
    seed: u64,
) -> Result<f64, DataLensError> {
    train_and_score_with(
        table,
        target,
        task,
        test_fraction,
        seed,
        &TreeConfig {
            max_depth: 10,
            min_samples_leaf: 2,
            ..TreeConfig::default()
        },
    )
}

/// [`train_and_score`] with explicit model hyperparameters.
pub fn train_and_score_with(
    table: &Table,
    target: &str,
    task: Task,
    test_fraction: f64,
    seed: u64,
    tree: &TreeConfig,
) -> Result<f64, DataLensError> {
    let target_col = table
        .column_by_name(target)
        .ok_or_else(|| DataLensError::Unknown(format!("target column {target:?}")))?;
    let encoder = TableEncoder::fit(table, &[target], CategoricalEncoding::Ordinal);

    match task {
        Task::Regression => {
            let (rows, y) = regression_target(target_col);
            if rows.len() < 8 {
                return Err(DataLensError::State(
                    "too few labelled rows to train".into(),
                ));
            }
            let x: Vec<Vec<f64>> = rows.iter().map(|&r| encoder.encode_row(table, r)).collect();
            let split = train_test_split(rows.len(), test_fraction, seed);
            let train_x: Vec<Vec<f64>> = split.train.iter().map(|&i| x[i].clone()).collect();
            let train_y: Vec<f64> = split.train.iter().map(|&i| y[i]).collect();
            let test_x: Vec<Vec<f64>> = split.test.iter().map(|&i| x[i].clone()).collect();
            let test_y: Vec<f64> = split.test.iter().map(|&i| y[i]).collect();
            let mut model = DecisionTreeRegressor::new(tree.clone());
            model.fit(&train_x, &train_y);
            Ok(mse(&test_y, &model.predict(&test_x)))
        }
        Task::Classification => {
            let (rows, y) = classification_target(target_col);
            if rows.len() < 8 {
                return Err(DataLensError::State(
                    "too few labelled rows to train".into(),
                ));
            }
            let x: Vec<Vec<f64>> = rows.iter().map(|&r| encoder.encode_row(table, r)).collect();
            let split = train_test_split(rows.len(), test_fraction, seed);
            let train_x: Vec<Vec<f64>> = split.train.iter().map(|&i| x[i].clone()).collect();
            let train_y: Vec<String> = split.train.iter().map(|&i| y[i].clone()).collect();
            let test_x: Vec<Vec<f64>> = split.test.iter().map(|&i| x[i].clone()).collect();
            let test_y: Vec<String> = split.test.iter().map(|&i| y[i].clone()).collect();
            let mut model = DecisionTreeClassifier::new(tree.clone(), Criterion::Gini);
            model.fit(&train_x, &train_y);
            Ok(f1_macro(&test_y, &model.predict(&test_x)))
        }
    }
}

/// Clean `dirty` with one (detector, repairer) combination and score the
/// downstream model on the result (default model hyperparameters).
pub fn clean_and_score(
    dirty: &Table,
    rules: &RuleSet,
    detector: &str,
    repairer: &str,
    config: &IterativeCleaningConfig,
) -> Result<f64, DataLensError> {
    clean_and_score_with(
        dirty,
        rules,
        detector,
        repairer,
        config,
        &TreeConfig {
            max_depth: 10,
            min_samples_leaf: 2,
            ..TreeConfig::default()
        },
    )
}

/// [`clean_and_score`] with explicit model hyperparameters.
pub fn clean_and_score_with(
    dirty: &Table,
    rules: &RuleSet,
    detector: &str,
    repairer: &str,
    config: &IterativeCleaningConfig,
    tree: &TreeConfig,
) -> Result<f64, DataLensError> {
    let det = detector_by_name(detector)
        .ok_or_else(|| DataLensError::Unknown(format!("detector {detector:?}")))?;
    let rep = repairer_by_name(repairer)
        .ok_or_else(|| DataLensError::Unknown(format!("repairer {repairer:?}")))?;
    let ctx = DetectionContext {
        rules: rules.clone(),
        tagged_values: Vec::new(),
        seed: config.seed,
    };
    let mut detection = det.detect(dirty, &ctx);
    // Never let the cleaner touch the target column: the paper protects
    // the label (it is what the model is scored on).
    if let Some(target_idx) = dirty.column_index(&config.target) {
        detection.cells.retain(|c| c.col != target_idx);
    }
    let repaired = rep
        .repair(
            dirty,
            &detection.cells,
            &RepairContext {
                rules: rules.clone(),
                seed: config.seed,
            },
        )
        .table;
    train_and_score_with(
        &repaired,
        &config.target,
        config.task,
        config.test_fraction,
        config.seed,
        tree,
    )
}

/// Run the full iterative-cleaning search.
///
/// `clean` is the optional ground-truth table for the upper baseline
/// (available for the preloaded datasets, not for user uploads).
pub fn run_iterative_cleaning(
    dirty: &Table,
    rules: &RuleSet,
    config: &IterativeCleaningConfig,
    clean: Option<&Table>,
) -> Result<IterativeCleaningReport, DataLensError> {
    let detectors = if config.detectors.is_empty() {
        default_search_detectors()
    } else {
        config.detectors.clone()
    };
    let repairers = if config.repairers.is_empty() {
        datalens_repair::REPAIRER_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        config.repairers.clone()
    };

    let direction = match config.task {
        Task::Regression => Direction::Minimize,
        Task::Classification => Direction::Maximize,
    };
    let mut space = SearchSpace::new()
        .categorical("detector", detectors.clone())
        .categorical("repairer", repairers.clone());
    if config.include_model_params {
        space = space.int("max_depth", 4, 14).int("min_samples_leaf", 1, 8);
    }
    let sampler: Box<dyn Sampler> = match config.sampler {
        SamplerKind::Tpe => Box::new(TpeSampler::new(config.seed)),
        SamplerKind::Random => Box::new(RandomSampler::new(config.seed)),
        SamplerKind::Grid => Box::new(GridSampler::new()),
        SamplerKind::Ucb => Box::new(datalens_optimize::UcbSampler::new()),
    };
    let mut study = Study::new(direction, space, sampler);

    let dirty_baseline = train_and_score(
        dirty,
        &config.target,
        config.task,
        config.test_fraction,
        config.seed,
    )?;
    let clean_baseline = match clean {
        Some(c) => Some(train_and_score(
            c,
            &config.target,
            config.task,
            config.test_fraction,
            config.seed,
        )?),
        None => None,
    };

    let mut trials = Vec::new();
    let mut iterations_run = 0;
    for _ in 0..config.iterations {
        let trial = study.ask();
        let detector = categorical(&trial.params, "detector")?;
        let repairer = categorical(&trial.params, "repairer")?;
        let tree = tree_from_params(&trial.params, config.include_model_params);
        let score = clean_and_score_with(dirty, rules, &detector, &repairer, config, &tree)
            .unwrap_or(match direction {
                Direction::Minimize => f64::INFINITY,
                Direction::Maximize => f64::NEG_INFINITY,
            });
        study.tell(trial.id, score);
        let mut model_params = std::collections::BTreeMap::new();
        if config.include_model_params {
            model_params.insert("max_depth".to_string(), tree.max_depth as i64);
            model_params.insert("min_samples_leaf".to_string(), tree.min_samples_leaf as i64);
        }
        trials.push(TrialOutcome {
            detector,
            repairer,
            model_params,
            score,
        });
        iterations_run += 1;
        if let Some(threshold) = config.score_threshold {
            if score.is_finite() && !direction.better(threshold, score) {
                break; // score already at/better than the threshold
            }
        }
    }

    let best_trial = study
        .best_trial()
        .ok_or_else(|| DataLensError::State("no trial produced a finite score".into()))?;
    let best_tree = tree_from_params(&best_trial.params, config.include_model_params);
    let mut best_model_params = std::collections::BTreeMap::new();
    if config.include_model_params {
        best_model_params.insert("max_depth".to_string(), best_tree.max_depth as i64);
        best_model_params.insert(
            "min_samples_leaf".to_string(),
            best_tree.min_samples_leaf as i64,
        );
    }
    let best = TrialOutcome {
        detector: categorical(&best_trial.params, "detector")?,
        repairer: categorical(&best_trial.params, "repairer")?,
        model_params: best_model_params,
        score: best_trial
            .value
            .ok_or_else(|| DataLensError::State("best trial has no value".into()))?,
    };
    Ok(IterativeCleaningReport {
        trials,
        best,
        best_curve: study.best_value_curve(),
        dirty_baseline,
        clean_baseline,
        iterations_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_datasets::registry;

    fn small_config(task: Task, target: &str, iterations: usize) -> IterativeCleaningConfig {
        IterativeCleaningConfig {
            iterations,
            // Keep the test fast: cheap detectors only.
            detectors: vec!["sd".into(), "mv_detector".into(), "iqr".into()],
            repairers: vec!["standard_imputer".into(), "ml_imputer".into()],
            ..IterativeCleaningConfig::new(target, task)
        }
    }

    #[test]
    fn regression_search_beats_dirty_baseline() {
        let dd = registry::dirty("nasa", 3).unwrap();
        let cfg = small_config(Task::Regression, datalens_datasets::nasa::TARGET, 6);
        let report =
            run_iterative_cleaning(&dd.dirty, &RuleSet::new(), &cfg, Some(&dd.clean)).unwrap();
        assert_eq!(report.trials.len(), 6);
        assert!(
            report.best.score < report.dirty_baseline,
            "best {:.2} vs dirty {:.2}",
            report.best.score,
            report.dirty_baseline
        );
        let clean = report.clean_baseline.unwrap();
        assert!(clean < report.dirty_baseline);
        // Curve is monotone non-increasing for minimisation.
        for w in report.best_curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn classification_search_runs() {
        let dd = registry::dirty("beers", 3).unwrap();
        let cfg = small_config(Task::Classification, datalens_datasets::beers::TARGET, 4);
        let report =
            run_iterative_cleaning(&dd.dirty, &RuleSet::new(), &cfg, Some(&dd.clean)).unwrap();
        assert!(report.best.score > 0.3, "f1 {:.3}", report.best.score);
        assert!(report.clean_baseline.unwrap() >= report.best.score - 0.2);
    }

    #[test]
    fn joint_model_hyperparameter_search() {
        let dd = registry::dirty("nasa", 3).unwrap();
        let mut cfg = small_config(Task::Regression, datalens_datasets::nasa::TARGET, 6);
        cfg.include_model_params = true;
        let report = run_iterative_cleaning(&dd.dirty, &RuleSet::new(), &cfg, None).unwrap();
        // Every trial records its sampled model hyperparameters, in range.
        for t in &report.trials {
            let d = t.model_params["max_depth"];
            let l = t.model_params["min_samples_leaf"];
            assert!((4..=14).contains(&d), "depth {d}");
            assert!((1..=8).contains(&l), "leaf {l}");
        }
        assert!(!report.best.model_params.is_empty());
        assert!(report.best.score < report.dirty_baseline);
    }

    #[test]
    fn early_stop_honours_threshold() {
        let dd = registry::dirty("nasa", 3).unwrap();
        let mut cfg = small_config(Task::Regression, datalens_datasets::nasa::TARGET, 10);
        cfg.score_threshold = Some(f64::INFINITY); // any finite score passes
        let report = run_iterative_cleaning(&dd.dirty, &RuleSet::new(), &cfg, None).unwrap();
        assert_eq!(report.iterations_run, 1);
    }

    #[test]
    fn unknown_target_errors() {
        let dd = registry::dirty("nasa", 0).unwrap();
        let cfg = small_config(Task::Regression, "no_such_column", 2);
        assert!(matches!(
            run_iterative_cleaning(&dd.dirty, &RuleSet::new(), &cfg, None),
            Err(DataLensError::Unknown(_))
        ));
    }

    #[test]
    fn train_and_score_is_deterministic() {
        let dd = registry::dirty("nasa", 1).unwrap();
        let a = train_and_score(
            &dd.dirty,
            datalens_datasets::nasa::TARGET,
            Task::Regression,
            0.25,
            7,
        )
        .unwrap();
        let b = train_and_score(
            &dd.dirty,
            datalens_datasets::nasa::TARGET,
            Task::Regression,
            0.25,
            7,
        )
        .unwrap();
        assert_eq!(a, b);
    }
}

//! DataSheets (§5): JSON documents that "compile an array of details about
//! the dataset, including the dataset's name, locations for both the input
//! dirty dataset and the repaired dataset, the shape of the dataset, the
//! detection tools applied, the number of erroneous cells identified, the
//! repair tools executed, and the configurations of such tools" — plus the
//! Delta version numbers before and after repair, so a DataSheet can be
//! re-uploaded to reproduce the same preparation steps.

use std::collections::BTreeMap;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::engine::StageReport;
use crate::error::DataLensError;
use crate::ingest::DataSource;

/// The serialisable DataSheet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSheet {
    /// Format version of the sheet itself.
    pub datasheet_version: u32,
    pub dataset_name: String,
    pub source: DataSource,
    /// Where the dirty input lives on disk (if persisted).
    pub dirty_path: Option<String>,
    /// Where the repaired output lives on disk (if persisted).
    pub repaired_path: Option<String>,
    /// (rows, columns).
    pub shape: (usize, usize),
    /// Detection tools applied, in execution order.
    pub detection_tools: Vec<String>,
    /// Distinct erroneous cells found after consolidation.
    pub n_erroneous_cells: usize,
    /// Repair tools executed, in order.
    pub repair_tools: Vec<String>,
    /// Tool configurations (name → rendered config).
    pub tool_configurations: BTreeMap<String, String>,
    /// Active FD rules at detection time (rendered `lhs -> rhs`).
    pub rules: Vec<String>,
    /// User-tagged dirty values.
    pub tagged_values: Vec<String>,
    /// Delta version the detection ran against.
    pub detect_version: Option<u64>,
    /// Delta version the repaired table was committed as.
    pub repaired_version: Option<u64>,
    /// Data-quality metrics snapshot (name → value).
    pub quality_metrics: BTreeMap<String, f64>,
    /// Per-stage engine instrumentation (wall time, volumes, flags).
    /// Absent in sheets written before the engine existed.
    #[serde(default)]
    pub stage_reports: Vec<StageReport>,
    /// Seed used for stochastic tools.
    pub seed: u64,
}

impl DataSheet {
    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> Result<String, DataLensError> {
        serde_json::to_string_pretty(self).map_err(|e| DataLensError::DataSheet(e.to_string()))
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<DataSheet, DataLensError> {
        serde_json::from_str(text).map_err(|e| DataLensError::DataSheet(e.to_string()))
    }

    /// Write to a file (the dashboard's "download" button).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DataLensError> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Read back from a file (the "upload to reproduce" path).
    pub fn load(path: impl AsRef<Path>) -> Result<DataSheet, DataLensError> {
        let text = std::fs::read_to_string(path)?;
        DataSheet::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sheet() -> DataSheet {
        let mut configs = BTreeMap::new();
        configs.insert("sd".into(), "k=3.0".into());
        let mut metrics = BTreeMap::new();
        metrics.insert("completeness".into(), 0.97);
        DataSheet {
            datasheet_version: 1,
            dataset_name: "nasa".into(),
            source: DataSource::Preloaded {
                name: "nasa".into(),
            },
            dirty_path: Some("datasets/nasa/dirty.csv".into()),
            repaired_path: Some("datasets/nasa/repaired.csv".into()),
            shape: (1200, 6),
            detection_tools: vec!["sd".into(), "fahes".into()],
            n_erroneous_cells: 321,
            repair_tools: vec!["ml_imputer".into()],
            tool_configurations: configs,
            rules: vec!["[zip] -> city".into()],
            tagged_values: vec!["-1".into()],
            detect_version: Some(0),
            repaired_version: Some(1),
            quality_metrics: metrics,
            stage_reports: vec![StageReport {
                stage: "detect".into(),
                detail: "sd".into(),
                wall_ms: 1.5,
                rows_processed: 1200,
                cells_processed: 7200,
                flags_produced: 321,
            }],
            seed: 7,
        }
    }

    #[test]
    fn json_round_trip() {
        let s = sheet();
        let json = s.to_json().unwrap();
        assert!(json.contains("\"dataset_name\": \"nasa\""));
        let back = DataSheet::from_json(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join(format!("datalens_sheet_{}.json", std::process::id()));
        let s = sheet();
        s.save(&path).unwrap();
        let back = DataSheet::load(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            DataSheet::from_json("{oops"),
            Err(DataLensError::DataSheet(_))
        ));
        assert!(matches!(
            DataSheet::from_json("{}"),
            Err(DataLensError::DataSheet(_))
        ));
    }
}

//! The dashboard controller (Figure 1's central box): owns the dataset
//! state and orchestrates profiling, rule extraction, detection, repair,
//! versioning, tracking, and DataSheet generation.

use std::collections::BTreeMap;
use std::path::PathBuf;

use datalens_datasets::DirtyDataset;
use datalens_delta::DeltaTable;
use datalens_detect::{
    detector_by_name, ConsolidatedDetections, Detection, DetectionContext, Detector, RahaConfig,
    RahaSession, TaggedValueDetector,
};
use datalens_fd::{Fd, FdRule, RuleSet};
use datalens_profile::{ProfileMode, ProfileReport};
use datalens_repair::{repairer_by_name, RepairContext};
use datalens_table::{DatasetDir, Table};
use datalens_tracking::{Run, RunStatus, TrackingStore, EXPERIMENT_DETECTION, EXPERIMENT_REPAIR};

use crate::datasheet::DataSheet;
use crate::engine::{Engine, EngineConfig, MinerSpec, StageReport};
use crate::error::DataLensError;
use crate::ingest::{self, DataSource, SqlSource};
use crate::quality::QualityMetrics;
use crate::user::{RuleDecision, TagList, UserOracle};

/// Controller configuration.
#[derive(Debug, Clone, Default)]
pub struct DashboardConfig {
    /// Directory for dataset folders, Delta tables, and the tracking
    /// store. `None` = fully in-memory (no persistence, no versioning).
    pub workspace_dir: Option<PathBuf>,
    /// Seed for stochastic tools.
    pub seed: u64,
    /// Worker threads for the engine's detect fan-out (`0` = one per
    /// available core, `1` = sequential).
    pub threads: usize,
    /// Metrics registry; when set, the engine observes every stage's
    /// wall time into `engine_stage_ms{stage=…}` histograms.
    pub metrics: Option<std::sync::Arc<datalens_obs::Registry>>,
    /// Profiling backend: exact statistics (default) or bounded-memory
    /// mergeable sketches (`--profile-mode approx`).
    pub profile_mode: ProfileMode,
}

/// Which FD miner to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleMiner {
    Tane,
    HyFd,
}

/// Outcome of an interactive RAHA run (feeds Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub struct RahaOutcome {
    pub detection: Detection,
    pub tuples_reviewed: usize,
    pub tuples_labeled: usize,
}

/// Everything the dashboard knows about the loaded dataset.
pub struct DatasetState {
    pub table: Table,
    pub source: DataSource,
    pub dataset_dir: Option<DatasetDir>,
    pub delta: Option<DeltaTable>,
    pub rules: RuleSet,
    pub tags: TagList,
    pub profile: Option<ProfileReport>,
    /// The mode `profile` was computed with; a request for the other
    /// mode recomputes instead of serving the memoised report.
    pub profile_mode: ProfileMode,
    pub detections: Option<ConsolidatedDetections>,
    pub repaired: Option<Table>,
    pub detection_tools_used: Vec<String>,
    pub repair_tools_used: Vec<String>,
    pub tool_configurations: BTreeMap<String, String>,
    pub detect_version: Option<u64>,
    pub repaired_version: Option<u64>,
    /// Instrumentation for every stage the engine executed, in order.
    pub stage_reports: Vec<StageReport>,
}

/// The dashboard controller: a thin façade over the pipeline [`Engine`]
/// that owns the dataset state, persistence, and tracking.
pub struct DashboardController {
    config: DashboardConfig,
    engine: Engine,
    tracking: Option<TrackingStore>,
    state: Option<DatasetState>,
}

impl DashboardController {
    /// Create a controller; with a workspace dir, a tracking store is
    /// opened under `<workspace>/mlruns`.
    pub fn new(config: DashboardConfig) -> Result<DashboardController, DataLensError> {
        let tracking = match &config.workspace_dir {
            Some(dir) => Some(TrackingStore::new(dir.join("mlruns"))?),
            None => None,
        };
        let engine = Engine::new(EngineConfig {
            threads: config.threads,
            seed: config.seed,
        })
        .with_metrics(config.metrics.clone());
        Ok(DashboardController {
            config,
            engine,
            tracking,
            state: None,
        })
    }

    /// The pipeline engine this controller delegates to.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    // --- ingestion -------------------------------------------------------

    /// Load a preloaded dataset (dirty variant).
    pub fn ingest_preloaded(&mut self, name: &str) -> Result<(), DataLensError> {
        let (table, source) = ingest::preloaded(name, self.config.seed)?;
        self.install(table, source)
    }

    /// Load a preloaded dataset when the caller already has the ground
    /// truth (keeps the injected instance and the controller consistent).
    pub fn ingest_dirty_dataset(
        &mut self,
        dd: &DirtyDataset,
        name: &str,
    ) -> Result<(), DataLensError> {
        self.install(
            dd.dirty.clone(),
            DataSource::Preloaded { name: name.into() },
        )
    }

    /// Upload CSV text.
    pub fn ingest_csv_text(&mut self, file_name: &str, text: &str) -> Result<(), DataLensError> {
        let (table, source) = ingest::csv_upload(file_name, text)?;
        self.install(table, source)
    }

    /// Load a CSV file by path, streaming it into row-group chunks
    /// instead of slurping the whole file into a string first.
    pub fn ingest_csv_path(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), DataLensError> {
        let (table, source) = ingest::csv_file(path)?;
        self.install(table, source)
    }

    /// Load a table over a SQL connection.
    pub fn ingest_sql(
        &mut self,
        source: &dyn SqlSource,
        table_name: &str,
    ) -> Result<(), DataLensError> {
        let (table, src) = ingest::sql(source, table_name)?;
        self.install(table, src)
    }

    /// Load an in-memory table directly.
    pub fn ingest_table(&mut self, table: Table) -> Result<(), DataLensError> {
        self.install(table, DataSource::InMemory)
    }

    fn install(&mut self, table: Table, source: DataSource) -> Result<(), DataLensError> {
        // Per §2: a folder named after the upload, holding dirty.csv and
        // the Delta table, created on ingestion.
        let (dataset_dir, delta) = match &self.config.workspace_dir {
            Some(base) => {
                let dir = DatasetDir::create(base.join("datasets"), table.name())?;
                dir.store_dirty(&table)?;
                let delta = DeltaTable::open_or_create(dir.delta_path(), &table, "INGEST")?;
                (Some(dir), Some(delta))
            }
            None => (None, None),
        };
        self.state = Some(DatasetState {
            table,
            source,
            dataset_dir,
            delta,
            rules: RuleSet::new(),
            tags: TagList::new(),
            profile: None,
            profile_mode: ProfileMode::default(),
            detections: None,
            repaired: None,
            detection_tools_used: Vec::new(),
            repair_tools_used: Vec::new(),
            tool_configurations: BTreeMap::new(),
            detect_version: None,
            repaired_version: None,
            stage_reports: Vec::new(),
        });
        Ok(())
    }

    // --- accessors -------------------------------------------------------

    pub fn state(&self) -> Result<&DatasetState, DataLensError> {
        self.state
            .as_ref()
            .ok_or_else(|| DataLensError::State("no dataset loaded".into()))
    }

    fn state_mut(&mut self) -> Result<&mut DatasetState, DataLensError> {
        self.state
            .as_mut()
            .ok_or_else(|| DataLensError::State("no dataset loaded".into()))
    }

    pub fn table(&self) -> Result<&Table, DataLensError> {
        Ok(&self.state()?.table)
    }

    pub fn repaired_table(&self) -> Result<&Table, DataLensError> {
        self.state()?
            .repaired
            .as_ref()
            .ok_or_else(|| DataLensError::State("repair has not run".into()))
    }

    // --- profiling and rules ----------------------------------------------

    /// Run (and cache) the data profile in the configured mode.
    pub fn profile(&mut self) -> Result<&ProfileReport, DataLensError> {
        self.profile_with_mode(self.config.profile_mode)
    }

    /// Run (and cache) the data profile in an explicit mode. The
    /// memoised report is only served when it was built in the same
    /// mode; switching exact ↔ approx recomputes.
    pub fn profile_with_mode(
        &mut self,
        mode: ProfileMode,
    ) -> Result<&ProfileReport, DataLensError> {
        let engine = self.engine.clone();
        let state = self.state_mut()?;
        if state.profile.is_none() || state.profile_mode != mode {
            let (report, stage) = engine.profile_with_mode(&state.table, mode);
            state.profile = Some(report);
            state.profile_mode = mode;
            state.stage_reports.push(stage);
        }
        Ok(state.profile.as_ref().expect("just set"))
    }

    /// Discover FD rules with the chosen miner; results land in the rule
    /// set as Pending.
    pub fn discover_rules(&mut self, miner: RuleMiner) -> Result<usize, DataLensError> {
        let spec = match miner {
            RuleMiner::Tane => MinerSpec::Tane { max_g3_error: 0.0 },
            RuleMiner::HyFd => MinerSpec::HyFd {
                seed: self.config.seed,
            },
        };
        self.mine_rules(spec)
    }

    /// Discover *approximate* FDs (g3 error ≤ `max_g3_error`) with TANE —
    /// the practical mode on dirty data, where the true dependencies are
    /// violated by the very errors we are hunting.
    pub fn discover_rules_approx(&mut self, max_g3_error: f64) -> Result<usize, DataLensError> {
        self.mine_rules(MinerSpec::Tane { max_g3_error })
    }

    fn mine_rules(&mut self, spec: MinerSpec) -> Result<usize, DataLensError> {
        let engine = self.engine.clone();
        let state = self.state_mut()?;
        let (discovered, stage) = engine.mine_rules(&state.table, spec);
        state.stage_reports.push(stage);
        let mut added = 0;
        for r in discovered {
            if state.rules.add(r) {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Apply a user decision to a rule.
    pub fn decide_rule(&mut self, fd: &Fd, decision: RuleDecision) -> Result<bool, DataLensError> {
        let state = self.state_mut()?;
        Ok(match decision {
            RuleDecision::Confirm => state.rules.confirm(fd),
            RuleDecision::Reject => state.rules.reject(fd),
            RuleDecision::Modify(replacement) => state.rules.modify(fd, replacement),
        })
    }

    /// Add a user-defined rule. Determinant and dependent columns must
    /// exist.
    pub fn add_custom_rule(&mut self, fd: Fd) -> Result<bool, DataLensError> {
        let state = self.state_mut()?;
        for col in fd.lhs.iter().chain(std::iter::once(&fd.rhs)) {
            if state.table.column_index(col).is_none() {
                return Err(DataLensError::Unknown(format!("column {col:?}")));
            }
        }
        Ok(state.rules.add(FdRule::user_defined(fd)))
    }

    /// Add a rule written in the plain-text grammar (`zip -> city`,
    /// `zip determines city`, `city depends on zip`) — the paper's
    /// NL-rule-definition extension.
    pub fn add_rule_from_text(&mut self, text: &str) -> Result<bool, DataLensError> {
        let fd = Fd::parse(text)
            .ok_or_else(|| DataLensError::Unknown(format!("unparseable rule {text:?}")))?;
        self.add_custom_rule(fd)
    }

    pub fn rules(&self) -> Result<&RuleSet, DataLensError> {
        Ok(&self.state()?.rules)
    }

    /// Recommend detection tools for the loaded dataset based on its
    /// profile and rules (profiles on demand).
    pub fn recommend_detection_tools(
        &mut self,
    ) -> Result<Vec<crate::recommend::Recommendation>, DataLensError> {
        self.profile()?;
        let state = self.state()?;
        let profile = state.profile.as_ref().expect("profiled above");
        Ok(crate::recommend::recommend_tools(profile, &state.rules))
    }

    /// Tag a known-dirty value (§3 data tagging).
    pub fn tag_value(&mut self, value: impl Into<String>) -> Result<bool, DataLensError> {
        Ok(self.state_mut()?.tags.add(value))
    }

    // --- detection ---------------------------------------------------------

    fn detection_context(&self) -> Result<DetectionContext, DataLensError> {
        let state = self.state()?;
        Ok(DetectionContext {
            rules: state.rules.clone(),
            tagged_values: state.tags.values().to_vec(),
            seed: self.config.seed,
        })
    }

    /// Run the named detectors (plus user tags when any are set) through
    /// the engine — fanning out across threads when configured — then
    /// consolidate, version-stamp, and log to MLflow-style tracking.
    pub fn run_detection(&mut self, tools: &[&str]) -> Result<usize, DataLensError> {
        let ctx = self.detection_context()?;
        let mut detectors: Vec<Box<dyn Detector>> = Vec::with_capacity(tools.len() + 1);
        for name in tools {
            detectors.push(
                detector_by_name(name)
                    .ok_or_else(|| DataLensError::Unknown(format!("detector {name:?}")))?,
            );
        }
        let (detections, reports) = {
            let state = self.state()?;
            if !state.tags.is_empty() && !tools.contains(&"user_tags") {
                detectors.push(Box::new(TaggedValueDetector));
            }
            self.engine.detect_all(&state.table, &ctx, &detectors)
        };
        self.record_detection(tools, detections, reports)
    }

    /// Record externally-produced detections (e.g. an interactive RAHA
    /// run) alongside tool detections.
    pub fn finish_detection(
        &mut self,
        tools: &[&str],
        detections: Vec<Detection>,
    ) -> Result<usize, DataLensError> {
        self.record_detection(tools, detections, Vec::new())
    }

    /// Consolidate detections (deterministic name-sorted order), stamp
    /// the Delta version, persist stage metrics, and update state.
    fn record_detection(
        &mut self,
        tools: &[&str],
        detections: Vec<Detection>,
        mut reports: Vec<StageReport>,
    ) -> Result<usize, DataLensError> {
        let dims = {
            let t = &self.state()?.table;
            (t.n_rows(), t.n_rows() * t.n_cols())
        };
        let (merged, consolidate_report) = self.engine.consolidate(detections, dims);
        reports.push(consolidate_report);
        let total = merged.total();

        // Tracking: one run per detection batch, with per-stage wall time.
        if let Some(store) = &self.tracking {
            let exp = store.get_or_create_experiment(EXPERIMENT_DETECTION)?;
            let run = store.start_run(&exp, &format!("detect {}", tools.join("+")))?;
            run.log_param("tools", &tools.join(","))?;
            run.log_metric("n_detections", total as f64, 0)?;
            for det in &merged.per_tool {
                run.log_metric(&format!("n_{}", det.tool), det.len() as f64, 0)?;
            }
            log_stage_metrics(&run, &reports)?;
            run.log_artifact(
                "detections.json",
                serde_json::to_vec(&merged.union)
                    .map_err(|e| DataLensError::DataSheet(e.to_string()))?
                    .as_slice(),
            )?;
            run.end(RunStatus::Finished)?;
        }

        let state = self.state_mut()?;
        state.detect_version = state
            .delta
            .as_ref()
            .map(|d| d.latest_version())
            .transpose()?;
        for t in tools {
            if !state.detection_tools_used.contains(&t.to_string()) {
                state.detection_tools_used.push(t.to_string());
            }
        }
        state.stage_reports.extend(reports);
        state.detections = Some(merged);
        Ok(total)
    }

    /// Drive an interactive RAHA session with a user oracle. The paper's
    /// flow: RAHA starts with the other tools but resolves only after the
    /// user finishes labeling.
    pub fn run_raha_with_user(
        &mut self,
        config: RahaConfig,
        user: &mut dyn UserOracle,
    ) -> Result<RahaOutcome, DataLensError> {
        let ctx = self.detection_context()?;
        let state = self.state()?;
        let mut session = RahaSession::new(&state.table, &ctx, config);
        while let Some(row) = session.next_tuple() {
            let dirty_cols = user.review_tuple(&state.table, row);
            session.label_tuple(row, &dirty_cols);
        }
        let detection = session.finish();
        Ok(RahaOutcome {
            detection,
            tuples_reviewed: session.reviewed_count(),
            tuples_labeled: session.labeled_dirty_count(),
        })
    }

    pub fn detections(&self) -> Result<&ConsolidatedDetections, DataLensError> {
        self.state()?
            .detections
            .as_ref()
            .ok_or_else(|| DataLensError::State("detection has not run".into()))
    }

    /// Explain why the first `limit` flagged cells were flagged (the
    /// paper's explainability extension).
    pub fn explain_detections(
        &self,
        limit: usize,
    ) -> Result<Vec<datalens_detect::CellExplanation>, DataLensError> {
        let state = self.state()?;
        let merged = state
            .detections
            .as_ref()
            .ok_or_else(|| DataLensError::State("detection has not run".into()))?;
        Ok(datalens_detect::explain_all(&state.table, merged, limit))
    }

    // --- repair ------------------------------------------------------------

    /// Repair the consolidated detections with the named tool; stores
    /// `repaired.csv`, commits a new Delta version, and logs the run.
    pub fn repair(&mut self, tool: &str) -> Result<usize, DataLensError> {
        let repairer = repairer_by_name(tool)
            .ok_or_else(|| DataLensError::Unknown(format!("repair tool {tool:?}")))?;
        let seed = self.config.seed;
        let (result, stage_report, errors_len) = {
            let state = self.state()?;
            let detections = state
                .detections
                .as_ref()
                .ok_or_else(|| DataLensError::State("repair requires detection results".into()))?;
            // Cheap share: the rule set is copy-on-write behind `Arc`.
            let ctx = RepairContext {
                rules: state.rules.clone(),
                seed,
            };
            let (result, stage_report) =
                self.engine
                    .repair(&state.table, &detections.union, &ctx, repairer.as_ref());
            (result, stage_report, detections.total())
        };
        let n_repaired = result.n_repaired();

        if let Some(store) = &self.tracking {
            let exp = store.get_or_create_experiment(EXPERIMENT_REPAIR)?;
            let run = store.start_run(&exp, &format!("repair {tool}"))?;
            run.log_param("tool", tool)?;
            run.log_param("n_error_cells", &errors_len.to_string())?;
            run.log_metric("n_repaired", n_repaired as f64, 0)?;
            log_stage_metrics(&run, std::slice::from_ref(&stage_report))?;
            run.end(RunStatus::Finished)?;
        }

        let state = self.state_mut()?;
        if let Some(dir) = &state.dataset_dir {
            dir.store_repaired(&result.table)?;
        }
        if let Some(delta) = &state.delta {
            let mut params = BTreeMap::new();
            params.insert("tool".to_string(), tool.to_string());
            state.repaired_version = Some(delta.commit_with(&result.table, "REPAIR", params)?);
        }
        if !state.repair_tools_used.contains(&tool.to_string()) {
            state.repair_tools_used.push(tool.to_string());
        }
        state.stage_reports.push(stage_report);
        state.repaired = Some(result.table);
        Ok(n_repaired)
    }

    /// Drop exact duplicate rows from the working table (the simple
    /// cleaning step the paper's introduction names). Invalidates cached
    /// profile/detections (row indices shift). Returns rows removed.
    pub fn drop_duplicates(&mut self) -> Result<usize, DataLensError> {
        let state = self.state_mut()?;
        let before = state.table.n_rows();
        let deduped = state.table.drop_duplicates();
        let removed = before - deduped.n_rows();
        if removed > 0 {
            state.table = deduped;
            state.profile = None;
            state.detections = None;
            state.repaired = None;
            if let Some(delta) = &state.delta {
                let mut params = BTreeMap::new();
                params.insert("rows_removed".to_string(), removed.to_string());
                delta.commit_with(&state.table, "DEDUPLICATE", params)?;
            }
        }
        Ok(removed)
    }

    // --- outputs -----------------------------------------------------------

    /// The Data Quality panel for the current (dirty) table.
    pub fn quality(&self) -> Result<QualityMetrics, DataLensError> {
        Ok(self.quality_stage()?.0)
    }

    /// Run the quality-eval stage, returning metrics plus its report.
    fn quality_stage(&self) -> Result<(QualityMetrics, StageReport), DataLensError> {
        let state = self.state()?;
        let flagged = state.detections.as_ref().map(|d| d.total()).unwrap_or(0);
        Ok(self.engine.quality(&state.table, &state.rules, flagged))
    }

    /// Stage instrumentation for everything the engine ran so far.
    pub fn stage_reports(&self) -> Result<&[StageReport], DataLensError> {
        Ok(&self.state()?.stage_reports)
    }

    /// Generate the DataSheet for the current pipeline state.
    pub fn generate_datasheet(&self) -> Result<DataSheet, DataLensError> {
        let state = self.state()?;
        let (quality, quality_report) = self.quality_stage()?;
        let mut stage_reports = state.stage_reports.clone();
        stage_reports.push(quality_report);
        Ok(DataSheet {
            datasheet_version: 1,
            dataset_name: state.table.name().to_string(),
            source: state.source.clone(),
            dirty_path: state
                .dataset_dir
                .as_ref()
                .map(|d| d.dirty_path().display().to_string()),
            repaired_path: state
                .dataset_dir
                .as_ref()
                .filter(|_| state.repaired.is_some())
                .map(|d| d.repaired_path().display().to_string()),
            shape: state.table.shape(),
            detection_tools: state.detection_tools_used.clone(),
            n_erroneous_cells: state.detections.as_ref().map(|d| d.total()).unwrap_or(0),
            repair_tools: state.repair_tools_used.clone(),
            tool_configurations: state.tool_configurations.clone(),
            rules: state.rules.active().map(|r| r.fd.to_string()).collect(),
            tagged_values: state.tags.values().to_vec(),
            detect_version: state.detect_version,
            repaired_version: state.repaired_version,
            quality_metrics: quality.as_map(),
            stage_reports,
            seed: self.config.seed,
        })
    }

    /// Reproduce a pipeline from a DataSheet: re-run the recorded
    /// detection tools and repair tools on the currently loaded dataset.
    pub fn replay_datasheet(&mut self, sheet: &DataSheet) -> Result<(), DataLensError> {
        for v in &sheet.tagged_values {
            self.tag_value(v.clone())?;
        }
        let tools: Vec<&str> = sheet
            .detection_tools
            .iter()
            .map(String::as_str)
            .filter(|t| *t != "raha") // interactive; cannot replay unattended
            .collect();
        if !tools.is_empty() {
            self.run_detection(&tools)?;
        }
        for tool in &sheet.repair_tools {
            self.repair(tool)?;
        }
        Ok(())
    }

    /// The tracking store (None for in-memory controllers).
    pub fn tracking(&self) -> Option<&TrackingStore> {
        self.tracking.as_ref()
    }
}

/// Persist per-stage wall-time metrics onto a tracking run.
fn log_stage_metrics(run: &Run, reports: &[StageReport]) -> Result<(), DataLensError> {
    for r in reports {
        run.log_metric(&format!("wall_ms_{}", r.label()), r.wall_ms, 0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn tmp_workspace(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("datalens_ctrl_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn controller() -> DashboardController {
        DashboardController::new(DashboardConfig::default()).unwrap()
    }

    fn dirty_csv() -> &'static str {
        // zip→city FD with one violation (row 4), outlier in pop (row 2),
        // null in pop (row 5).
        "zip,city,pop\n1,ulm,120\n1,ulm,120\n2,bonn,99999\n2,bonn,330\n1,oops,120\n3,mainz,\n"
    }

    #[test]
    fn full_pipeline_in_memory() {
        let mut c = controller();
        c.ingest_csv_text("demo.csv", dirty_csv()).unwrap();
        assert_eq!(c.table().unwrap().shape(), (6, 3));

        let profile = c.profile().unwrap();
        assert_eq!(profile.table.n_rows, 6);

        // Exact FDs don't survive the injected violation; approximate
        // discovery (the dirty-data mode) finds zip → city with g3 = 1/6.
        let added = c.discover_rules_approx(0.2).unwrap();
        assert!(added > 0);
        assert!(c
            .rules()
            .unwrap()
            .rules()
            .iter()
            .any(|r| r.fd.to_string() == "[zip] -> city"));

        let n = c
            .run_detection(&["sd", "iqr", "mv_detector", "nadeef"])
            .unwrap();
        assert!(n > 0, "no detections");
        let det = c.detections().unwrap();
        assert!(det
            .per_tool
            .iter()
            .any(|d| d.tool == "nadeef" && !d.is_empty()));

        let repaired = c.repair("standard_imputer").unwrap();
        assert!(repaired > 0);
        assert_eq!(c.repaired_table().unwrap().null_count(), 0);

        let sheet = c.generate_datasheet().unwrap();
        assert_eq!(sheet.shape, (6, 3));
        assert!(sheet.n_erroneous_cells > 0);
        assert_eq!(sheet.repair_tools, vec!["standard_imputer"]);
        assert!(!sheet.rules.is_empty());
    }

    #[test]
    fn profile_memoisation_is_mode_aware() {
        let mut c = DashboardController::new(DashboardConfig {
            profile_mode: ProfileMode::Approx,
            ..Default::default()
        })
        .unwrap();
        c.ingest_csv_text("demo.csv", dirty_csv()).unwrap();
        // Configured mode drives the default entry point.
        assert!(c.profile().unwrap().columns[0].approx.is_some());
        let stages_after_first = c.stage_reports().unwrap().len();
        // Same mode again: memoised, no new stage ran.
        c.profile().unwrap();
        assert_eq!(c.stage_reports().unwrap().len(), stages_after_first);
        // Switching mode recomputes instead of serving the stale report.
        assert!(c
            .profile_with_mode(ProfileMode::Exact)
            .unwrap()
            .columns
            .iter()
            .all(|col| col.approx.is_none()));
        assert_eq!(c.stage_reports().unwrap().len(), stages_after_first + 1);
        // And back: the approx report was invalidated by the exact one.
        assert!(c.profile().unwrap().columns[0].approx.is_some());
        assert_eq!(c.stage_reports().unwrap().len(), stages_after_first + 2);
    }

    #[test]
    fn state_errors_before_prerequisites() {
        let mut c = controller();
        assert!(matches!(c.table(), Err(DataLensError::State(_))));
        assert!(matches!(c.profile(), Err(DataLensError::State(_))));
        c.ingest_csv_text("d.csv", "a\n1\n").unwrap();
        assert!(matches!(c.detections(), Err(DataLensError::State(_))));
        assert!(matches!(
            c.repair("standard_imputer"),
            Err(DataLensError::State(_))
        ));
        assert!(matches!(
            c.run_detection(&["not_a_tool"]),
            Err(DataLensError::Unknown(_))
        ));
    }

    #[test]
    fn workspace_persists_versions_and_runs() {
        let ws = tmp_workspace("persist");
        let mut c = DashboardController::new(DashboardConfig {
            workspace_dir: Some(ws.clone()),
            seed: 0,
            ..Default::default()
        })
        .unwrap();
        c.ingest_csv_text("demo.csv", dirty_csv()).unwrap();
        c.run_detection(&["mv_detector", "sd"]).unwrap();
        c.repair("standard_imputer").unwrap();

        let sheet = c.generate_datasheet().unwrap();
        assert_eq!(sheet.detect_version, Some(0));
        assert_eq!(sheet.repaired_version, Some(1));
        assert!(sheet.dirty_path.as_ref().unwrap().ends_with("dirty.csv"));

        // Delta: version 0 = dirty, version 1 = repaired.
        let state = c.state().unwrap();
        let delta = state.delta.as_ref().unwrap();
        assert_eq!(delta.latest_version().unwrap(), 1);
        let v0 = delta.load_version(0).unwrap();
        assert_eq!(v0.null_count(), 1);
        let v1 = delta.load_version(1).unwrap();
        assert_eq!(v1.null_count(), 0);

        // Tracking: Detection and Repair experiments with one run each.
        let store = c.tracking().unwrap();
        let exps = store.list_experiments().unwrap();
        assert_eq!(exps.len(), 2);
        for exp in exps {
            assert_eq!(store.list_runs(&exp).unwrap().len(), 1);
        }
        std::fs::remove_dir_all(&ws).ok();
    }

    #[test]
    fn rule_validation_flow() {
        let mut c = controller();
        c.ingest_csv_text("demo.csv", dirty_csv()).unwrap();
        c.discover_rules(RuleMiner::HyFd).unwrap();
        let some_fd = c.rules().unwrap().rules()[0].fd.clone();
        assert!(c.decide_rule(&some_fd, RuleDecision::Reject).unwrap());
        // Custom rule referencing a real column pair.
        let custom = Fd::new(vec!["zip".into()], "city".into()).unwrap();
        let _ = c.add_custom_rule(custom); // may duplicate a discovered rule
        let bad = Fd::new(vec!["nope".into()], "city".into()).unwrap();
        assert!(matches!(
            c.add_custom_rule(bad),
            Err(DataLensError::Unknown(_))
        ));
    }

    #[test]
    fn natural_language_rules_and_explanations() {
        let mut c = controller();
        c.ingest_csv_text("demo.csv", dirty_csv()).unwrap();
        assert!(c.add_rule_from_text("zip determines city").unwrap());
        assert!(matches!(
            c.add_rule_from_text("gibberish sentence"),
            Err(DataLensError::Unknown(_))
        ));
        assert!(matches!(
            c.add_rule_from_text("ghost_column determines city"),
            Err(DataLensError::Unknown(_))
        ));
        c.run_detection(&["sd", "nadeef"]).unwrap();
        let explanations = c.explain_detections(10).unwrap();
        assert!(!explanations.is_empty());
        assert!(explanations.iter().all(|e| !e.reasons.is_empty()));
    }

    #[test]
    fn tagging_feeds_detection() {
        let mut c = controller();
        c.ingest_csv_text("demo.csv", "x\n-1\n5\n7\n").unwrap();
        c.tag_value("-1").unwrap();
        let n = c.run_detection(&["mv_detector"]).unwrap();
        assert_eq!(n, 1); // the tagged -1, via the implicit user_tags pass
        let det = c.detections().unwrap();
        assert!(det.per_tool.iter().any(|d| d.tool == "user_tags"));
    }

    #[test]
    fn raha_with_simulated_user() {
        let dd = datalens_datasets::registry::dirty("nasa", 2).unwrap();
        let mut c = controller();
        c.ingest_dirty_dataset(&dd, "nasa").unwrap();
        let mut user = crate::user::SimulatedUser::perfect(&dd);
        let outcome = c
            .run_raha_with_user(
                RahaConfig {
                    labeling_budget: 10,
                    ..Default::default()
                },
                &mut user,
            )
            .unwrap();
        assert!(outcome.tuples_reviewed >= outcome.tuples_labeled);
        assert!(outcome.tuples_labeled <= 10);
        // Feed into consolidation alongside a stat tool.
        let sd = detector_by_name("sd")
            .unwrap()
            .detect(c.table().unwrap(), &DetectionContext::default());
        c.finish_detection(&["raha", "sd"], vec![outcome.detection, sd])
            .unwrap();
        assert!(c.detections().unwrap().total() > 0);
    }

    #[test]
    fn datasheet_replay_reproduces_pipeline() {
        let mut c1 = controller();
        c1.ingest_csv_text("demo.csv", dirty_csv()).unwrap();
        c1.tag_value("99999").unwrap();
        c1.run_detection(&["sd", "mv_detector"]).unwrap();
        c1.repair("standard_imputer").unwrap();
        let sheet = c1.generate_datasheet().unwrap();

        let mut c2 = controller();
        c2.ingest_csv_text("demo.csv", dirty_csv()).unwrap();
        c2.replay_datasheet(&sheet).unwrap();
        assert_eq!(
            c2.detections().unwrap().total(),
            c1.detections().unwrap().total()
        );
        assert_eq!(c2.repaired_table().unwrap(), c1.repaired_table().unwrap());
    }

    #[test]
    fn quality_improves_after_repair() {
        let mut c = controller();
        c.ingest_csv_text("demo.csv", dirty_csv()).unwrap();
        c.discover_rules(RuleMiner::Tane).unwrap();
        let before = c.quality().unwrap();
        c.run_detection(&["mv_detector", "sd"]).unwrap();
        c.repair("ml_imputer").unwrap();
        // Re-ingest the repaired table to measure its quality.
        let repaired = c.repaired_table().unwrap().clone();
        let mut c2 = controller();
        c2.ingest_table(repaired).unwrap();
        let after = c2.quality().unwrap();
        assert!(after.completeness >= before.completeness);
    }

    #[test]
    fn drop_duplicates_invalidates_downstream_state() {
        let mut c = controller();
        c.ingest_csv_text("d.csv", "a,b\n1,x\n1,x\n2,y\n").unwrap();
        c.run_detection(&["mv_detector"]).unwrap();
        let removed = c.drop_duplicates().unwrap();
        assert_eq!(removed, 1);
        assert_eq!(c.table().unwrap().n_rows(), 2);
        // Detections were computed against the old row indices: cleared.
        assert!(matches!(c.detections(), Err(DataLensError::State(_))));
        // No duplicates → no-op, state kept.
        c.run_detection(&["mv_detector"]).unwrap();
        assert_eq!(c.drop_duplicates().unwrap(), 0);
        assert!(c.detections().is_ok());
    }

    #[test]
    fn sql_ingestion_through_controller() {
        let db = crate::ingest::InMemorySqlSource::new("warehouse").with_table(
            Table::new("sales", vec![Column::from_i64("amt", [Some(5), Some(7)])]).unwrap(),
        );
        let mut c = controller();
        c.ingest_sql(&db, "sales").unwrap();
        assert_eq!(c.table().unwrap().name(), "sales");
    }
}

//! Data ingestion (§2): "data can be ingested into DataLens via one of
//! three methods: (1) using one of the preloaded datasets …; (2) uploading
//! CSV or Excel files; or (3) establishing a SQL database connection."
//!
//! The SQL path is simulated by the [`SqlSource`] trait plus an in-memory
//! implementation — the controller treats loaded tables identically to
//! uploads, exactly as the paper describes.

use std::collections::BTreeMap;
use std::path::Path;

use datalens_table::csv::{read_csv_path, read_csv_str, CsvOptions};
use datalens_table::Table;

use crate::error::DataLensError;

/// Where a dataset came from (recorded in DataSheets).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DataSource {
    Preloaded { name: String },
    CsvUpload { file_name: String },
    Sql { connection: String, table: String },
    InMemory,
}

/// Ingest a preloaded dataset by name (clean + injected dirt; the dirty
/// table is what the dashboard sees).
pub fn preloaded(name: &str, seed: u64) -> Result<(Table, DataSource), DataLensError> {
    let dd = datalens_datasets::registry::dirty(name, seed)
        .ok_or_else(|| DataLensError::Unknown(format!("preloaded dataset {name:?}")))?;
    Ok((
        dd.dirty,
        DataSource::Preloaded {
            name: name.to_string(),
        },
    ))
}

/// Ingest CSV text as an upload.
pub fn csv_upload(file_name: &str, text: &str) -> Result<(Table, DataSource), DataLensError> {
    let stem = file_name.trim_end_matches(".csv");
    let table = read_csv_str(stem, text, &CsvOptions::default())?;
    Ok((
        table,
        DataSource::CsvUpload {
            file_name: file_name.to_string(),
        },
    ))
}

/// Ingest a CSV file from disk.
pub fn csv_file(path: impl AsRef<Path>) -> Result<(Table, DataSource), DataLensError> {
    let path = path.as_ref();
    let table = read_csv_path(path, &CsvOptions::default())?;
    Ok((
        table,
        DataSource::CsvUpload {
            file_name: path
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default(),
        },
    ))
}

/// A connectable tabular source — the shape of the paper's MySQL /
/// PostgreSQL / SQL Server connectors.
pub trait SqlSource {
    /// Human-readable connection string (for DataSheets).
    fn connection_string(&self) -> String;
    /// Table names available on this connection.
    fn list_tables(&self) -> Vec<String>;
    /// Load one table.
    fn load_table(&self, name: &str) -> Result<Table, DataLensError>;
}

/// An in-memory "database": named tables behind the [`SqlSource`] trait.
#[derive(Debug, Default)]
pub struct InMemorySqlSource {
    name: String,
    tables: BTreeMap<String, Table>,
}

impl InMemorySqlSource {
    pub fn new(name: impl Into<String>) -> InMemorySqlSource {
        InMemorySqlSource {
            name: name.into(),
            tables: BTreeMap::new(),
        }
    }

    pub fn with_table(mut self, table: Table) -> InMemorySqlSource {
        self.tables.insert(table.name().to_string(), table);
        self
    }
}

impl SqlSource for InMemorySqlSource {
    fn connection_string(&self) -> String {
        format!("memory://{}", self.name)
    }

    fn list_tables(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    fn load_table(&self, name: &str) -> Result<Table, DataLensError> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| DataLensError::Unknown(format!("table {name:?} on {}", self.name)))
    }
}

/// Ingest from a SQL source.
pub fn sql(source: &dyn SqlSource, table_name: &str) -> Result<(Table, DataSource), DataLensError> {
    let table = source.load_table(table_name)?;
    Ok((
        table,
        DataSource::Sql {
            connection: source.connection_string(),
            table: table_name.to_string(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    #[test]
    fn preloaded_ingestion() {
        let (t, src) = preloaded("nasa", 0).unwrap();
        assert!(t.n_rows() > 100);
        assert_eq!(
            src,
            DataSource::Preloaded {
                name: "nasa".into()
            }
        );
        assert!(preloaded("bogus", 0).is_err());
    }

    #[test]
    fn csv_upload_ingestion() {
        let (t, src) = csv_upload("cities.csv", "a,b\n1,x\n").unwrap();
        assert_eq!(t.name(), "cities");
        assert_eq!(t.shape(), (1, 2));
        assert_eq!(
            src,
            DataSource::CsvUpload {
                file_name: "cities.csv".into()
            }
        );
        assert!(csv_upload("broken.csv", "a,b\n1\n").is_err());
    }

    #[test]
    fn sql_ingestion() {
        let db = InMemorySqlSource::new("prod")
            .with_table(Table::new("users", vec![Column::from_i64("id", [Some(1)])]).unwrap());
        assert_eq!(db.list_tables(), vec!["users"]);
        let (t, src) = sql(&db, "users").unwrap();
        assert_eq!(t.name(), "users");
        assert_eq!(
            src,
            DataSource::Sql {
                connection: "memory://prod".into(),
                table: "users".into()
            }
        );
        assert!(sql(&db, "ghosts").is_err());
    }
}

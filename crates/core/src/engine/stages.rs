//! The typed stage abstraction: each pipeline step is a [`Stage`] with a
//! concrete input and output type, so the engine can time and instrument
//! any step uniformly while the compiler keeps the wiring honest.

use std::sync::Arc;

use datalens_detect::{ConsolidatedDetections, Detection, DetectionContext, Detector};
use datalens_fd::{hyfd, tane, FdRule, HyFdConfig, RuleSet, TaneConfig};
use datalens_profile::{BuildOptions, ProfileCache, ProfileConfig, ProfileMode, ProfileReport};
use datalens_repair::{RepairContext, RepairResult, Repairer};
use datalens_table::{CellRef, Table};

use super::report::StageKind;
use crate::quality::QualityMetrics;

/// One typed unit of pipeline work. The lifetime `'a` ties borrowed
/// inputs (tables, contexts) to the caller's scope.
pub trait Stage<'a> {
    type Input: 'a;
    type Output;

    /// Which pipeline stage this is.
    fn kind(&self) -> StageKind;

    /// Tool / miner name for the report (empty when not applicable).
    fn detail(&self) -> &str {
        ""
    }

    /// Do the work.
    fn execute(&self, input: Self::Input) -> Self::Output;

    /// How many flags (detections, rules, repairs) the output carries.
    fn flags(&self, _output: &Self::Output) -> usize {
        0
    }
}

/// Profile the table, fanning per-column and correlation-pair work out
/// across `threads` scoped threads and memoising through `cache` when
/// one is attached. The defaults (one thread, no cache) reproduce the
/// plain sequential build.
#[derive(Default)]
pub struct ProfileStage {
    /// Fan-out width; `0` or `1` run sequentially.
    pub threads: usize,
    /// Shared per-column profile / correlation-pair cache.
    pub cache: Option<Arc<ProfileCache>>,
    /// Exact (default) or sketched statistics.
    pub mode: ProfileMode,
}

impl<'a> Stage<'a> for ProfileStage {
    type Input = &'a Table;
    type Output = ProfileReport;

    fn kind(&self) -> StageKind {
        StageKind::Profile
    }

    fn execute(&self, table: Self::Input) -> ProfileReport {
        ProfileReport::build_with(
            table,
            &ProfileConfig {
                mode: self.mode,
                ..ProfileConfig::default()
            },
            &BuildOptions {
                threads: self.threads,
                cache: self.cache.as_deref(),
            },
        )
    }
}

/// Which FD miner the mine-rules stage runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MinerSpec {
    /// TANE, optionally approximate (g3 error ≤ `max_g3_error`).
    Tane { max_g3_error: f64 },
    /// HyFD with its sampling seed.
    HyFd { seed: u64 },
}

/// Mine FD rules with the configured miner.
pub struct MineRulesStage {
    pub spec: MinerSpec,
}

impl<'a> Stage<'a> for MineRulesStage {
    type Input = &'a Table;
    type Output = Vec<FdRule>;

    fn kind(&self) -> StageKind {
        StageKind::MineRules
    }

    fn detail(&self) -> &str {
        match self.spec {
            MinerSpec::Tane { .. } => "tane",
            MinerSpec::HyFd { .. } => "hyfd",
        }
    }

    fn execute(&self, table: Self::Input) -> Vec<FdRule> {
        match self.spec {
            MinerSpec::Tane { max_g3_error } => tane(
                table,
                &TaneConfig {
                    max_g3_error,
                    ..TaneConfig::default()
                },
            ),
            MinerSpec::HyFd { seed } => hyfd(
                table,
                &HyFdConfig {
                    seed,
                    ..HyFdConfig::default()
                },
            ),
        }
    }

    fn flags(&self, output: &Vec<FdRule>) -> usize {
        output.len()
    }
}

/// Run one detection tool.
pub struct DetectStage<'d> {
    pub detector: &'d dyn Detector,
}

impl<'a, 'd> Stage<'a> for DetectStage<'d> {
    type Input = (&'a Table, &'a DetectionContext);
    type Output = Detection;

    fn kind(&self) -> StageKind {
        StageKind::Detect
    }

    fn detail(&self) -> &str {
        self.detector.name()
    }

    fn execute(&self, (table, ctx): Self::Input) -> Detection {
        self.detector.detect(table, ctx)
    }

    fn flags(&self, output: &Detection) -> usize {
        output.len()
    }
}

/// Merge per-tool detections. Detections are sorted by tool name first,
/// so the consolidated output is identical no matter in which order (or
/// on which thread) the detect stages finished.
pub struct ConsolidateStage;

impl<'a> Stage<'a> for ConsolidateStage {
    type Input = Vec<Detection>;
    type Output = ConsolidatedDetections;

    fn kind(&self) -> StageKind {
        StageKind::Consolidate
    }

    fn execute(&self, mut detections: Self::Input) -> ConsolidatedDetections {
        detections.sort_by(|a, b| a.tool.cmp(&b.tool));
        ConsolidatedDetections::merge(detections)
    }

    fn flags(&self, output: &ConsolidatedDetections) -> usize {
        output.total()
    }
}

/// Repair the flagged cells with one repair tool.
pub struct RepairStage<'d> {
    pub repairer: &'d dyn Repairer,
}

impl<'a, 'd> Stage<'a> for RepairStage<'d> {
    type Input = (&'a Table, &'a [CellRef], &'a RepairContext);
    type Output = RepairResult;

    fn kind(&self) -> StageKind {
        StageKind::Repair
    }

    fn detail(&self) -> &str {
        self.repairer.name()
    }

    fn execute(&self, (table, errors, ctx): Self::Input) -> RepairResult {
        self.repairer.repair(table, errors, ctx)
    }

    fn flags(&self, output: &RepairResult) -> usize {
        output.n_repaired()
    }
}

/// Compute the Data Quality panel metrics.
pub struct QualityStage;

impl<'a> Stage<'a> for QualityStage {
    type Input = (&'a Table, &'a RuleSet, usize);
    type Output = QualityMetrics;

    fn kind(&self) -> StageKind {
        StageKind::QualityEval
    }

    fn execute(&self, (table, rules, flagged): Self::Input) -> QualityMetrics {
        QualityMetrics::compute(table, rules, flagged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_detect::detector_by_name;
    use datalens_table::Column;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_i64("a", [Some(1), Some(2), None]),
                Column::from_i64("b", [Some(1), Some(1), Some(1)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn detect_stage_reports_tool_and_flags() {
        let det = detector_by_name("mv_detector").unwrap();
        let stage = DetectStage {
            detector: det.as_ref(),
        };
        assert_eq!(stage.kind(), StageKind::Detect);
        assert_eq!(stage.detail(), "mv_detector");
        let t = table();
        let out = stage.execute((&t, &DetectionContext::default()));
        assert_eq!(stage.flags(&out), 1);
    }

    #[test]
    fn consolidate_stage_sorts_tools_by_name() {
        let merged = ConsolidateStage.execute(vec![
            Detection::new("zz", vec![CellRef::new(0, 0)]),
            Detection::new("aa", vec![CellRef::new(1, 1)]),
        ]);
        let tools: Vec<&str> = merged.per_tool.iter().map(|d| d.tool.as_str()).collect();
        assert_eq!(tools, vec!["aa", "zz"]);
        assert_eq!(ConsolidateStage.flags(&merged), 2);
    }

    #[test]
    fn miner_spec_names() {
        assert_eq!(
            MineRulesStage {
                spec: MinerSpec::Tane { max_g3_error: 0.0 }
            }
            .detail(),
            "tane"
        );
        assert_eq!(
            MineRulesStage {
                spec: MinerSpec::HyFd { seed: 1 }
            }
            .detail(),
            "hyfd"
        );
    }
}

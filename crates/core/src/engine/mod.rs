//! The pipeline execution engine: runs typed [`Stage`]s, times each one
//! into a [`StageReport`], and fans independent detect stages out across
//! scoped threads.
//!
//! Determinism guarantee: detector results are collected by input index
//! and the consolidate stage sorts detections by tool name before
//! merging, so the engine's output is bit-identical whether it runs on
//! one thread or many.

pub mod report;
pub mod stages;

use std::sync::Arc;
use std::time::Instant;

use datalens_detect::{ConsolidatedDetections, Detection, DetectionContext, Detector};
use datalens_fd::{FdRule, RuleSet};
use datalens_obs::{labeled, Registry};
use datalens_profile::{ProfileCache, ProfileMode, ProfileReport};
use datalens_repair::{RepairContext, RepairResult, Repairer};
use datalens_table::{CellRef, Table};

pub use report::{render_stage_reports, StageKind, StageReport};
pub use stages::{
    ConsolidateStage, DetectStage, MineRulesStage, MinerSpec, ProfileStage, QualityStage,
    RepairStage, Stage,
};

use crate::quality::QualityMetrics;

/// How the engine schedules work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineConfig {
    /// Worker threads for the detect fan-out. `0` = one per available
    /// core, `1` = fully sequential.
    pub threads: usize,
    /// Seed handed to stochastic tools.
    pub seed: u64,
}

/// The stage executor.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
    /// When set, every stage's wall time is also observed into a
    /// per-stage latency histogram (`engine_stage_ms{stage=…}`).
    metrics: Option<Arc<Registry>>,
    /// Memoised per-column profiles and correlation pairs, shared by
    /// every clone of this engine — so a re-profile after a repair only
    /// recomputes the columns the repair touched.
    profile_cache: Arc<ProfileCache>,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            metrics: None,
            profile_cache: Arc::new(ProfileCache::new()),
        }
    }

    /// Attach a metrics registry (builder style).
    pub fn with_metrics(mut self, metrics: Option<Arc<Registry>>) -> Engine {
        self.metrics = metrics;
        self
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's shared profile cache (hit/miss stats, manual clear).
    pub fn profile_cache(&self) -> &Arc<ProfileCache> {
        &self.profile_cache
    }

    /// The thread count actually used for fan-out.
    pub fn effective_threads(&self) -> usize {
        match self.config.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Run one stage, timing it into a [`StageReport`]. `dims` is the
    /// (rows, cells) volume of the input the stage scans.
    pub fn run<'a, S: Stage<'a>>(
        &self,
        stage: &S,
        input: S::Input,
        dims: (usize, usize),
    ) -> (S::Output, StageReport) {
        let start = Instant::now();
        let output = stage.execute(input);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let flags = stage.flags(&output);
        let report = StageReport {
            stage: stage.kind().as_str().to_string(),
            detail: stage.detail().to_string(),
            wall_ms,
            rows_processed: dims.0,
            cells_processed: dims.1,
            flags_produced: flags,
        };
        if let Some(metrics) = &self.metrics {
            metrics
                .latency_histogram(&labeled("engine_stage_ms", &[("stage", &report.stage)]))
                .observe(wall_ms);
        }
        (output, report)
    }

    /// Profile the table: per-column stats and correlation pairs fan out
    /// across the configured threads, and the shared profile cache
    /// serves any column whose content it has seen before. Cache traffic
    /// from this call is published as `profile_cache_hits_total` /
    /// `profile_cache_misses_total` when a registry is attached, and the
    /// profiled table's chunked-storage footprint as the
    /// `table_chunks_total` / `table_resident_bytes` gauges.
    pub fn profile(&self, table: &Table) -> (ProfileReport, StageReport) {
        self.profile_with_mode(table, ProfileMode::Exact)
    }

    /// [`Engine::profile`] with an explicit profiling mode. In
    /// [`ProfileMode::Approx`] the per-chunk sketch partials are memoised
    /// beside the exact partials, the merges performed by this call are
    /// published as `profile_sketch_merges_total`, and the bytes held by
    /// cached sketches as the `sketch_bytes_resident` gauge.
    pub fn profile_with_mode(
        &self,
        table: &Table,
        mode: ProfileMode,
    ) -> (ProfileReport, StageReport) {
        let stage = ProfileStage {
            threads: self.effective_threads(),
            cache: Some(Arc::clone(&self.profile_cache)),
            mode,
        };
        let before = self.profile_cache.stats();
        let out = self.run(&stage, table, table_dims(table));
        if let Some(metrics) = &self.metrics {
            let after = self.profile_cache.stats();
            metrics
                .counter("profile_cache_hits_total")
                .add(after.hits().saturating_sub(before.hits()));
            metrics
                .counter("profile_cache_misses_total")
                .add(after.misses().saturating_sub(before.misses()));
            metrics
                .counter("profile_sketch_merges_total")
                .add(after.sketch_merges.saturating_sub(before.sketch_merges));
            metrics
                // lint:allow(metric-naming): point-in-time bytes held by
                // memoised sketch partials — a gauge, named for the
                // resource it measures like `table_resident_bytes`
                .gauge("sketch_bytes_resident")
                .set(i64::try_from(self.profile_cache.sketch_bytes_resident()).unwrap_or(i64::MAX));
            metrics
                // lint:allow(metric-naming): a point-in-time chunk count
                // for the profiled table — gauge semantics, but the
                // dashboard contract names it `_total` as a grand total
                // across columns, not a monotonic counter
                .gauge("table_chunks_total")
                .set(i64::try_from(table.chunk_count()).unwrap_or(i64::MAX));
            metrics
                .gauge("table_resident_bytes")
                .set(i64::try_from(table.resident_bytes()).unwrap_or(i64::MAX));
        }
        out
    }

    /// Mine FD rules.
    pub fn mine_rules(&self, table: &Table, spec: MinerSpec) -> (Vec<FdRule>, StageReport) {
        self.run(&MineRulesStage { spec }, table, table_dims(table))
    }

    /// Run every detector over the table, one detect stage per tool.
    /// With more than one worker thread the tools fan out across scoped
    /// threads; results always come back in input order.
    pub fn detect_all(
        &self,
        table: &Table,
        ctx: &DetectionContext,
        detectors: &[Box<dyn Detector>],
    ) -> (Vec<Detection>, Vec<StageReport>) {
        let threads = self.effective_threads().min(detectors.len().max(1));
        let mut slots: Vec<Option<(Detection, StageReport)>> = Vec::new();
        slots.resize_with(detectors.len(), || None);
        if threads <= 1 {
            for (det, slot) in detectors.iter().zip(slots.iter_mut()) {
                *slot = Some(self.detect_one(table, ctx, det.as_ref()));
            }
        } else {
            let chunk = detectors.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (dets, out) in detectors.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (det, slot) in dets.iter().zip(out.iter_mut()) {
                            *slot = Some(self.detect_one(table, ctx, det.as_ref()));
                        }
                    });
                }
            });
        }
        slots
            .into_iter()
            // lint:allow(panic-in-lib): scope() joins every spawned
            // thread before returning, and the chunked zip covers each
            // slot exactly once — an empty slot is unreachable
            .map(|s| s.expect("every detector slot filled"))
            .unzip()
    }

    /// Run a single detect stage.
    pub fn detect_one(
        &self,
        table: &Table,
        ctx: &DetectionContext,
        detector: &dyn Detector,
    ) -> (Detection, StageReport) {
        self.run(&DetectStage { detector }, (table, ctx), table_dims(table))
    }

    /// Consolidate per-tool detections in deterministic (name-sorted)
    /// order. `dims` is the (rows, cells) shape of the detected table.
    pub fn consolidate(
        &self,
        detections: Vec<Detection>,
        dims: (usize, usize),
    ) -> (ConsolidatedDetections, StageReport) {
        self.run(&ConsolidateStage, detections, dims)
    }

    /// Repair the flagged cells.
    pub fn repair(
        &self,
        table: &Table,
        errors: &[CellRef],
        ctx: &RepairContext,
        repairer: &dyn Repairer,
    ) -> (RepairResult, StageReport) {
        self.run(
            &RepairStage { repairer },
            (table, errors, ctx),
            table_dims(table),
        )
    }

    /// Compute quality metrics for the table.
    pub fn quality(
        &self,
        table: &Table,
        rules: &RuleSet,
        flagged: usize,
    ) -> (QualityMetrics, StageReport) {
        self.run(&QualityStage, (table, rules, flagged), table_dims(table))
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineConfig::default())
    }
}

fn table_dims(table: &Table) -> (usize, usize) {
    (table.n_rows(), table.n_rows() * table.n_cols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_detect::detector_by_name;
    use datalens_repair::repairer_by_name;
    use datalens_table::Column;

    fn engine(threads: usize) -> Engine {
        Engine::new(EngineConfig { threads, seed: 7 })
    }

    fn table() -> Table {
        let mut xs: Vec<Option<i64>> = (0..40).map(|i| Some(10 + i % 5)).collect();
        xs.push(Some(100_000));
        xs.push(None);
        let ys: Vec<Option<i64>> = (0..xs.len() as i64).map(Some).collect();
        Table::new(
            "t",
            vec![Column::from_i64("x", xs), Column::from_i64("y", ys)],
        )
        .unwrap()
    }

    fn detectors(names: &[&str]) -> Vec<Box<dyn Detector>> {
        names
            .iter()
            .map(|n| detector_by_name(n).expect("known detector"))
            .collect()
    }

    #[test]
    fn profile_stage_is_timed_and_sized() {
        let t = table();
        let (report, stage) = engine(1).profile(&t);
        assert_eq!(report.table.n_rows, t.n_rows());
        assert_eq!(stage.stage, "profile");
        assert_eq!(stage.rows_processed, t.n_rows());
        assert_eq!(stage.cells_processed, t.n_rows() * t.n_cols());
        assert!(stage.wall_ms >= 0.0);
    }

    #[test]
    fn detect_all_parallel_matches_sequential() {
        let t = table();
        let ctx = DetectionContext::default();
        let tools = ["sd", "iqr", "mv_detector", "fahes", "isolation_forest"];
        let (seq, seq_reports) = engine(1).detect_all(&t, &ctx, &detectors(&tools));
        let (par, par_reports) = engine(8).detect_all(&t, &ctx, &detectors(&tools));
        assert_eq!(seq, par);
        // Reports come back in input order regardless of scheduling.
        let seq_tools: Vec<&str> = seq_reports.iter().map(|r| r.detail.as_str()).collect();
        let par_tools: Vec<&str> = par_reports.iter().map(|r| r.detail.as_str()).collect();
        assert_eq!(seq_tools, tools.to_vec());
        assert_eq!(par_tools, tools.to_vec());
    }

    #[test]
    fn consolidate_is_order_insensitive() {
        let t = table();
        let ctx = DetectionContext::default();
        let e = engine(1);
        let (mut dets, _) = e.detect_all(&t, &ctx, &detectors(&["sd", "mv_detector", "iqr"]));
        let (a, _) = e.consolidate(dets.clone(), table_dims(&t));
        dets.reverse();
        let (b, _) = e.consolidate(dets, table_dims(&t));
        assert_eq!(a, b);
    }

    #[test]
    fn repair_stage_counts_flags() {
        let t = table();
        let e = engine(1);
        let (dets, _) = e.detect_all(
            &t,
            &DetectionContext::default(),
            &detectors(&["mv_detector"]),
        );
        let (merged, _) = e.consolidate(dets, table_dims(&t));
        let repairer = repairer_by_name("standard_imputer").unwrap();
        let (result, report) = e.repair(
            &t,
            &merged.union,
            &RepairContext::default(),
            repairer.as_ref(),
        );
        assert_eq!(report.stage, "repair");
        assert_eq!(report.detail, "standard_imputer");
        assert_eq!(report.flags_produced, result.n_repaired());
        assert!(result.n_repaired() > 0);
    }

    #[test]
    fn profile_parallel_and_cached_matches_sequential() {
        let t = table();
        let (seq, _) = engine(1).profile(&t);
        let e = engine(8);
        let (cold, _) = e.profile(&t);
        let (warm, _) = e.profile(&t);
        assert_eq!(seq, cold);
        assert_eq!(seq, warm);
        // The warm run answered from the cache: both columns and the
        // Pearson + Spearman pair for (x, y).
        let stats = e.profile_cache().stats();
        assert_eq!(stats.column_hits, 2);
        assert_eq!(stats.pair_hits, 2);
        assert_eq!(stats.column_misses, 2);
    }

    #[test]
    fn profile_cache_reused_across_engine_clones() {
        let t = table();
        let e = engine(2);
        e.clone().profile(&t);
        e.clone().profile(&t);
        assert_eq!(e.profile_cache().stats().column_hits, 2);
    }

    #[test]
    fn profile_cache_counters_published_to_registry() {
        let registry = Arc::new(Registry::new());
        let e = engine(2).with_metrics(Some(Arc::clone(&registry)));
        let t = table();
        e.profile(&t);
        e.profile(&t);
        assert_eq!(registry.counter("profile_cache_hits_total").get(), 4);
        // Cold run: 2 column misses + 2 pair misses + 2 per-chunk partial
        // misses (one numeric chunk per column). Warm run hits the
        // column-profile cache before any chunk lookup happens.
        assert_eq!(registry.counter("profile_cache_misses_total").get(), 6);
    }

    #[test]
    fn approx_profile_publishes_sketch_metrics() {
        let registry = Arc::new(Registry::new());
        let e = engine(2).with_metrics(Some(Arc::clone(&registry)));
        let t = table();
        let (approx, _) = e.profile_with_mode(&t, ProfileMode::Approx);
        // One merge per chunk per column; the table has one chunk per
        // column at this size.
        assert_eq!(
            registry.counter("profile_sketch_merges_total").get(),
            t.chunk_count() as u64
        );
        assert!(registry.gauge("sketch_bytes_resident").get() > 0);
        assert!(approx.columns.iter().all(|c| c.approx.is_some()));
        // The default profile entry point stays exact and reports no
        // sketch traffic of its own.
        let (exact, _) = e.profile(&t);
        assert!(exact.columns.iter().all(|c| c.approx.is_none()));
        // A warm approx build answers from the column cache without new
        // sketch merges.
        let before = registry.counter("profile_sketch_merges_total").get();
        e.profile_with_mode(&t, ProfileMode::Approx);
        assert_eq!(
            registry.counter("profile_sketch_merges_total").get(),
            before
        );
    }

    #[test]
    fn profile_publishes_table_storage_gauges() {
        let registry = Arc::new(Registry::new());
        let e = engine(1).with_metrics(Some(Arc::clone(&registry)));
        let t = table();
        e.profile(&t);
        let chunks = registry.gauge("table_chunks_total").get();
        assert_eq!(chunks, i64::try_from(t.chunk_count()).unwrap_or(i64::MAX));
        assert!(chunks >= 2); // one chunk per column at this size
        let bytes = registry.gauge("table_resident_bytes").get();
        assert_eq!(bytes, i64::try_from(t.resident_bytes()).unwrap_or(i64::MAX));
        assert!(bytes > 0);
    }

    #[test]
    fn thread_config_resolves() {
        assert_eq!(engine(3).effective_threads(), 3);
        assert!(engine(0).effective_threads() >= 1);
    }

    #[test]
    fn more_threads_than_tools_is_fine() {
        let t = table();
        let ctx = DetectionContext::default();
        let (seq, _) = engine(1).detect_all(&t, &ctx, &detectors(&["sd"]));
        let (par, _) = engine(16).detect_all(&t, &ctx, &detectors(&["sd"]));
        assert_eq!(seq, par);
        let (none, reports) = engine(16).detect_all(&t, &ctx, &[]);
        assert!(none.is_empty() && reports.is_empty());
    }
}

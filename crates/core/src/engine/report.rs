//! Per-stage instrumentation: every stage the engine executes produces a
//! [`StageReport`] with its wall-time and the volume of data it touched.
//! Reports are persisted as run metrics in `datalens-tracking`, rendered
//! in the dashboard's summary panel, and embedded in DataSheets.

use serde::{Deserialize, Serialize};

/// The pipeline stages the engine knows how to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Build the data profile (`datalens-profile`).
    Profile,
    /// Mine FD rules (`datalens-fd`: TANE / HyFD).
    MineRules,
    /// Run one error-detection tool (`datalens-detect`).
    Detect,
    /// Merge per-tool detections into one deduplicated set.
    Consolidate,
    /// Repair flagged cells (`datalens-repair`).
    Repair,
    /// Compute the Data Quality panel metrics.
    QualityEval,
}

impl StageKind {
    /// Stable machine name, used in reports, metrics keys, and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Profile => "profile",
            StageKind::MineRules => "mine_rules",
            StageKind::Detect => "detect",
            StageKind::Consolidate => "consolidate",
            StageKind::Repair => "repair",
            StageKind::QualityEval => "quality_eval",
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one stage execution did and how long it took.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage machine name (see [`StageKind::as_str`]).
    pub stage: String,
    /// Tool or miner the stage ran (empty when the stage has no tool).
    #[serde(default)]
    pub detail: String,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: f64,
    /// Rows of the input table the stage scanned.
    pub rows_processed: usize,
    /// Cells of the input table the stage scanned.
    pub cells_processed: usize,
    /// Cells flagged / rules mined / cells repaired by the stage.
    pub flags_produced: usize,
}

impl StageReport {
    /// `stage` or `stage:detail`, used as a metrics key.
    pub fn label(&self) -> String {
        if self.detail.is_empty() {
            self.stage.clone()
        } else {
            format!("{}:{}", self.stage, self.detail)
        }
    }

    /// One aligned text row for the dashboard's stage summary.
    pub fn render_row(&self) -> String {
        format!(
            "  {:<24} {:>10.3} ms  {:>8} rows  {:>10} cells  {:>7} flags\n",
            self.label(),
            self.wall_ms,
            self.rows_processed,
            self.cells_processed,
            self.flags_produced
        )
    }
}

/// Render a stage-report list as the dashboard's summary panel block.
pub fn render_stage_reports(reports: &[StageReport]) -> String {
    let mut out = String::from("── Pipeline stages ──\n");
    if reports.is_empty() {
        out.push_str("  (no stages executed yet)\n");
        return out;
    }
    let mut total = 0.0;
    for r in reports {
        out.push_str(&r.render_row());
        total += r.wall_ms;
    }
    out.push_str(&format!("  {:<24} {total:>10.3} ms\n", "total"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StageReport {
        StageReport {
            stage: "detect".into(),
            detail: "sd".into(),
            wall_ms: 1.25,
            rows_processed: 100,
            cells_processed: 600,
            flags_produced: 4,
        }
    }

    #[test]
    fn label_includes_detail_when_present() {
        assert_eq!(report().label(), "detect:sd");
        let bare = StageReport {
            detail: String::new(),
            ..report()
        };
        assert_eq!(bare.label(), "detect");
    }

    #[test]
    fn json_round_trip() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: StageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn missing_detail_defaults_to_empty() {
        let back: StageReport = serde_json::from_str(
            "{\"stage\":\"profile\",\"wall_ms\":0.5,\"rows_processed\":1,\
             \"cells_processed\":2,\"flags_produced\":0}",
        )
        .unwrap();
        assert_eq!(back.detail, "");
    }

    #[test]
    fn rendering_lists_every_stage_and_total() {
        let text = render_stage_reports(&[report()]);
        assert!(text.contains("detect:sd"));
        assert!(text.contains("total"));
        assert!(render_stage_reports(&[]).contains("no stages"));
    }

    #[test]
    fn stage_kind_names_are_stable() {
        assert_eq!(StageKind::Profile.as_str(), "profile");
        assert_eq!(StageKind::MineRules.as_str(), "mine_rules");
        assert_eq!(StageKind::Detect.to_string(), "detect");
        assert_eq!(StageKind::Consolidate.as_str(), "consolidate");
        assert_eq!(StageKind::Repair.as_str(), "repair");
        assert_eq!(StageKind::QualityEval.as_str(), "quality_eval");
    }
}

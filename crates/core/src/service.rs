//! The REST tool service: exposes the detection and repair tools over the
//! HTTP bus (§3's FastAPI layer). "The POST method forwards tasks …, the
//! GET method retrieves results …, and the PUT method updates information
//! related to specific requests."
//!
//! Endpoints:
//! - `GET  /tools`            — list detector and repairer names;
//! - `POST /detect`           — run one detector on a CSV payload;
//! - `POST /repair`           — repair given error cells on a CSV payload;
//! - `POST /profile`          — profile a CSV payload;
//! - `PUT  /context`          — update the server-side detection context
//!   (tagged values, FD rules) applied to subsequent requests.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use datalens_detect::{detector_by_name, DetectionContext, DETECTOR_NAMES};
use datalens_fd::{Fd, FdRule, RuleSet};
use datalens_repair::{repairer_by_name, RepairContext, REPAIRER_NAMES};
use datalens_rest::http::Method;
use datalens_rest::{Response, Router};
use datalens_table::csv::{read_csv_str, write_csv_str, CsvOptions};
use datalens_table::CellRef;

use crate::engine::{Engine, EngineConfig, StageReport};

/// Wire form of a cell reference.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WireCell {
    pub row: usize,
    pub col: usize,
}

impl From<CellRef> for WireCell {
    fn from(c: CellRef) -> Self {
        WireCell {
            row: c.row,
            col: c.col,
        }
    }
}

impl From<WireCell> for CellRef {
    fn from(c: WireCell) -> Self {
        CellRef::new(c.row, c.col)
    }
}

/// `POST /detect` request.
#[derive(Debug, Serialize, Deserialize)]
pub struct DetectRequest {
    pub tool: String,
    pub csv: String,
}

/// `POST /detect` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct DetectResponse {
    pub tool: String,
    pub cells: Vec<WireCell>,
    /// Engine instrumentation for the detect stage.
    pub report: StageReport,
}

/// `POST /repair` request.
#[derive(Debug, Serialize, Deserialize)]
pub struct RepairRequest {
    pub tool: String,
    pub csv: String,
    pub error_cells: Vec<WireCell>,
}

/// `POST /repair` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct RepairResponse {
    pub tool: String,
    pub csv: String,
    pub n_repaired: usize,
    /// Engine instrumentation for the repair stage.
    pub report: StageReport,
}

/// `PUT /context` request: replaces the shared detection context.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct ContextUpdate {
    #[serde(default)]
    pub tagged_values: Vec<String>,
    /// FD rules as `(lhs columns, rhs column)` pairs.
    #[serde(default)]
    pub rules: Vec<(Vec<String>, String)>,
}

/// `GET /tools` response.
#[derive(Debug, Serialize, Deserialize)]
pub struct ToolList {
    pub detectors: Vec<String>,
    pub repairers: Vec<String>,
}

#[derive(Default)]
struct ServiceState {
    tagged_values: Vec<String>,
    rules: RuleSet,
}

/// Build the tool-service router (mount it on a
/// [`datalens_rest::Server`]). Each endpoint is a thin façade over the
/// pipeline [`Engine`], so wire responses carry stage instrumentation.
pub fn tool_service_router(seed: u64) -> Router {
    let state = Arc::new(Mutex::new(ServiceState::default()));
    let engine = Arc::new(Engine::new(EngineConfig { threads: 0, seed }));

    let st = Arc::clone(&state);
    let router = Router::new()
        .route(Method::Get, "/tools", |_, _| {
            Response::json(&ToolList {
                detectors: DETECTOR_NAMES.iter().map(|s| s.to_string()).collect(),
                repairers: REPAIRER_NAMES.iter().map(|s| s.to_string()).collect(),
            })
        })
        .route(Method::Put, "/context", move |req, _| {
            let update: ContextUpdate = match req.json() {
                Ok(u) => u,
                Err(e) => return Response::error(400, &e.to_string()),
            };
            let mut rules = RuleSet::new();
            for (lhs, rhs) in update.rules {
                match Fd::new(lhs, rhs) {
                    Some(fd) => {
                        rules.add(FdRule::user_defined(fd));
                    }
                    None => return Response::error(400, "degenerate FD rule"),
                }
            }
            let mut s = st.lock();
            s.tagged_values = update.tagged_values;
            s.rules = rules;
            Response::json(&serde_json::json!({"ok": true}))
        });

    let st = Arc::clone(&state);
    let eng = Arc::clone(&engine);
    let router = router.route(Method::Post, "/detect", move |req, _| {
        let body: DetectRequest = match req.json() {
            Ok(b) => b,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        let Some(det) = detector_by_name(&body.tool) else {
            return Response::error(404, &format!("unknown detector {:?}", body.tool));
        };
        let table = match read_csv_str("payload", &body.csv, &CsvOptions::default()) {
            Ok(t) => t,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        let ctx = {
            let s = st.lock();
            DetectionContext {
                rules: s.rules.clone(),
                tagged_values: s.tagged_values.clone(),
                seed,
            }
        };
        let (detection, report) = eng.detect_one(&table, &ctx, det.as_ref());
        Response::json(&DetectResponse {
            tool: detection.tool.clone(),
            cells: detection.cells.iter().map(|&c| c.into()).collect(),
            report,
        })
    });

    let st = Arc::clone(&state);
    let eng = Arc::clone(&engine);
    let router = router.route(Method::Post, "/repair", move |req, _| {
        let body: RepairRequest = match req.json() {
            Ok(b) => b,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        let Some(rep) = repairer_by_name(&body.tool) else {
            return Response::error(404, &format!("unknown repairer {:?}", body.tool));
        };
        let table = match read_csv_str("payload", &body.csv, &CsvOptions::default()) {
            Ok(t) => t,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        let errors: Vec<CellRef> = body.error_cells.iter().map(|&c| c.into()).collect();
        let ctx = {
            let s = st.lock();
            RepairContext {
                rules: s.rules.clone(),
                seed,
            }
        };
        let (result, report) = eng.repair(&table, &errors, &ctx, rep.as_ref());
        Response::json(&RepairResponse {
            tool: result.tool.clone(),
            csv: write_csv_str(&result.table),
            n_repaired: result.n_repaired(),
            report,
        })
    });

    let eng = Arc::clone(&engine);
    router.route(Method::Post, "/profile", move |req, _| {
        #[derive(Deserialize)]
        struct ProfileRequest {
            csv: String,
        }
        let body: ProfileRequest = match req.json() {
            Ok(b) => b,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        let table = match read_csv_str("payload", &body.csv, &CsvOptions::default()) {
            Ok(t) => t,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        let (report, _stage) = eng.profile(&table);
        Response::json(&report)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_rest::{Client, Server};

    fn start() -> (Server, Client) {
        let server = Server::start(tool_service_router(0)).unwrap();
        let client = Client::new(server.addr());
        (server, client)
    }

    #[test]
    fn tools_lists_everything() {
        let (_server, client) = start();
        let tools: ToolList = client.get_json("/tools").unwrap();
        assert!(tools.detectors.contains(&"raha".to_string()));
        assert!(tools.repairers.contains(&"ml_imputer".to_string()));
    }

    #[test]
    fn detect_over_the_wire() {
        let (_server, client) = start();
        let mut csv = String::from("x\n");
        for i in 0..30 {
            csv.push_str(&format!("{}\n", 10 + i % 3));
        }
        csv.push_str("5000\n");
        let resp: DetectResponse = client
            .post_json(
                "/detect",
                &DetectRequest {
                    tool: "sd".into(),
                    csv,
                },
            )
            .unwrap();
        assert_eq!(resp.tool, "sd");
        assert_eq!(resp.cells.len(), 1);
        assert_eq!(resp.cells[0].row, 30);
        assert_eq!(resp.report.stage, "detect");
        assert_eq!(resp.report.detail, "sd");
        assert_eq!(resp.report.rows_processed, 31);
        assert_eq!(resp.report.flags_produced, 1);
    }

    #[test]
    fn repair_over_the_wire() {
        let (_server, client) = start();
        let resp: RepairResponse = client
            .post_json(
                "/repair",
                &RepairRequest {
                    tool: "standard_imputer".into(),
                    csv: "x\n1\n2\n999\n".into(),
                    error_cells: vec![WireCell { row: 2, col: 0 }],
                },
            )
            .unwrap();
        assert_eq!(resp.n_repaired, 1);
        assert!(resp.csv.contains("1.5") || resp.csv.contains("2")); // mean of 1,2
        assert_eq!(resp.report.stage, "repair");
        assert_eq!(resp.report.flags_produced, 1);
    }

    #[test]
    fn context_update_affects_detection() {
        let (_server, client) = start();
        let ok: serde_json::Value = {
            let body = serde_json::to_vec(&ContextUpdate {
                tagged_values: vec!["-1".into()],
                rules: vec![],
            })
            .unwrap();
            let resp = client.put("/context", body).unwrap();
            assert!(resp.is_success());
            resp.json_body().unwrap()
        };
        assert_eq!(ok["ok"], true);
        let resp: DetectResponse = client
            .post_json(
                "/detect",
                &DetectRequest {
                    tool: "user_tags".into(),
                    csv: "x\n-1\n5\n".into(),
                },
            )
            .unwrap();
        assert_eq!(resp.cells.len(), 1);
    }

    #[test]
    fn unknown_tool_is_404_bad_body_is_400() {
        let (_server, client) = start();
        let resp = client
            .post(
                "/detect",
                serde_json::to_vec(&DetectRequest {
                    tool: "nope".into(),
                    csv: "x\n1\n".into(),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, 404);
        let resp = client.post("/detect", b"not json".to_vec()).unwrap();
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn profile_over_the_wire() {
        let (_server, client) = start();
        #[derive(Serialize)]
        struct Req {
            csv: String,
        }
        let report: serde_json::Value = client
            .post_json(
                "/profile",
                &Req {
                    csv: "a,b\n1,x\n2,\n".into(),
                },
            )
            .unwrap();
        assert_eq!(report["table"]["n_rows"], 2);
        assert_eq!(report["table"]["missing_cells"], 1);
    }
}

//! The multi-session job service: queued, cancellable pipeline runs.
//!
//! The paper presents DataLens as a multi-user dashboard (FastAPI
//! serving many concurrent analysts). This module is the subsystem that
//! turns the single-request tool bus into a service:
//!
//! - a **session registry**: each session owns
//!   one dataset's pipeline state (dirty table, rules, detections,
//!   Delta/tracking handles) behind a per-session lock;
//! - a **bounded job queue** executed by a **fixed worker pool** on top
//!   of the pipeline [`Engine`](crate::engine::Engine): submitting to a
//!   full queue is an immediate typed rejection
//!   ([`JobError::QueueFull`], surfaced over REST as HTTP 429);
//! - **jobs** are engine stage chains ([`JobSpec`]) with states
//!   `Queued → Running → Done | Failed | Cancelled`, cooperative
//!   cancellation checked between stages, and live per-stage
//!   [`StageReport`] progress;
//! - **scheduling**: same-session jobs run in strict FIFO submission
//!   order (the session lock plus the ready-queue invariant), while
//!   jobs of distinct sessions fan out across the pool;
//! - **tracking**: with a workspace, every job logs one MLflow-style run
//!   into the `Jobs` experiment (`Finished`/`Failed`/`Killed`).
//!
//! The REST surface lives in [`rest`] (`POST /sessions`,
//! `POST /sessions/{id}/jobs`, `GET /jobs/{id}`, `GET /jobs/{id}/result`,
//! `DELETE /jobs/{id}`).

pub mod events;
pub mod job;
pub mod queue;
pub mod rest;
pub mod session;

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use datalens_health::{HealthGate, HealthReport, HealthThresholds, Verdict};
use datalens_obs::{labeled, Registry};
use datalens_table::Table;
use datalens_tracking::{RunStatus, TrackingError, TrackingStore, EXPERIMENT_JOBS};

pub use events::{AlertBus, AlertEvent, AlertFeedItem, AlertSubscription, JobEvent};
pub use job::{
    JobError, JobEventSubscription, JobFeedItem, JobOutcome, JobSpec, JobState, JobStatus, JobStep,
    ProfileSummary,
};
pub use session::SessionInfo;

use crate::controller::{DashboardConfig, DashboardController};
use crate::engine::StageReport;
use crate::error::DataLensError;
use crate::iterative::{run_iterative_cleaning, IterativeCleaningConfig};
use job::JobInner;
use queue::SessionQueues;
use session::SessionSlot;

/// Job-service sizing and pipeline defaults.
#[derive(Debug, Clone)]
pub struct JobServiceConfig {
    /// Fixed worker-pool size (≥ 1).
    pub workers: usize,
    /// Bounded queue capacity: jobs *waiting* (not running). Submitting
    /// beyond it returns [`JobError::QueueFull`].
    pub queue_depth: usize,
    /// Seed handed to every session's stochastic tools.
    pub seed: u64,
    /// Engine detect fan-out threads *within* one job (`1` keeps each
    /// job single-threaded so the pool scales across jobs).
    pub threads: usize,
    /// Workspace root. When set, each session persists under
    /// `<dir>/sessions/s<id>` (Delta versioning + per-session tracking)
    /// and job lifecycles are logged under `<dir>/mlruns`.
    pub workspace_dir: Option<PathBuf>,
    /// Metrics registry. When set, the service records queue depth and
    /// wait, running-job and state-transition counts, and the engine
    /// stage timings of every job it runs.
    pub metrics: Option<Arc<Registry>>,
    /// Default profiling backend for every session's controller. A job
    /// spec's own `profile_mode` still overrides it per profile step.
    pub profile_mode: datalens_profile::ProfileMode,
    /// Cap on each job's buffered event log (the SSE replay source).
    /// Overflowing `progress` events are dropped (and counted);
    /// terminal events always land.
    pub event_buffer: usize,
    /// Ring capacity of the service-wide quality-alert feed.
    pub alert_buffer: usize,
    /// Health-gate thresholds. The gate folds queue depth, per-session
    /// backlog, failure streaks, stream-lane saturation, and worker
    /// liveness into the `pass`/`degraded`/`hold` verdict served on
    /// `GET /health`; at `hold`, [`JobService::submit`] sheds load with
    /// [`JobError::Overloaded`] before touching the queue lock.
    pub health: HealthThresholds,
}

impl Default for JobServiceConfig {
    fn default() -> JobServiceConfig {
        JobServiceConfig {
            workers: 4,
            queue_depth: 32,
            seed: 0,
            threads: 1,
            workspace_dir: None,
            metrics: None,
            profile_mode: datalens_profile::ProfileMode::default(),
            event_buffer: 1024,
            alert_buffer: 256,
            health: HealthThresholds::default(),
        }
    }
}

/// Pre-registered handles for the service's hot-path metrics (the
/// per-state and per-stage names are registered lazily on first use).
struct JobMetrics {
    registry: Arc<Registry>,
    queue_depth: Arc<datalens_obs::Gauge>,
    running: Arc<datalens_obs::Gauge>,
    submitted: Arc<datalens_obs::Counter>,
    shed: Arc<datalens_obs::Counter>,
    queue_wait: Arc<datalens_obs::Histogram>,
    alerts_emitted: Arc<datalens_obs::Counter>,
}

impl JobMetrics {
    fn new(registry: Arc<Registry>) -> JobMetrics {
        JobMetrics {
            queue_depth: registry.gauge("jobs_queue_depth"),
            running: registry.gauge("jobs_running"),
            submitted: registry.counter("jobs_submitted_total"),
            shed: registry.counter("jobs_shed_total"),
            queue_wait: registry.latency_histogram("jobs_queue_wait_ms"),
            alerts_emitted: registry.counter("alerts_emitted_total"),
            registry,
        }
    }

    fn record_terminal(&self, state: JobState) {
        self.registry
            .counter(&labeled("jobs_state_total", &[("state", state.as_str())]))
            .inc();
    }
}

struct Inner {
    config: JobServiceConfig,
    /// Scheduler state; paired with `work_cv`.
    queues: Mutex<SessionQueues>,
    work_cv: Condvar,
    sessions: RwLock<BTreeMap<u64, Arc<SessionSlot>>>,
    jobs: RwLock<BTreeMap<u64, Arc<JobInner>>>,
    next_session: AtomicU64,
    next_job: AtomicU64,
    stop: AtomicBool,
    tracking: Option<TrackingStore>,
    metrics: Option<JobMetrics>,
    /// Service-wide quality-alert feed (`GET /alerts/events`).
    alerts: Arc<AlertBus>,
    /// Health rollup: fed by submit/cancel/pop/terminal bookkeeping,
    /// read by the admission check and `GET /health`.
    gate: Arc<HealthGate>,
}

/// The service façade: create sessions, submit jobs, poll, cancel.
///
/// Dropping the service stops the worker pool (running jobs finish
/// their current step chain; queued jobs stay `Queued`).
pub struct JobService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobService {
    pub fn new(config: JobServiceConfig) -> Result<JobService, JobError> {
        let tracking = match &config.workspace_dir {
            Some(dir) => Some(
                TrackingStore::new(dir.join("mlruns"))
                    .map_err(|e| JobError::Pipeline(DataLensError::Tracking(e)))?,
            ),
            None => None,
        };
        let metrics = config.metrics.clone().map(JobMetrics::new);
        let gate = Arc::new(HealthGate::new(config.health.clone()));
        if let Some(registry) = &config.metrics {
            gate.bind_registry(registry);
        }
        let inner = Arc::new(Inner {
            queues: Mutex::new(SessionQueues::new(config.queue_depth)),
            work_cv: Condvar::new(),
            sessions: RwLock::new(BTreeMap::new()),
            jobs: RwLock::new(BTreeMap::new()),
            next_session: AtomicU64::new(1),
            next_job: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            tracking,
            metrics,
            alerts: Arc::new(AlertBus::new(config.alert_buffer)),
            gate,
            config,
        });
        {
            let q = inner.queues.lock();
            inner.gate.set_queue(q.queued() as u64, q.depth() as u64);
        }
        let n = inner.config.workers.max(1);
        inner.gate.set_workers_total(n as u64);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let worker_inner = Arc::clone(&inner);
            // Mark the slot alive *before* the thread runs so a submit
            // racing startup never sees a not-yet-spawned worker as dead;
            // the worker's drop guard clears it on exit or unwind.
            inner.gate.worker_started();
            let spawned = std::thread::Builder::new()
                .name(format!("datalens-job-worker-{i}"))
                .spawn(move || worker_loop(&worker_inner));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Unwind the partial pool before surfacing the error
                    // so no worker outlives a service that never existed.
                    inner.gate.worker_stopped(); // the slot that never spawned
                    inner.stop.store(true, Ordering::SeqCst);
                    inner.work_cv.notify_all();
                    for t in workers {
                        let _ = t.join();
                    }
                    return Err(JobError::Pipeline(DataLensError::Io(e)));
                }
            }
        }
        inner.gate.evaluate();
        Ok(JobService {
            inner,
            workers: Mutex::new(workers),
        })
    }

    pub fn config(&self) -> &JobServiceConfig {
        &self.inner.config
    }

    // --- sessions --------------------------------------------------------

    /// Open a session over uploaded CSV text.
    pub fn create_session_csv(&self, file_name: &str, csv: &str) -> Result<u64, JobError> {
        self.create_session_with(|ctrl| ctrl.ingest_csv_text(file_name, csv))
    }

    /// Open a session over a preloaded dataset (dirty variant).
    pub fn create_session_preloaded(&self, name: &str) -> Result<u64, JobError> {
        self.create_session_with(|ctrl| ctrl.ingest_preloaded(name))
    }

    /// Open a session over an in-memory table.
    pub fn create_session_table(&self, table: Table) -> Result<u64, JobError> {
        self.create_session_with(|ctrl| ctrl.ingest_table(table))
    }

    fn create_session_with(
        &self,
        ingest: impl FnOnce(&mut DashboardController) -> Result<(), DataLensError>,
    ) -> Result<u64, JobError> {
        if self.inner.stop.load(Ordering::SeqCst) {
            return Err(JobError::Stopped);
        }
        let id = self.inner.next_session.fetch_add(1, Ordering::SeqCst);
        let workspace_dir = self
            .inner
            .config
            .workspace_dir
            .as_ref()
            .map(|d| d.join("sessions").join(format!("s{id}")));
        let mut ctrl = DashboardController::new(DashboardConfig {
            workspace_dir,
            seed: self.inner.config.seed,
            threads: self.inner.config.threads,
            metrics: self.inner.config.metrics.clone(),
            profile_mode: self.inner.config.profile_mode,
        })?;
        ingest(&mut ctrl)?;
        let dataset = ctrl.table()?.name().to_string();
        let slot = Arc::new(SessionSlot::new(id, dataset, ctrl));
        self.inner.sessions.write().insert(id, slot);
        Ok(id)
    }

    /// Summaries of all sessions, in creation order.
    pub fn list_sessions(&self) -> Vec<SessionInfo> {
        let q = self.inner.queues.lock();
        self.inner
            .sessions
            .read()
            .values()
            .map(|s| s.info(q.queued_in(s.id), q.is_active(s.id)))
            .collect()
    }

    /// Inspect a session's pipeline state under its lock (blocks while a
    /// job of the session is mid-run).
    pub fn with_session<R>(
        &self,
        session_id: u64,
        f: impl FnOnce(&DashboardController) -> R,
    ) -> Result<R, JobError> {
        let slot = self
            .inner
            .sessions
            .read()
            .get(&session_id)
            .cloned()
            .ok_or(JobError::UnknownSession(session_id))?;
        let ctrl = slot.controller.lock();
        Ok(f(&ctrl))
    }

    // --- jobs ------------------------------------------------------------

    /// Submit a job to a session's queue.
    ///
    /// Admission-control order of checks: service stopped → health gate
    /// (`hold` sheds with [`JobError::Overloaded`] before touching any
    /// lock) → session exists → bounded queue
    /// ([`JobError::QueueFull`] at capacity).
    pub fn submit(&self, session_id: u64, spec: JobSpec) -> Result<u64, JobError> {
        if self.inner.stop.load(Ordering::SeqCst) {
            return Err(JobError::Stopped);
        }
        // Load shedding: one cached atomic read — the queue lock, the
        // session registry, and job allocation are all still ahead.
        if self.inner.gate.verdict() == Verdict::Hold {
            if let Some(m) = &self.inner.metrics {
                m.shed.inc();
            }
            return Err(JobError::Overloaded {
                retry_after_secs: self.inner.gate.retry_after_secs(),
            });
        }
        if !self.inner.sessions.read().contains_key(&session_id) {
            return Err(JobError::UnknownSession(session_id));
        }
        let id = self.inner.next_job.fetch_add(1, Ordering::SeqCst);
        let job = Arc::new(JobInner::new(
            id,
            session_id,
            spec,
            self.inner.config.event_buffer,
        ));
        {
            let mut q = self.inner.queues.lock();
            q.push(Arc::clone(&job))?;
            sync_queue_state(&self.inner, &q);
        }
        self.inner.gate.evaluate();
        if let Some(m) = &self.inner.metrics {
            m.submitted.inc();
        }
        self.inner.jobs.write().insert(id, job);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    fn job(&self, job_id: u64) -> Result<Arc<JobInner>, JobError> {
        self.inner
            .jobs
            .read()
            .get(&job_id)
            .cloned()
            .ok_or(JobError::UnknownJob(job_id))
    }

    /// Live snapshot: state, per-stage reports, progress.
    pub fn status(&self, job_id: u64) -> Result<JobStatus, JobError> {
        Ok(self.job(job_id)?.status())
    }

    /// Terminal state plus everything the job produced.
    pub fn result(&self, job_id: u64) -> Result<(JobState, JobOutcome, Option<String>), JobError> {
        Ok(self.job(job_id)?.result())
    }

    /// Block until the job reaches a terminal state (or the timeout
    /// elapses); returns the latest snapshot either way.
    pub fn wait(&self, job_id: u64, timeout: Option<Duration>) -> Result<JobStatus, JobError> {
        Ok(self.job(job_id)?.wait_terminal(timeout))
    }

    /// Request cancellation. A still-queued job is cancelled
    /// immediately; a running job stops at its next stage boundary.
    /// Terminal jobs are unaffected. Returns the post-cancel snapshot.
    pub fn cancel(&self, job_id: u64) -> Result<JobStatus, JobError> {
        let job = self.job(job_id)?;
        job.request_cancel();
        let removed = {
            let mut q = self.inner.queues.lock();
            let removed = q.remove(job.session, job.id);
            sync_queue_state(&self.inner, &q);
            removed
        };
        self.inner.gate.evaluate();
        if removed {
            job.finish(JobState::Cancelled, None);
            self.finish_bookkeeping(&job);
        }
        Ok(job.status())
    }

    /// Snapshots of every job, in submission order.
    pub fn list_jobs(&self) -> Vec<JobStatus> {
        self.inner
            .jobs
            .read()
            .values()
            .map(|j| j.status())
            .collect()
    }

    /// `(queued, capacity)` of the bounded queue.
    pub fn queue_stats(&self) -> (usize, usize) {
        let q = self.inner.queues.lock();
        (q.queued(), q.depth())
    }

    // --- health ----------------------------------------------------------

    /// The service's health gate — share it with the HTTP server
    /// ([`datalens_rest::server::ServerConfig::health_gate`]) so stream
    /// admission and job admission act on the same verdict.
    pub fn health_gate(&self) -> Arc<HealthGate> {
        Arc::clone(&self.inner.gate)
    }

    /// Evaluate the gate against a fresh queue snapshot — the producer
    /// side of `GET /health`.
    pub fn health_report(&self) -> HealthReport {
        {
            let q = self.inner.queues.lock();
            sync_queue_state(&self.inner, &q);
        }
        self.inner.gate.evaluate()
    }

    // --- event feeds -----------------------------------------------------

    /// Subscribe to a job's event log. Replays the full history (`plan`
    /// first) and then follows live progress to the terminal event —
    /// the producer side of `GET /jobs/{id}/events`.
    pub fn subscribe_job_events(&self, job_id: u64) -> Result<JobEventSubscription, JobError> {
        Ok(JobEventSubscription::new(self.job(job_id)?))
    }

    /// Live SSE subscribers currently attached to a job.
    pub fn job_event_subscribers(&self, job_id: u64) -> Result<usize, JobError> {
        Ok(self.job(job_id)?.subscriber_count())
    }

    /// Subscribe to the service-wide quality-alert feed (live: only
    /// alerts published after this call) — the producer side of
    /// `GET /alerts/events`.
    pub fn subscribe_alerts(&self) -> AlertSubscription {
        self.inner.alerts.subscribe()
    }

    /// Subscribers currently attached to the alert feed.
    pub fn alert_subscribers(&self) -> usize {
        self.inner.alerts.subscribers()
    }

    /// Stop the worker pool: running jobs finish their current step
    /// chain, queued jobs stay `Queued`. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drain mode: the gate holds (reason `shutdown_in_progress`) so
        // admission paths shed while the pool winds down.
        self.inner.gate.set_draining(true);
        self.inner.gate.evaluate();
        self.inner.work_cv.notify_all();
        // Take the handles out first: holding the `workers` lock across
        // the joins would stall any thread touching the pool until every
        // worker exits.
        let workers = std::mem::take(&mut *self.workers.lock());
        for t in workers {
            let _ = t.join();
        }
        // Wake alert-feed subscribers so their streams can end.
        self.inner.alerts.close();
    }

    fn finish_bookkeeping(&self, job: &JobInner) {
        finish_bookkeeping(&self.inner, job);
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// --- worker pool ---------------------------------------------------------

/// Recompute-and-publish the queue-depth outputs (gauge + health-gate
/// inputs) *while the queue lock is held*, so every publication reflects
/// one consistent snapshot. Publishing outside the lock from values read
/// under earlier acquisitions let concurrent submit/pop interleave and
/// pin a stale depth until the next queue event. Plain atomic stores —
/// nothing blocks under the lock.
fn sync_queue_state(inner: &Inner, q: &SessionQueues) {
    let queued = q.queued();
    if let Some(m) = &inner.metrics {
        m.queue_depth.set(queued as i64);
    }
    inner.gate.set_queue(queued as u64, q.depth() as u64);
    inner
        .gate
        .set_session_backlog(q.max_session_backlog() as u64);
}

fn worker_loop(inner: &Inner) {
    // Paired with the `worker_started` call in `JobService::new`: the
    // guard marks the slot dead on any exit, including a panic
    // unwinding out of a job, which flips the gate to `hold`
    // (`worker_pool_degraded`).
    struct AliveGuard<'a>(&'a Inner);
    impl Drop for AliveGuard<'_> {
        fn drop(&mut self) {
            self.0.gate.worker_stopped();
            self.0.gate.evaluate();
        }
    }
    let _alive = AliveGuard(inner);
    loop {
        let claimed = {
            let mut q = inner.queues.lock();
            loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(x) = q.pop() {
                    sync_queue_state(inner, &q);
                    break x;
                }
                inner.work_cv.wait(&mut q);
            }
        };
        inner.gate.evaluate();
        let (session_id, job) = claimed;
        if let Some(m) = &inner.metrics {
            m.queue_wait
                .observe(job.submitted.elapsed().as_secs_f64() * 1e3);
        }
        run_job(inner, session_id, &job);
        let more = {
            let mut q = inner.queues.lock();
            q.finish(session_id)
        };
        if more {
            inner.work_cv.notify_one();
        }
    }
}

/// Execute one job against its session, honouring cancellation between
/// stages.
fn run_job(inner: &Inner, session_id: u64, job: &JobInner) {
    if !job.try_start() {
        // Cancelled while queued (or a cancel won the claim race).
        finish_bookkeeping(inner, job);
        return;
    }
    let slot = inner.sessions.read().get(&session_id).cloned();
    let Some(slot) = slot else {
        job.finish(
            JobState::Failed,
            Some(format!("session {session_id} vanished")),
        );
        finish_bookkeeping(inner, job);
        return;
    };
    if let Some(m) = &inner.metrics {
        m.running.add(1);
    }
    // The controller lock is taken per step (inside `run_step`), never
    // across the whole loop: a multi-second `Sleep` step must not stall
    // REST handlers that need the same session's controller.
    let mut cursor = slot
        .controller
        .lock()
        .stage_reports()
        .map(<[_]>::len)
        .unwrap_or(0);
    let mut outcome = Ok(());
    let mut cancelled = false;
    for step in &job.spec.steps {
        if job.cancel_requested() {
            cancelled = true;
            break;
        }
        outcome = run_step(inner, &slot.controller, job, step, &mut cursor);
        if outcome.is_err() {
            break;
        }
    }
    // The boundary after the last step counts too: a cancel that
    // interrupted the final step (e.g. an aborted `Sleep`) must not be
    // reported as `Done`.
    if !cancelled && outcome.is_ok() && job.cancel_requested() {
        cancelled = true;
    }
    match (cancelled, outcome) {
        (true, _) => job.finish(JobState::Cancelled, None),
        (false, Ok(())) => job.finish(JobState::Done, None),
        (false, Err(e)) => job.finish(JobState::Failed, Some(e.to_string())),
    }
    if let Some(m) = &inner.metrics {
        m.running.sub(1);
    }
    slot.jobs_finished.fetch_add(1, Ordering::SeqCst);
    finish_bookkeeping(inner, job);
}

/// Run one step, appending the engine stage reports it produced (plus
/// synthesised reports for stages the controller does not instrument)
/// and folding its numbers into the job outcome.
///
/// Takes the controller *mutex*, not a held guard: each arm locks only
/// around the controller work it actually does, and alert publication
/// and job bookkeeping run after the guard is dropped. `Sleep` never
/// touches the controller at all.
fn run_step(
    inner: &Inner,
    ctrl: &Mutex<DashboardController>,
    job: &JobInner,
    step: &JobStep,
    cursor: &mut usize,
) -> Result<(), DataLensError> {
    match step {
        JobStep::Profile => {
            let (summary, quality_alerts, reports) = {
                let mut c = ctrl.lock();
                // A spec-level mode overrides the service default the
                // controller was configured with.
                let p = match job.spec.profile_mode {
                    Some(mode) => c.profile_with_mode(mode)?,
                    None => c.profile()?,
                };
                let summary = ProfileSummary {
                    rows: p.table.n_rows,
                    cols: p.columns.len(),
                    missing_cells: p.table.missing_cells,
                };
                let quality_alerts = p.alerts.clone();
                let reports = drain_reports(&c, cursor);
                (summary, quality_alerts, reports)
            };
            for alert in quality_alerts {
                publish_alert(
                    inner,
                    job,
                    "profile",
                    &format!("{:?}", alert.kind),
                    alert.column.clone(),
                    alert.message.clone(),
                );
            }
            job.record_step(reports, |o| o.profile = Some(summary));
        }
        JobStep::MineRules { max_g3_error } => {
            let (added, reports) = {
                let mut c = ctrl.lock();
                let added = c.discover_rules_approx(*max_g3_error)?;
                (added, drain_reports(&c, cursor))
            };
            job.record_step(reports, |o| {
                o.rules_added = Some(o.rules_added.unwrap_or(0) + added)
            });
        }
        JobStep::Detect { tools } => {
            let refs: Vec<&str> = tools.iter().map(String::as_str).collect();
            let (n, reports) = {
                let mut c = ctrl.lock();
                let n = c.run_detection(&refs)?;
                (n, drain_reports(&c, cursor))
            };
            if n > 0 {
                publish_alert(
                    inner,
                    job,
                    "detect",
                    "detections",
                    None,
                    format!("{n} cells flagged by {}", tools.join("+")),
                );
            }
            job.record_step(reports, |o| o.n_detections = Some(n));
        }
        JobStep::Repair { tool } => {
            let (n, csv, version, reports) = {
                let mut c = ctrl.lock();
                let n = c.repair(tool)?;
                let csv = datalens_table::csv::write_csv_str(c.repaired_table()?);
                let version = c.state()?.repaired_version;
                let reports = drain_reports(&c, cursor);
                (n, csv, version, reports)
            };
            job.record_step(reports, |o| {
                o.n_repaired = Some(n);
                o.repaired_csv = Some(csv);
                o.repaired_version = version;
            });
        }
        JobStep::IterativeClean {
            target,
            task,
            iterations,
        } => {
            let start = Instant::now();
            let (report, rows, cells, mut reports) = {
                let c = ctrl.lock();
                let cfg = IterativeCleaningConfig {
                    iterations: *iterations,
                    // Cheap candidate tools: iterative search multiplies
                    // their cost by the iteration budget.
                    detectors: vec!["sd".into(), "iqr".into(), "mv_detector".into()],
                    repairers: vec!["standard_imputer".into(), "ml_imputer".into()],
                    seed: c.engine().config().seed,
                    ..IterativeCleaningConfig::new(target.clone(), *task)
                };
                let report = run_iterative_cleaning(c.table()?, c.rules()?, &cfg, None)?;
                let t = c.table()?;
                let (rows, cells) = (t.n_rows(), t.n_rows() * t.n_cols());
                let reports = drain_reports(&c, cursor);
                (report, rows, cells, reports)
            };
            let synthetic = StageReport {
                stage: "iterative_clean".into(),
                detail: target.clone(),
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
                rows_processed: rows,
                cells_processed: cells,
                flags_produced: report.iterations_run,
            };
            reports.push(synthetic);
            job.record_step(reports, |o| o.iterative = Some(report));
        }
        JobStep::Sleep { ms } => {
            let start = Instant::now();
            let deadline = start + Duration::from_millis(*ms);
            while Instant::now() < deadline && !job.cancel_requested() {
                std::thread::sleep(Duration::from_millis(5.min(*ms).max(1)));
            }
            let synthetic = StageReport {
                stage: "sleep".into(),
                detail: format!("{ms}ms"),
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
                rows_processed: 0,
                cells_processed: 0,
                flags_produced: 0,
            };
            job.record_step(vec![synthetic], |_| {});
        }
    }
    Ok(())
}

/// Publish one quality alert onto the service-wide live feed.
fn publish_alert(
    inner: &Inner,
    job: &JobInner,
    stage: &str,
    kind: &str,
    column: Option<String>,
    message: String,
) {
    inner.alerts.publish(AlertEvent {
        seq: 0, // assigned by the bus
        session_id: job.session,
        job_id: job.id,
        stage: stage.to_string(),
        kind: kind.to_string(),
        column,
        message,
    });
    if let Some(m) = &inner.metrics {
        m.alerts_emitted.inc();
    }
}

fn drain_reports(ctrl: &DashboardController, cursor: &mut usize) -> Vec<StageReport> {
    let all = ctrl.stage_reports().unwrap_or(&[]);
    let new = all[*cursor..].to_vec();
    *cursor = all.len();
    new
}

/// Terminal bookkeeping shared by workers and queue-side cancellation:
/// one state-transition metric and one tracking run per job
/// (best-effort). Called exactly once per job, at its terminal state.
fn finish_bookkeeping(inner: &Inner, job: &JobInner) {
    let (state, _, _) = job.result();
    if state.is_terminal() {
        if let Some(m) = &inner.metrics {
            m.record_terminal(state);
        }
        // Health inputs: failures grow the streak, successes clear it,
        // cancellations are neutral; every terminal feeds the
        // drain-rate estimator behind `Retry-After`.
        inner.gate.record_job_terminal(match state {
            JobState::Failed => Some(true),
            JobState::Done => Some(false),
            _ => None,
        });
        inner.gate.evaluate();
    }
    let Some(store) = &inner.tracking else { return };
    let status = job.status();
    let log = || -> Result<(), TrackingError> {
        let exp = store.get_or_create_experiment(EXPERIMENT_JOBS)?;
        let run = store.start_run(&exp, &format!("job-{} {}", job.id, job.spec.describe()))?;
        run.log_param("session", &status.session_id.to_string())?;
        run.log_param("spec", &job.spec.describe())?;
        run.log_param("state", status.state.as_str())?;
        run.log_metric("steps_done", status.steps_done as f64, 0)?;
        for r in &status.reports {
            run.log_metric(&format!("wall_ms_{}", r.label()), r.wall_ms, 0)?;
        }
        run.end(match status.state {
            JobState::Done => RunStatus::Finished,
            JobState::Cancelled => RunStatus::Killed,
            _ => RunStatus::Failed,
        })?;
        Ok(())
    };
    let _ = log();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(workers: usize, queue_depth: usize) -> JobService {
        JobService::new(JobServiceConfig {
            workers,
            queue_depth,
            ..JobServiceConfig::default()
        })
        .unwrap()
    }

    const CSV: &str =
        "zip,city,pop\n1,ulm,120\n1,ulm,120\n2,bonn,99999\n2,bonn,330\n1,oops,120\n3,mainz,\n";

    #[test]
    fn submit_run_and_fetch_result() {
        let svc = service(2, 8);
        let sid = svc.create_session_csv("demo.csv", CSV).unwrap();
        let jid = svc
            .submit(
                sid,
                JobSpec::full(0.2, &["sd", "mv_detector"], "standard_imputer"),
            )
            .unwrap();
        let status = svc.wait(jid, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(status.state, JobState::Done, "err: {:?}", status.error);
        assert_eq!(status.steps_done, 4);
        assert!(!status.reports.is_empty());
        let (state, outcome, err) = svc.result(jid).unwrap();
        assert_eq!(state, JobState::Done);
        assert!(err.is_none());
        assert!(outcome.profile.is_some());
        assert!(outcome.rules_added.is_some());
        assert!(outcome.n_detections.unwrap() > 0);
        assert!(outcome.n_repaired.unwrap() > 0);
        assert!(outcome.repaired_csv.as_ref().unwrap().contains("zip"));
    }

    #[test]
    fn service_profile_mode_governs_legacy_specs_and_specs_override() {
        let metrics = Arc::new(Registry::new());
        let svc = JobService::new(JobServiceConfig {
            workers: 1,
            queue_depth: 8,
            metrics: Some(Arc::clone(&metrics)),
            profile_mode: datalens_profile::ProfileMode::Approx,
            ..JobServiceConfig::default()
        })
        .unwrap();
        let sid = svc.create_session_csv("demo.csv", CSV).unwrap();

        // A spec without profile_mode (the legacy wire shape) runs in
        // the service's configured mode: the sketch pipeline engages.
        let jid = svc.submit(sid, JobSpec::profile()).unwrap();
        let status = svc.wait(jid, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(status.state, JobState::Done, "err: {:?}", status.error);
        let merges = metrics.counter("profile_sketch_merges_total").get();
        assert!(merges > 0, "approx default did not engage sketches");
        assert!(metrics.gauge("sketch_bytes_resident").get() > 0);

        // An explicit spec-level Exact overrides the service default:
        // no new sketch merges.
        let jid = svc
            .submit(
                sid,
                JobSpec::profile().with_profile_mode(datalens_profile::ProfileMode::Exact),
            )
            .unwrap();
        let status = svc.wait(jid, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(status.state, JobState::Done, "err: {:?}", status.error);
        assert_eq!(metrics.counter("profile_sketch_merges_total").get(), merges);
    }

    #[test]
    fn unknown_ids_are_typed_errors() {
        let svc = service(1, 2);
        assert!(matches!(
            svc.submit(99, JobSpec::profile()),
            Err(JobError::UnknownSession(99))
        ));
        assert!(matches!(svc.status(42), Err(JobError::UnknownJob(42))));
        assert!(matches!(svc.cancel(42), Err(JobError::UnknownJob(42))));
    }

    #[test]
    fn failed_step_yields_failed_state_with_error() {
        let svc = service(1, 4);
        let sid = svc.create_session_csv("d.csv", CSV).unwrap();
        let jid = svc.submit(sid, JobSpec::detect(&["no_such_tool"])).unwrap();
        let status = svc.wait(jid, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(status.state, JobState::Failed);
        assert!(status.error.unwrap().contains("no_such_tool"));
    }

    #[test]
    fn queue_full_is_backpressure() {
        let svc = service(1, 1);
        let sid = svc.create_session_csv("d.csv", CSV).unwrap();
        // Occupy the single worker…
        let running = svc
            .submit(sid, JobSpec::new(vec![JobStep::Sleep { ms: 2_000 }]))
            .unwrap();
        // …wait until it is actually claimed (queued = 0)…
        while svc.status(running).unwrap().state == JobState::Queued {
            std::thread::sleep(Duration::from_millis(2));
        }
        // …fill the queue, then overflow it. Filling a depth-1 queue
        // also trips the health gate (utilisation 1.0 ⇒ hold), so the
        // overflow is shed by admission control before it can even see
        // the full queue — both are 429-class backpressure.
        svc.submit(sid, JobSpec::profile()).unwrap();
        assert!(matches!(
            svc.submit(sid, JobSpec::profile()),
            Err(JobError::Overloaded { .. } | JobError::QueueFull { .. })
        ));
        svc.cancel(running).unwrap();
    }

    #[test]
    fn cancel_queued_job_is_immediate() {
        let svc = service(1, 8);
        let sid = svc.create_session_csv("d.csv", CSV).unwrap();
        let blocker = svc
            .submit(sid, JobSpec::new(vec![JobStep::Sleep { ms: 2_000 }]))
            .unwrap();
        let queued = svc.submit(sid, JobSpec::profile()).unwrap();
        let status = svc.cancel(queued).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        let s = svc.cancel(blocker).unwrap();
        assert!(matches!(s.state, JobState::Running | JobState::Cancelled));
        let s = svc.wait(blocker, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(s.state, JobState::Cancelled);
    }

    #[test]
    fn job_events_replay_plan_progress_terminal() {
        let svc = service(1, 8);
        let sid = svc.create_session_csv("d.csv", CSV).unwrap();
        let jid = svc.submit(sid, JobSpec::profile()).unwrap();
        svc.wait(jid, Some(Duration::from_secs(30))).unwrap();

        let drain = |mut sub: JobEventSubscription| {
            let mut events = Vec::new();
            loop {
                match sub.next(Duration::from_millis(100)) {
                    JobFeedItem::Event(e) => events.push(e),
                    JobFeedItem::Idle => {}
                    JobFeedItem::Terminated => break events,
                }
            }
        };
        // A late subscriber still replays the full history…
        let a = drain(svc.subscribe_job_events(jid).unwrap());
        assert_eq!(a.first().map(|e| e.event.as_str()), Some("plan"));
        assert_eq!(a.last().map(|e| e.event.as_str()), Some("result"));
        assert!(a.iter().any(|e| e.event == "progress"));
        assert!(a[0].data.contains("\"spec\""));
        // …and every subscriber reads bit-identical payload bytes.
        let b = drain(svc.subscribe_job_events(jid).unwrap());
        assert_eq!(a, b);
        assert_eq!(svc.job_event_subscribers(jid).unwrap(), 0);
    }

    #[test]
    fn event_log_is_bounded_but_terminal_always_lands() {
        let svc = JobService::new(JobServiceConfig {
            workers: 1,
            queue_depth: 8,
            event_buffer: 2, // plan + one progress event
            ..JobServiceConfig::default()
        })
        .unwrap();
        let sid = svc.create_session_csv("d.csv", CSV).unwrap();
        // Three sleep steps → three progress events; only the first fits.
        let jid = svc
            .submit(
                sid,
                JobSpec::new(vec![
                    JobStep::Sleep { ms: 1 },
                    JobStep::Sleep { ms: 1 },
                    JobStep::Sleep { ms: 1 },
                ]),
            )
            .unwrap();
        svc.wait(jid, Some(Duration::from_secs(10))).unwrap();
        let mut sub = svc.subscribe_job_events(jid).unwrap();
        let mut events = Vec::new();
        loop {
            match sub.next(Duration::from_millis(50)) {
                JobFeedItem::Event(e) => events.push(e),
                JobFeedItem::Idle => {}
                JobFeedItem::Terminated => break,
            }
        }
        // plan + 1 progress (cap) + result (terminal bypasses the cap).
        assert_eq!(
            events.iter().map(|e| e.event.as_str()).collect::<Vec<_>>(),
            vec!["plan", "progress", "result"]
        );
        // Two progress events were dropped, so the terminal event's seq
        // reflects the gap: plan=0, progress=1, (2 and 3 dropped), result=4.
        assert_eq!(events.last().map(|e| e.seq), Some(4));
    }

    #[test]
    fn alert_feed_carries_profile_alerts() {
        let metrics = Arc::new(Registry::new());
        let svc = JobService::new(JobServiceConfig {
            workers: 1,
            queue_depth: 8,
            metrics: Some(Arc::clone(&metrics)),
            ..JobServiceConfig::default()
        })
        .unwrap();
        // `pop` has 1/6 missing plus outliers; `city` has an FD-breaking
        // dupe — the profile alert config flags high-missing at 20%.
        let sid = svc
            .create_session_csv("d.csv", "a,b\n1,x\n2,y\n,\n,\n")
            .unwrap();
        let mut sub = svc.subscribe_alerts();
        let jid = svc
            .submit(sid, JobSpec::new(vec![JobStep::Profile]))
            .unwrap();
        svc.wait(jid, Some(Duration::from_secs(30))).unwrap();
        let mut seen = Vec::new();
        loop {
            match sub.next(Duration::from_millis(100)) {
                AlertFeedItem::Event(e) => seen.push(e),
                AlertFeedItem::Idle => break,
                AlertFeedItem::Closed => break,
            }
        }
        assert!(
            seen.iter()
                .any(|e| e.stage == "profile" && e.kind.contains("Missing")),
            "expected a high-missing profile alert, got {seen:?}"
        );
        assert!(metrics.counter("alerts_emitted_total").get() > 0);
        drop(sub);
        assert_eq!(svc.alert_subscribers(), 0);
    }

    /// Terminal events (`result`/`failed`/`cancelled`) in a job's log.
    fn terminal_events(svc: &JobService, jid: u64) -> Vec<String> {
        let mut sub = svc.subscribe_job_events(jid).unwrap();
        let mut terms = Vec::new();
        loop {
            match sub.next(Duration::from_millis(100)) {
                JobFeedItem::Event(e) => {
                    if matches!(e.event.as_str(), "result" | "failed" | "cancelled") {
                        terms.push(e.event);
                    }
                }
                JobFeedItem::Idle => {}
                JobFeedItem::Terminated => break terms,
            }
        }
    }

    #[test]
    fn queue_depth_gauge_matches_queue_at_quiescence() {
        // Regression: the gauge used to be `set()` from values read
        // under three different lock acquisitions; interleavings could
        // publish a stale depth that never corrected. Hammer
        // submit/cancel from several threads, then compare the gauge
        // against `SessionQueues::queued()` once everything settles.
        let metrics = Arc::new(Registry::new());
        let svc = Arc::new(
            JobService::new(JobServiceConfig {
                workers: 2,
                queue_depth: 64,
                metrics: Some(Arc::clone(&metrics)),
                ..JobServiceConfig::default()
            })
            .unwrap(),
        );
        let sid = svc.create_session_csv("d.csv", CSV).unwrap();
        let mut hammers = Vec::new();
        for t in 0..4 {
            let svc = Arc::clone(&svc);
            hammers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    // Shed/overflow rejections are fine — the point is
                    // contention on the queue lock, not throughput.
                    let Ok(jid) = svc.submit(sid, JobSpec::new(vec![JobStep::Sleep { ms: 1 }]))
                    else {
                        continue;
                    };
                    if (i + t) % 2 == 0 {
                        let _ = svc.cancel(jid);
                    }
                }
            }));
        }
        for h in hammers {
            h.join().unwrap();
        }
        // Quiescence: every surviving job reaches a terminal state.
        let deadline = Instant::now() + Duration::from_secs(30);
        while svc.list_jobs().iter().any(|j| !j.state.is_terminal()) {
            assert!(Instant::now() < deadline, "jobs stuck non-terminal");
            std::thread::sleep(Duration::from_millis(5));
        }
        let (queued, _) = svc.queue_stats();
        assert_eq!(queued, 0, "queue must drain at quiescence");
        assert_eq!(
            metrics.gauge("jobs_queue_depth").get(),
            queued as i64,
            "gauge diverged from SessionQueues::queued()"
        );
    }

    #[test]
    fn cancel_matrix_queued_running_terminal() {
        let svc = service(1, 8);
        let sid = svc.create_session_csv("d.csv", CSV).unwrap();

        // Matrix row 1 — queued: a blocker pins the single worker, so
        // the victim is cancelled straight out of the queue.
        let blocker = svc
            .submit(sid, JobSpec::new(vec![JobStep::Sleep { ms: 5_000 }]))
            .unwrap();
        while svc.status(blocker).unwrap().state == JobState::Queued {
            std::thread::sleep(Duration::from_millis(2));
        }
        let queued_victim = svc.submit(sid, JobSpec::profile()).unwrap();
        assert_eq!(
            svc.cancel(queued_victim).unwrap().state,
            JobState::Cancelled
        );
        assert_eq!(terminal_events(&svc, queued_victim), vec!["cancelled"]);

        // Matrix row 2 — running: the blocker is mid-`Sleep`; the
        // cooperative flag is polled every ≤5ms inside the stage, so
        // cancellation lands long before the 5s sleep would end.
        let started = Instant::now();
        svc.cancel(blocker).unwrap();
        let status = svc.wait(blocker, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "cooperative cancel was not honoured mid-stage: {:?}",
            started.elapsed()
        );
        assert_eq!(terminal_events(&svc, blocker), vec!["cancelled"]);

        // Matrix row 3 — already terminal: cancel is a no-op that must
        // not overwrite the state or append a second terminal event.
        let done = svc
            .submit(sid, JobSpec::new(vec![JobStep::Sleep { ms: 1 }]))
            .unwrap();
        assert_eq!(
            svc.wait(done, Some(Duration::from_secs(10))).unwrap().state,
            JobState::Done
        );
        assert_eq!(svc.cancel(done).unwrap().state, JobState::Done);
        assert_eq!(terminal_events(&svc, done), vec!["result"]);
    }

    #[test]
    fn cancel_racing_worker_pop_lands_exactly_one_terminal_event() {
        let svc = Arc::new(service(1, 8));
        let sid = svc.create_session_csv("d.csv", CSV).unwrap();
        for _ in 0..20 {
            // A short blocker so the worker's `pop` of the victim races
            // the cancel below.
            let blocker = svc
                .submit(sid, JobSpec::new(vec![JobStep::Sleep { ms: 5 }]))
                .unwrap();
            let victim = svc
                .submit(sid, JobSpec::new(vec![JobStep::Sleep { ms: 1 }]))
                .unwrap();
            let canceller = {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    let _ = svc.cancel(victim);
                })
            };
            canceller.join().unwrap();
            svc.wait(blocker, Some(Duration::from_secs(10))).unwrap();
            let status = svc.wait(victim, Some(Duration::from_secs(10))).unwrap();
            // Whoever wins the race, the outcome is a single terminal
            // state with exactly one terminal event in the log.
            assert!(
                matches!(status.state, JobState::Done | JobState::Cancelled),
                "unexpected state {:?}",
                status.state
            );
            let terms = terminal_events(&svc, victim);
            assert_eq!(terms.len(), 1, "terminal events: {terms:?}");
        }
    }

    #[test]
    fn health_gate_walks_pass_hold_pass_on_queue_saturation() {
        let metrics = Arc::new(Registry::new());
        let svc = JobService::new(JobServiceConfig {
            workers: 1,
            queue_depth: 1,
            metrics: Some(Arc::clone(&metrics)),
            ..JobServiceConfig::default()
        })
        .unwrap();
        let sid = svc.create_session_csv("d.csv", CSV).unwrap();
        assert_eq!(svc.health_report().verdict, Verdict::Pass);

        // Pin the worker, fill the depth-1 queue ⇒ utilisation 1.0.
        let blocker = svc
            .submit(sid, JobSpec::new(vec![JobStep::Sleep { ms: 5_000 }]))
            .unwrap();
        while svc.status(blocker).unwrap().state == JobState::Queued {
            std::thread::sleep(Duration::from_millis(2));
        }
        let filler = svc.submit(sid, JobSpec::profile()).unwrap();
        let report = svc.health_report();
        assert_eq!(report.verdict, Verdict::Hold);
        assert!(report
            .reasons
            .iter()
            .any(|r| r.as_str() == "queue_backpressure_applied"));

        // Admission control sheds before the queue lock…
        let shed = svc.submit(sid, JobSpec::profile());
        assert!(matches!(shed, Err(JobError::Overloaded { .. })), "{shed:?}");
        assert!(metrics.counter("jobs_shed_total").get() > 0);
        assert_eq!(metrics.gauge("health_verdict").get(), 2);

        // …and draining the queue flips the gate back to pass.
        svc.cancel(filler).unwrap();
        svc.cancel(blocker).unwrap();
        svc.wait(blocker, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(svc.health_report().verdict, Verdict::Pass);
        assert_eq!(metrics.gauge("health_verdict").get(), 0);
        assert!(svc.submit(sid, JobSpec::profile()).is_ok());
    }

    #[test]
    fn shutdown_holds_the_gate_with_drain_reason() {
        let svc = service(1, 8);
        svc.shutdown();
        let report = svc.health_report();
        assert_eq!(report.verdict, Verdict::Hold);
        assert!(report
            .reasons
            .iter()
            .any(|r| r.as_str() == "shutdown_in_progress"));
    }

    #[test]
    fn shutdown_leaves_queued_jobs_queued() {
        let svc = service(1, 8);
        let sid = svc.create_session_csv("d.csv", CSV).unwrap();
        let a = svc
            .submit(sid, JobSpec::new(vec![JobStep::Sleep { ms: 50 }]))
            .unwrap();
        svc.wait(a, Some(Duration::from_secs(10))).unwrap();
        svc.shutdown();
        assert!(matches!(
            svc.submit(sid, JobSpec::profile()),
            Err(JobError::Stopped)
        ));
    }
}

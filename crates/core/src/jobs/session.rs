//! Sessions: one loaded dataset and its pipeline state per session.
//!
//! A session owns a [`DashboardController`] (dirty table, rules,
//! detections, Delta/tracking handles) behind a per-session lock. The
//! scheduler guarantees at most one job of a session runs at a time, so
//! the lock is uncontended on the job path; it also lets inspection
//! (status panels, tests) read a session's state between jobs.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::controller::DashboardController;

/// Externally visible session summary (the `GET /sessions` body and the
/// dashboard Jobs panel).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionInfo {
    pub session_id: u64,
    pub dataset: String,
    pub rows: usize,
    pub cols: usize,
    /// Jobs of this session waiting in the queue.
    pub queued: usize,
    /// Is a job of this session running right now?
    pub running: bool,
    /// Jobs that reached a terminal state.
    pub jobs_finished: usize,
}

/// The in-memory session record.
pub(crate) struct SessionSlot {
    pub id: u64,
    pub dataset: String,
    pub shape: (usize, usize),
    pub controller: Mutex<DashboardController>,
    pub jobs_finished: AtomicUsize,
}

impl SessionSlot {
    pub fn new(id: u64, dataset: String, controller: DashboardController) -> SessionSlot {
        let shape = controller
            .table()
            .map(|t| (t.n_rows(), t.n_cols()))
            .unwrap_or((0, 0));
        SessionSlot {
            id,
            dataset,
            shape,
            controller: Mutex::new(controller),
            jobs_finished: AtomicUsize::new(0),
        }
    }

    pub fn info(&self, queued: usize, running: bool) -> SessionInfo {
        SessionInfo {
            session_id: self.id,
            dataset: self.dataset.clone(),
            rows: self.shape.0,
            cols: self.shape.1,
            queued,
            running,
            jobs_finished: self.jobs_finished.load(Ordering::SeqCst),
        }
    }
}

//! Event types for streaming job progress and quality alerts.
//!
//! Two broadcast shapes back the SSE endpoints:
//!
//! - **Per-job event log** (owned by each job, see `job.rs`): every
//!   lifecycle event (`plan` → `progress`… → terminal) is serialised
//!   *once* at publish time and appended to a bounded log. Subscribers
//!   replay the log from the start, so any number of subscribers — at
//!   any time, across any number of connections — observe bit-identical
//!   event payload sequences for the same job.
//! - **Service-wide [`AlertBus`]** (this module): a bounded ring of
//!   quality [`AlertEvent`]s published as profiling/detection stages
//!   complete. Live-feed semantics: a subscriber starts at the current
//!   sequence number and sees only alerts published after it joined; a
//!   laggard that falls behind the ring skips forward (alerts are
//!   advisory, freshness beats completeness).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use serde::{Deserialize, Serialize};

/// One entry in a job's event log.
///
/// `data` holds the payload as JSON serialised once at publish time;
/// replaying the log re-sends the same bytes to every subscriber.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Position in the job's event history (monotonic, includes events
    /// dropped when the bounded log was full).
    pub seq: u64,
    /// SSE event name: `plan`, `progress`, `result`, `cancelled`, or
    /// `failed`.
    pub event: String,
    /// JSON payload, pre-serialised.
    pub data: String,
}

/// One quality alert on the service-wide feed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Global position on the bus (monotonic across all sessions).
    pub seq: u64,
    pub session_id: u64,
    pub job_id: u64,
    /// The pipeline stage that raised it (`profile`, `detect`).
    pub stage: String,
    /// Alert kind label (e.g. `HighMissing`, `detections`).
    pub kind: String,
    /// Affected column, when the alert is column-scoped.
    pub column: Option<String>,
    pub message: String,
}

struct AlertRing {
    /// The newest `capacity` alerts; older ones age out of the ring.
    ring: VecDeque<AlertEvent>,
    /// Sequence number the *next* published alert will get.
    next_seq: u64,
    closed: bool,
}

/// Bounded broadcast ring for quality alerts.
///
/// Publishing never blocks: when the ring is full the oldest alert ages
/// out. [`AlertBus::close`] wakes all subscribers for shutdown.
pub struct AlertBus {
    inner: Mutex<AlertRing>,
    changed: Condvar,
    capacity: usize,
    subscribers: AtomicUsize,
}

impl AlertBus {
    pub fn new(capacity: usize) -> AlertBus {
        let capacity = capacity.max(1);
        AlertBus {
            inner: Mutex::new(AlertRing {
                ring: VecDeque::with_capacity(capacity),
                next_seq: 0,
                closed: false,
            }),
            changed: Condvar::new(),
            capacity,
            subscribers: AtomicUsize::new(0),
        }
    }

    /// Publish one alert (assigning its sequence number) and wake
    /// subscribers. Publishing onto a closed bus is a no-op.
    pub fn publish(&self, mut event: AlertEvent) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        event.seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(event);
        drop(inner);
        self.changed.notify_all();
    }

    /// Subscribe with live-feed semantics: only alerts published after
    /// this call are delivered.
    pub fn subscribe(self: &Arc<Self>) -> AlertSubscription {
        let next_seq = self.inner.lock().next_seq;
        self.subscribers.fetch_add(1, Ordering::SeqCst);
        AlertSubscription {
            bus: Arc::clone(self),
            next_seq,
        }
    }

    /// Currently attached subscribers.
    pub fn subscribers(&self) -> usize {
        self.subscribers.load(Ordering::SeqCst)
    }

    /// Close the feed: subscribers drain to [`AlertFeedItem::Closed`].
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.changed.notify_all();
    }
}

/// What [`AlertSubscription::next`] yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlertFeedItem {
    /// The next alert on the feed.
    Event(AlertEvent),
    /// Nothing new within the wait window.
    Idle,
    /// The bus closed (service shutdown) and the backlog is drained.
    Closed,
}

/// A live cursor onto an [`AlertBus`].
pub struct AlertSubscription {
    bus: Arc<AlertBus>,
    next_seq: u64,
}

impl AlertSubscription {
    /// The next alert, waiting up to `wait` for one. A subscriber that
    /// lagged behind the ring skips forward to the oldest retained
    /// alert rather than erroring.
    pub fn next(&mut self, wait: Duration) -> AlertFeedItem {
        let mut inner = self.bus.inner.lock();
        if self.next_seq >= inner.next_seq && !inner.closed {
            self.bus.changed.wait_for(&mut inner, wait);
        }
        if let Some(oldest) = inner.ring.front() {
            if oldest.seq > self.next_seq {
                self.next_seq = oldest.seq; // lagged out of the ring
            }
        }
        if self.next_seq < inner.next_seq {
            let oldest_seq = inner.next_seq - inner.ring.len() as u64;
            let offset = (self.next_seq - oldest_seq) as usize;
            if let Some(event) = inner.ring.get(offset) {
                let event = event.clone();
                self.next_seq += 1;
                return AlertFeedItem::Event(event);
            }
        }
        if inner.closed {
            AlertFeedItem::Closed
        } else {
            AlertFeedItem::Idle
        }
    }
}

impl Drop for AlertSubscription {
    fn drop(&mut self) {
        self.bus.subscribers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(msg: &str) -> AlertEvent {
        AlertEvent {
            seq: 0,
            session_id: 1,
            job_id: 1,
            stage: "profile".into(),
            kind: "HighMissing".into(),
            column: Some("a".into()),
            message: msg.into(),
        }
    }

    #[test]
    fn live_feed_only_sees_alerts_after_subscribe() {
        let bus = Arc::new(AlertBus::new(8));
        bus.publish(alert("before"));
        let mut sub = bus.subscribe();
        assert_eq!(sub.next(Duration::from_millis(1)), AlertFeedItem::Idle);
        bus.publish(alert("after"));
        match sub.next(Duration::from_millis(100)) {
            AlertFeedItem::Event(e) => {
                assert_eq!(e.message, "after");
                assert_eq!(e.seq, 1);
            }
            other => panic!("expected event, got {other:?}"),
        }
    }

    #[test]
    fn laggards_skip_forward_instead_of_erroring() {
        let bus = Arc::new(AlertBus::new(2));
        let mut sub = bus.subscribe();
        for i in 0..5 {
            bus.publish(alert(&format!("m{i}")));
        }
        // Ring holds only m3, m4; the subscriber skips to m3.
        match sub.next(Duration::from_millis(1)) {
            AlertFeedItem::Event(e) => assert_eq!(e.message, "m3"),
            other => panic!("expected m3, got {other:?}"),
        }
        match sub.next(Duration::from_millis(1)) {
            AlertFeedItem::Event(e) => assert_eq!(e.message, "m4"),
            other => panic!("expected m4, got {other:?}"),
        }
        assert_eq!(sub.next(Duration::from_millis(1)), AlertFeedItem::Idle);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let bus = Arc::new(AlertBus::new(4));
        let mut sub = bus.subscribe();
        bus.publish(alert("last"));
        bus.close();
        // Publishing after close is dropped.
        bus.publish(alert("ignored"));
        match sub.next(Duration::from_millis(1)) {
            AlertFeedItem::Event(e) => assert_eq!(e.message, "last"),
            other => panic!("expected event, got {other:?}"),
        }
        assert_eq!(sub.next(Duration::from_millis(1)), AlertFeedItem::Closed);
    }

    #[test]
    fn subscriber_count_tracks_drops() {
        let bus = Arc::new(AlertBus::new(4));
        assert_eq!(bus.subscribers(), 0);
        let a = bus.subscribe();
        let b = bus.subscribe();
        assert_eq!(bus.subscribers(), 2);
        drop(a);
        assert_eq!(bus.subscribers(), 1);
        drop(b);
        assert_eq!(bus.subscribers(), 0);
    }
}

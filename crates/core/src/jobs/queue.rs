//! The bounded, session-aware scheduling queue.
//!
//! Invariants:
//! - a session id appears in `ready` iff it has pending jobs and no job
//!   of it is currently running (`active`) — so same-session jobs run in
//!   strict FIFO submission order while distinct sessions fan out across
//!   the worker pool;
//! - `queued` counts jobs waiting (not yet popped); pushing beyond
//!   `depth` is an immediate typed rejection ([`JobError::QueueFull`]),
//!   the service's backpressure signal.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use super::job::{JobError, JobInner};

pub(crate) struct SessionQueues {
    depth: usize,
    queued: usize,
    ready: VecDeque<u64>,
    active: HashSet<u64>,
    pending: HashMap<u64, VecDeque<Arc<JobInner>>>,
}

impl SessionQueues {
    pub fn new(depth: usize) -> SessionQueues {
        let depth = depth.max(1);
        SessionQueues {
            depth,
            queued: 0,
            // `ready` holds at most one entry per session with pending
            // work, so the queue capacity bounds it too.
            ready: VecDeque::with_capacity(depth),
            active: HashSet::new(),
            pending: HashMap::new(),
        }
    }

    /// Jobs currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// The configured capacity.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Jobs of `session` currently waiting.
    pub fn queued_in(&self, session: u64) -> usize {
        self.pending.get(&session).map_or(0, VecDeque::len)
    }

    /// Is a job of `session` running right now?
    pub fn is_active(&self, session: u64) -> bool {
        self.active.contains(&session)
    }

    /// Largest per-session backlog among queued jobs — the health
    /// gate's "one tenant dominating the queue" signal.
    pub fn max_session_backlog(&self) -> usize {
        self.pending.values().map(VecDeque::len).max().unwrap_or(0)
    }

    /// Enqueue a job; rejects when the queue is at capacity.
    pub fn push(&mut self, job: Arc<JobInner>) -> Result<(), JobError> {
        if self.queued >= self.depth {
            return Err(JobError::QueueFull { depth: self.depth });
        }
        let session = job.session;
        let q = self.pending.entry(session).or_default();
        q.push_back(job);
        self.queued += 1;
        // Newly runnable: first pending job of an idle session.
        if q.len() == 1 && !self.active.contains(&session) {
            self.ready.push_back(session);
        }
        Ok(())
    }

    /// Pop the next runnable job, marking its session active.
    pub fn pop(&mut self) -> Option<(u64, Arc<JobInner>)> {
        let session = self.ready.pop_front()?;
        let q = self
            .pending
            .get_mut(&session)
            // lint:allow(panic-in-lib): module invariant — a session id in
            // `ready` always has a non-empty pending queue (push/remove
            // keep them in lockstep); see the module docs
            .expect("ready session has a pending queue");
        // lint:allow(panic-in-lib): same ready/pending lockstep invariant
        let job = q.pop_front().expect("ready session has a pending job");
        if q.is_empty() {
            self.pending.remove(&session);
        }
        self.queued -= 1;
        self.active.insert(session);
        Some((session, job))
    }

    /// A session's running job finished; returns whether the session has
    /// more work (it was re-queued as ready).
    pub fn finish(&mut self, session: u64) -> bool {
        self.active.remove(&session);
        if self.pending.contains_key(&session) {
            self.ready.push_back(session);
            true
        } else {
            false
        }
    }

    /// Remove a still-queued job (cancellation); `false` if a worker
    /// already claimed it.
    pub fn remove(&mut self, session: u64, job_id: u64) -> bool {
        let Some(q) = self.pending.get_mut(&session) else {
            return false;
        };
        let before = q.len();
        q.retain(|j| j.id != job_id);
        let removed = q.len() < before;
        if removed {
            self.queued -= 1;
            if q.is_empty() {
                self.pending.remove(&session);
                // The session may sit in `ready` with nothing left to
                // run; drop the stale entry.
                self.ready.retain(|&s| s != session);
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::super::job::JobSpec;
    use super::*;

    fn job(id: u64, session: u64) -> Arc<JobInner> {
        Arc::new(JobInner::new(id, session, JobSpec::profile(), 1024))
    }

    #[test]
    fn same_session_is_fifo_and_serialised() {
        let mut q = SessionQueues::new(8);
        q.push(job(1, 7)).unwrap();
        q.push(job(2, 7)).unwrap();
        let (s, j) = q.pop().unwrap();
        assert_eq!((s, j.id), (7, 1));
        // Session 7 is active: job 2 must wait even though it is queued.
        assert!(q.pop().is_none());
        assert!(q.finish(7)); // more work became ready
        let (_, j) = q.pop().unwrap();
        assert_eq!(j.id, 2);
        assert!(!q.finish(7));
    }

    #[test]
    fn distinct_sessions_are_concurrent() {
        let mut q = SessionQueues::new(8);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        q.push(job(3, 3)).unwrap();
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(
            vec![a.0, b.0, c.0],
            vec![1, 2, 3],
            "all three sessions claimable at once"
        );
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut q = SessionQueues::new(2);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        assert!(matches!(
            q.push(job(3, 3)),
            Err(JobError::QueueFull { depth: 2 })
        ));
        // Popping frees capacity.
        q.pop().unwrap();
        q.push(job(3, 3)).unwrap();
    }

    #[test]
    fn max_session_backlog_tracks_the_dominating_tenant() {
        let mut q = SessionQueues::new(8);
        assert_eq!(q.max_session_backlog(), 0);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        q.push(job(3, 2)).unwrap();
        q.push(job(4, 2)).unwrap();
        assert_eq!(q.max_session_backlog(), 3);
        // Claiming session 2's head shrinks its backlog…
        loop {
            let (s, _) = q.pop().unwrap();
            if s == 2 {
                break;
            }
        }
        assert_eq!(q.max_session_backlog(), 2);
        // …and cancelling the rest empties it.
        assert!(q.remove(2, 3));
        assert!(q.remove(2, 4));
        assert_eq!(q.max_session_backlog(), q.queued_in(1));
    }

    #[test]
    fn remove_cancels_only_queued_jobs() {
        let mut q = SessionQueues::new(8);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 1)).unwrap();
        let (_, claimed) = q.pop().unwrap();
        assert_eq!(claimed.id, 1);
        assert!(!q.remove(1, 1), "claimed job is no longer removable");
        assert!(q.remove(1, 2));
        assert_eq!(q.queued(), 0);
        assert!(!q.finish(1), "nothing left after cancellation");
        assert!(q.pop().is_none());
    }
}

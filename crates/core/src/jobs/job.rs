//! Job identity, lifecycle, and wire types.
//!
//! A job is a chain of [`JobStep`]s executed against one
//! session's pipeline state. Its lifecycle is `Queued → Running →
//! Done | Failed | Cancelled`; cancellation is cooperative (checked
//! between steps), and every finished step appends its engine
//! [`StageReport`]s so `GET /jobs/{id}` shows live progress.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use serde::{Deserialize, Serialize};

use datalens_datasets::Task;
use datalens_profile::ProfileMode;

use crate::engine::StageReport;
use crate::error::DataLensError;
use crate::iterative::IterativeCleaningReport;
use crate::jobs::events::JobEvent;

/// Job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    /// Has the job reached an end state?
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One stage of a job's pipeline chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobStep {
    /// Build (and cache) the data profile.
    Profile,
    /// Mine approximate FDs with TANE (`g3 ≤ max_g3_error`).
    MineRules { max_g3_error: f64 },
    /// Run the named detectors and consolidate their flags.
    Detect { tools: Vec<String> },
    /// Repair the consolidated detections with the named tool.
    Repair { tool: String },
    /// Run the §4 iterative-cleaning search over (detector × repairer)
    /// scored by the downstream model.
    IterativeClean {
        target: String,
        task: Task,
        iterations: usize,
    },
    /// Cooperative no-op stage that sleeps `ms` milliseconds, checking
    /// for cancellation every few ms — used by scheduling tests, demos,
    /// and benches to model a long-running stage deterministically.
    Sleep { ms: u64 },
}

impl JobStep {
    /// Short machine label (used in tracking run names and the panel).
    pub fn label(&self) -> String {
        match self {
            JobStep::Profile => "profile".into(),
            JobStep::MineRules { .. } => "mine_rules".into(),
            JobStep::Detect { tools } => format!("detect[{}]", tools.join("+")),
            JobStep::Repair { tool } => format!("repair[{tool}]"),
            JobStep::IterativeClean { .. } => "iterative_clean".into(),
            JobStep::Sleep { ms } => format!("sleep[{ms}ms]"),
        }
    }
}

/// An engine stage chain: what one job executes, in order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    pub steps: Vec<JobStep>,
    /// Profiling backend for any `Profile` step in the chain: exact
    /// statistics or mergeable sketches. `None` defers to the service's
    /// configured default (`serve --profile-mode`). A spec field rather
    /// than a step payload so legacy `"Profile"` step encodings keep
    /// deserialising unchanged.
    #[serde(default)]
    pub profile_mode: Option<ProfileMode>,
}

impl JobSpec {
    pub fn new(steps: Vec<JobStep>) -> JobSpec {
        JobSpec {
            steps,
            profile_mode: None,
        }
    }

    /// Profile only.
    pub fn profile() -> JobSpec {
        JobSpec::new(vec![JobStep::Profile])
    }

    /// Builder: run any `Profile` step in the given mode, overriding
    /// the service default.
    pub fn with_profile_mode(mut self, mode: ProfileMode) -> JobSpec {
        self.profile_mode = Some(mode);
        self
    }

    /// Detection with the named tools.
    pub fn detect(tools: &[&str]) -> JobSpec {
        JobSpec::new(vec![JobStep::Detect {
            tools: tools.iter().map(|s| s.to_string()).collect(),
        }])
    }

    /// The standard cleaning chain: detect then repair.
    pub fn clean(detect_tools: &[&str], repair_tool: &str) -> JobSpec {
        JobSpec::new(vec![
            JobStep::Detect {
                tools: detect_tools.iter().map(|s| s.to_string()).collect(),
            },
            JobStep::Repair {
                tool: repair_tool.into(),
            },
        ])
    }

    /// `profile + mine_rules + detect + repair` — the dashboard's full
    /// one-click pipeline.
    pub fn full(max_g3_error: f64, detect_tools: &[&str], repair_tool: &str) -> JobSpec {
        JobSpec::new(vec![
            JobStep::Profile,
            JobStep::MineRules { max_g3_error },
            JobStep::Detect {
                tools: detect_tools.iter().map(|s| s.to_string()).collect(),
            },
            JobStep::Repair {
                tool: repair_tool.into(),
            },
        ])
    }

    /// `step1+step2+…`, used as a tracking run name.
    pub fn describe(&self) -> String {
        self.steps
            .iter()
            .map(JobStep::label)
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Condensed profile numbers carried in a job outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileSummary {
    pub rows: usize,
    pub cols: usize,
    pub missing_cells: usize,
}

/// What a finished job produced, accumulated step by step.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobOutcome {
    #[serde(default)]
    pub profile: Option<ProfileSummary>,
    #[serde(default)]
    pub rules_added: Option<usize>,
    #[serde(default)]
    pub n_detections: Option<usize>,
    #[serde(default)]
    pub n_repaired: Option<usize>,
    /// The repaired table as CSV (present after a repair step).
    #[serde(default)]
    pub repaired_csv: Option<String>,
    /// Delta version the repair committed (workspace sessions only).
    #[serde(default)]
    pub repaired_version: Option<u64>,
    #[serde(default)]
    pub iterative: Option<IterativeCleaningReport>,
}

/// Snapshot of a job's externally visible state (the `GET /jobs/{id}`
/// body).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobStatus {
    pub job_id: u64,
    pub session_id: u64,
    pub state: JobState,
    /// Human-readable step chain, e.g. `profile+detect[sd+iqr]`.
    pub spec: String,
    pub steps_total: usize,
    pub steps_done: usize,
    /// Engine instrumentation for every stage executed so far.
    pub reports: Vec<StageReport>,
    #[serde(default)]
    pub error: Option<String>,
}

/// Typed job-service failures. [`JobError::QueueFull`] and
/// [`JobError::Overloaded`] are the backpressure signals (HTTP 429).
#[derive(Debug)]
pub enum JobError {
    /// The bounded queue is at capacity — retry later.
    QueueFull {
        depth: usize,
    },
    /// The health gate is at `hold`: the submit was shed before
    /// touching the queue. `retry_after_secs` is the drain-rate-derived
    /// back-off hint surfaced as a `Retry-After` header.
    Overloaded {
        retry_after_secs: u64,
    },
    UnknownSession(u64),
    UnknownJob(u64),
    /// The underlying pipeline failed while building the session.
    Pipeline(DataLensError),
    /// The service is shutting down.
    Stopped,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::QueueFull { depth } => {
                write!(f, "job queue full ({depth} queued) — retry later")
            }
            JobError::Overloaded { retry_after_secs } => {
                write!(
                    f,
                    "service under load (health gate hold) — retry in {retry_after_secs}s"
                )
            }
            JobError::UnknownSession(id) => write!(f, "no session {id}"),
            JobError::UnknownJob(id) => write!(f, "no job {id}"),
            JobError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            JobError::Stopped => write!(f, "job service is shutting down"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<DataLensError> for JobError {
    fn from(e: DataLensError) -> Self {
        JobError::Pipeline(e)
    }
}

/// Mutable progress under the job's lock.
struct Progress {
    state: JobState,
    steps_done: usize,
    reports: Vec<StageReport>,
    outcome: JobOutcome,
    error: Option<String>,
    /// Append-only event log replayed by SSE subscribers. Payloads are
    /// serialised once at publish, so every subscriber — early or late
    /// — reads bit-identical bytes. Bounded by `JobInner::event_cap`:
    /// overflowing `progress` events are counted in `events_dropped`
    /// instead of growing the log, while terminal events always land.
    events: Vec<JobEvent>,
    events_dropped: u64,
}

/// The in-memory job record shared between submitters, workers, and
/// status readers.
///
/// Synchronisation note: progress pairs a [`Mutex`] with a [`Condvar`]
/// so [`JobInner::wait_terminal`] can block on state changes.
pub(crate) struct JobInner {
    pub id: u64,
    pub session: u64,
    pub spec: JobSpec,
    /// When the job entered the queue — the baseline for the
    /// queue-wait metric observed at claim time.
    pub submitted: Instant,
    cancel: AtomicBool,
    progress: Mutex<Progress>,
    changed: Condvar,
    /// Cap on buffered `progress` events (terminal events bypass it).
    event_cap: usize,
    /// Live SSE subscribers on this job's event log.
    subscribers: AtomicUsize,
}

impl JobInner {
    pub fn new(id: u64, session: u64, spec: JobSpec, event_cap: usize) -> JobInner {
        let step_labels: Vec<String> = spec.steps.iter().map(JobStep::label).collect();
        let plan = serde_json::json!({
            "jobId": id,
            "sessionId": session,
            "spec": spec.describe(),
            "stepsTotal": spec.steps.len(),
            "steps": step_labels,
        });
        let job = JobInner {
            id,
            session,
            spec,
            submitted: Instant::now(),
            cancel: AtomicBool::new(false),
            progress: Mutex::new(Progress {
                state: JobState::Queued,
                steps_done: 0,
                reports: Vec::new(),
                outcome: JobOutcome::default(),
                error: None,
                events: Vec::new(),
                events_dropped: 0,
            }),
            changed: Condvar::new(),
            event_cap: event_cap.max(1),
            subscribers: AtomicUsize::new(0),
        };
        // Every job's event history starts with its plan, so a
        // subscriber that joins at any point still replays the full
        // story from the first byte.
        job.push_event(&mut job.lock(), "plan", plan.to_string(), false);
        job
    }

    fn lock(&self) -> MutexGuard<'_, Progress> {
        self.progress.lock()
    }

    /// Append to the event log under the job lock. Non-terminal events
    /// beyond the cap are dropped (and counted); terminal events always
    /// land so no subscriber hangs waiting for an ending.
    fn push_event(&self, p: &mut Progress, event: &str, data: String, terminal: bool) {
        if !terminal && p.events.len() >= self.event_cap {
            p.events_dropped += 1;
            return;
        }
        let seq = p.events.len() as u64 + p.events_dropped;
        p.events.push(JobEvent {
            seq,
            event: event.to_string(),
            data,
        });
    }

    /// Externally visible snapshot.
    pub fn status(&self) -> JobStatus {
        let p = self.lock();
        JobStatus {
            job_id: self.id,
            session_id: self.session,
            state: p.state,
            spec: self.spec.describe(),
            steps_total: self.spec.steps.len(),
            steps_done: p.steps_done,
            reports: p.reports.clone(),
            error: p.error.clone(),
        }
    }

    /// Terminal state plus what the job produced.
    pub fn result(&self) -> (JobState, JobOutcome, Option<String>) {
        let p = self.lock();
        (p.state, p.outcome.clone(), p.error.clone())
    }

    /// Queued → Running, unless cancellation already won the race.
    pub fn try_start(&self) -> bool {
        let mut p = self.lock();
        if self.cancel.load(Ordering::SeqCst) || p.state != JobState::Queued {
            if p.state == JobState::Queued {
                p.state = JobState::Cancelled;
                let data = self.terminal_event_data(&p);
                self.push_event(&mut p, "cancelled", data, true);
            }
            self.changed.notify_all();
            return false;
        }
        p.state = JobState::Running;
        self.changed.notify_all();
        true
    }

    /// Record one finished step: its stage reports plus an outcome edit.
    pub fn record_step(&self, reports: Vec<StageReport>, apply: impl FnOnce(&mut JobOutcome)) {
        let mut p = self.lock();
        p.steps_done += 1;
        for report in &reports {
            let data = serde_json::json!({
                "jobId": self.id,
                "stage": report.stage.clone(),
                "detail": report.detail.clone(),
                "wallMs": report.wall_ms,
                "rowsProcessed": report.rows_processed,
                "cellsProcessed": report.cells_processed,
                "flagsProduced": report.flags_produced,
                "stepsDone": p.steps_done,
                "stepsTotal": self.spec.steps.len(),
            });
            self.push_event(&mut p, "progress", data.to_string(), false);
        }
        p.reports.extend(reports);
        apply(&mut p.outcome);
        self.changed.notify_all();
    }

    /// Move to a terminal state.
    pub fn finish(&self, state: JobState, error: Option<String>) {
        debug_assert!(state.is_terminal());
        let mut p = self.lock();
        if p.state.is_terminal() {
            return; // cancel/finish race: first terminal state wins
        }
        p.state = state;
        p.error = error;
        let event = match state {
            JobState::Done => "result",
            JobState::Failed => "failed",
            _ => "cancelled",
        };
        let data = self.terminal_event_data(&p);
        self.push_event(&mut p, event, data, true);
        self.changed.notify_all();
    }

    /// Payload for the terminal event, built under the job lock.
    fn terminal_event_data(&self, p: &Progress) -> String {
        serde_json::json!({
            "jobId": self.id,
            "state": p.state.as_str(),
            "stepsDone": p.steps_done,
            "stepsTotal": self.spec.steps.len(),
            "error": p.error.clone(),
        })
        .to_string()
    }

    /// Ask the job to stop at the next step boundary.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Live SSE subscribers on this job.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.load(Ordering::SeqCst)
    }

    /// The event at log position `cursor`, waiting up to `wait` for one
    /// to be published. Returns `(item, terminal_drained)` where the
    /// second flag is true once the job is terminal *and* the log has
    /// been fully replayed — the subscriber's signal to end the stream.
    fn event_at(&self, cursor: usize, wait: Duration) -> (Option<JobEvent>, bool) {
        let mut p = self.lock();
        if cursor >= p.events.len() && !p.state.is_terminal() {
            self.changed.wait_for(&mut p, wait);
        }
        if let Some(event) = p.events.get(cursor) {
            return (Some(event.clone()), false);
        }
        (None, p.state.is_terminal())
    }

    /// Block until the job reaches a terminal state (or the timeout
    /// elapses); returns the final snapshot either way.
    pub fn wait_terminal(&self, timeout: Option<Duration>) -> JobStatus {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let mut p = self.lock();
        while !p.state.is_terminal() {
            match deadline {
                None => self.changed.wait(&mut p),
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d {
                        break;
                    }
                    self.changed.wait_for(&mut p, d - now);
                }
            }
        }
        drop(p);
        self.status()
    }
}

/// What [`JobEventSubscription::next`] yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFeedItem {
    /// The next event in the job's history.
    Event(JobEvent),
    /// Nothing new within the wait window (job still running).
    Idle,
    /// The job is terminal and its full history has been replayed.
    Terminated,
}

/// A replay cursor onto one job's event log.
///
/// Subscribing replays the log from the start (`plan` first), then
/// follows live publishes until the terminal event, after which
/// [`JobEventSubscription::next`] yields [`JobFeedItem::Terminated`].
/// Because the log holds payloads serialised once at publish, every
/// subscriber observes bit-identical event bytes.
pub struct JobEventSubscription {
    job: Arc<JobInner>,
    cursor: usize,
}

impl JobEventSubscription {
    pub(crate) fn new(job: Arc<JobInner>) -> JobEventSubscription {
        job.subscribers.fetch_add(1, Ordering::SeqCst);
        JobEventSubscription { job, cursor: 0 }
    }

    /// The next event, waiting up to `wait` for one.
    pub fn next(&mut self, wait: Duration) -> JobFeedItem {
        let (event, terminal_drained) = self.job.event_at(self.cursor, wait);
        match event {
            Some(event) => {
                self.cursor += 1;
                JobFeedItem::Event(event)
            }
            None if terminal_drained => JobFeedItem::Terminated,
            None => JobFeedItem::Idle,
        }
    }
}

impl Drop for JobEventSubscription {
    fn drop(&mut self) {
        self.job.subscribers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_and_labels() {
        let spec = JobSpec::full(0.1, &["sd", "iqr"], "ml_imputer");
        assert_eq!(spec.steps.len(), 4);
        assert_eq!(
            spec.describe(),
            "profile+mine_rules+detect[sd+iqr]+repair[ml_imputer]"
        );
        assert_eq!(JobSpec::detect(&["sd"]).describe(), "detect[sd]");
        assert_eq!(
            JobSpec::clean(&["sd"], "standard_imputer").describe(),
            "detect[sd]+repair[standard_imputer]"
        );
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = JobSpec::new(vec![
            JobStep::Profile,
            JobStep::MineRules { max_g3_error: 0.05 },
            JobStep::Detect {
                tools: vec!["sd".into()],
            },
            JobStep::Repair {
                tool: "ml_imputer".into(),
            },
            JobStep::IterativeClean {
                target: "y".into(),
                task: Task::Regression,
                iterations: 5,
            },
            JobStep::Sleep { ms: 10 },
        ]);
        let json = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn profile_mode_round_trips_and_defaults_to_service_mode() {
        let spec = JobSpec::profile().with_profile_mode(ProfileMode::Approx);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"approx\""));
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // Legacy payloads without the field defer to the service's
        // configured mode; `null` round-trips the same way.
        let legacy: JobSpec = serde_json::from_str("{\"steps\":[\"Profile\"]}").unwrap();
        assert_eq!(legacy.profile_mode, None);
        assert_eq!(legacy.steps, vec![JobStep::Profile]);
        let reparsed: JobSpec =
            serde_json::from_str(&serde_json::to_string(&legacy).unwrap()).unwrap();
        assert_eq!(reparsed, legacy);
    }

    #[test]
    fn lifecycle_and_cancel_race() {
        let job = JobInner::new(1, 1, JobSpec::profile(), 1024);
        assert_eq!(job.status().state, JobState::Queued);
        assert!(job.try_start());
        assert_eq!(job.status().state, JobState::Running);
        job.finish(JobState::Done, None);
        assert_eq!(job.status().state, JobState::Done);
        // A late cancel cannot resurrect a terminal job.
        job.finish(JobState::Cancelled, None);
        assert_eq!(job.status().state, JobState::Done);

        // Cancellation before start wins the race.
        let job = JobInner::new(2, 1, JobSpec::profile(), 1024);
        job.request_cancel();
        assert!(!job.try_start());
        assert_eq!(job.status().state, JobState::Cancelled);
    }

    #[test]
    fn record_step_accumulates_progress() {
        let job = JobInner::new(3, 1, JobSpec::clean(&["sd"], "ml_imputer"), 1024);
        job.try_start();
        job.record_step(
            vec![StageReport {
                stage: "detect".into(),
                detail: "sd".into(),
                wall_ms: 1.0,
                rows_processed: 10,
                cells_processed: 20,
                flags_produced: 2,
            }],
            |o| o.n_detections = Some(2),
        );
        let s = job.status();
        assert_eq!(s.steps_done, 1);
        assert_eq!(s.steps_total, 2);
        assert_eq!(s.reports.len(), 1);
        let (_, outcome, _) = job.result();
        assert_eq!(outcome.n_detections, Some(2));
    }

    #[test]
    fn wait_terminal_times_out_and_completes() {
        let job = std::sync::Arc::new(JobInner::new(4, 1, JobSpec::profile(), 1024));
        let s = job.wait_terminal(Some(Duration::from_millis(10)));
        assert_eq!(s.state, JobState::Queued); // timed out, still queued
        let j = std::sync::Arc::clone(&job);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            j.try_start();
            j.finish(JobState::Done, None);
        });
        let s = job.wait_terminal(Some(Duration::from_secs(5)));
        assert_eq!(s.state, JobState::Done);
        t.join().unwrap();
    }
}

//! REST surface of the job service (the dashboard's async bus):
//!
//! - `POST   /sessions`            — open a session (upload CSV or name a
//!   preloaded dataset); returns its id and shape;
//! - `GET    /sessions`            — list sessions with queue state;
//! - `POST   /sessions/{id}/jobs`  — submit a [`JobSpec`]; `202 Accepted`
//!   with the job id, or `429 Too Many Requests` when the bounded queue
//!   is full (the backpressure contract);
//! - `GET    /jobs`                — list all job snapshots;
//! - `GET    /jobs/{id}`           — live [`JobStatus`](super::JobStatus) (state, progress,
//!   per-stage reports);
//! - `GET    /jobs/{id}/result`    — terminal outcome; `409 Conflict`
//!   while the job is still queued/running;
//! - `DELETE /jobs/{id}`           — request cancellation; returns the
//!   post-cancel snapshot;
//! - `GET    /jobs/{id}/events`    — SSE stream of the job's event log
//!   (`plan` → `progress`… → `result`/`cancelled`/`failed`), replayed
//!   from the start so every subscriber sees identical bytes;
//! - `GET    /alerts/events`       — live SSE feed of quality alerts
//!   across all sessions (only alerts published after subscribing);
//! - `GET    /health`              — the rollup gate verdict
//!   (`pass`/`degraded`/`hold`) with machine-readable reason codes and
//!   per-signal evidence; `200` for `pass`/`degraded`, `503` (with
//!   `Retry-After`) while the gate holds, so `curl -f /health` doubles
//!   as a probe.
//!
//! Mount the router on a [`datalens_rest::Server`]; it composes with the
//! synchronous tool bus via [`Router::merge`].

use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use datalens_rest::http::{sse_event, Method, StreamChunk, StreamSource};
use datalens_rest::{PathParams, Response, Router};

use super::events::{AlertFeedItem, AlertSubscription};
use super::job::{JobError, JobEventSubscription, JobFeedItem, JobOutcome, JobSpec, JobState};
use super::session::SessionInfo;
use super::JobService;

/// `POST /sessions` request: exactly one of `csv` (with `file_name`) or
/// `preloaded` must be given.
#[derive(Debug, Default, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct CreateSessionRequest {
    /// Name of a bundled dirty dataset (e.g. `"flights"`).
    #[serde(default)]
    pub preloaded: Option<String>,
    /// File name for an uploaded CSV payload.
    #[serde(default)]
    pub file_name: Option<String>,
    /// Raw CSV text to ingest.
    #[serde(default)]
    pub csv: Option<String>,
}

/// `POST /sessions` response.
#[derive(Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct CreateSessionResponse {
    pub session: SessionInfo,
}

/// `POST /sessions/{id}/jobs` response (`202 Accepted`).
#[derive(Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct SubmitJobResponse {
    pub job_id: u64,
    pub session_id: u64,
}

/// `GET /jobs/{id}/result` response.
#[derive(Debug, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct JobResultResponse {
    pub job_id: u64,
    pub state: JobState,
    pub outcome: JobOutcome,
    #[serde(default)]
    pub error: Option<String>,
}

/// Adapts a job's event-log cursor to the server's pull-based stream
/// contract. Dropping the source (stream end or client disconnect)
/// drops the subscription, which unregisters the subscriber.
struct JobEventsSse {
    sub: JobEventSubscription,
}

impl StreamSource for JobEventsSse {
    fn next_chunk(&mut self, wait: Duration) -> StreamChunk {
        match self.sub.next(wait) {
            JobFeedItem::Event(e) => StreamChunk::Data(sse_event(&e.event, Some(e.seq), &e.data)),
            JobFeedItem::Idle => StreamChunk::Pending,
            JobFeedItem::Terminated => StreamChunk::End,
        }
    }
}

/// Adapts the service-wide alert bus to the stream contract. Alerts are
/// serialised here — once per subscriber per event — because the feed is
/// live (each subscriber sees a different suffix of the bus).
struct AlertsSse {
    sub: AlertSubscription,
}

impl StreamSource for AlertsSse {
    fn next_chunk(&mut self, wait: Duration) -> StreamChunk {
        match self.sub.next(wait) {
            AlertFeedItem::Event(e) => {
                let data = serde_json::json!({
                    "seq": e.seq,
                    "sessionId": e.session_id,
                    "jobId": e.job_id,
                    "stage": e.stage,
                    "kind": e.kind,
                    "column": e.column,
                    "message": e.message,
                })
                .to_string();
                StreamChunk::Data(sse_event("alert", Some(e.seq), &data))
            }
            AlertFeedItem::Idle => StreamChunk::Pending,
            AlertFeedItem::Closed => StreamChunk::End,
        }
    }
}

/// Map a [`JobError`] to its wire shape. Backpressure rejections (both
/// a full queue and a gate-shed submit) carry a `Retry-After` header
/// derived from the service's observed drain rate, so well-behaved
/// clients have a concrete back-off to honour.
fn error_response(svc: &JobService, e: &JobError) -> Response {
    match e {
        JobError::QueueFull { .. } => Response::error(429, &e.to_string())
            .with_retry_after(svc.health_gate().retry_after_secs()),
        JobError::Overloaded { retry_after_secs } => {
            Response::error(429, &e.to_string()).with_retry_after(*retry_after_secs)
        }
        JobError::UnknownSession(_) | JobError::UnknownJob(_) => {
            Response::error(404, &e.to_string())
        }
        JobError::Stopped => Response::error(503, &e.to_string()).with_retry_after(1),
        JobError::Pipeline(_) => Response::error(400, &e.to_string()),
    }
}

fn parse_id(params: &PathParams, key: &str) -> Result<u64, Response> {
    params
        .get(key)
        .and_then(|v| v.parse::<u64>().ok())
        .ok_or_else(|| Response::error(400, &format!("invalid {key}")))
}

/// Build the job-service router over a shared [`JobService`].
pub fn job_service_router(service: Arc<JobService>) -> Router {
    let svc = Arc::clone(&service);
    let router = Router::new().route(Method::Post, "/sessions", move |req, _| {
        let body: CreateSessionRequest = if req.body.is_empty() {
            CreateSessionRequest::default()
        } else {
            match req.json() {
                Ok(b) => b,
                Err(e) => return Response::error(400, &e.to_string()),
            }
        };
        let created = match (&body.preloaded, &body.csv) {
            (Some(name), None) => svc.create_session_preloaded(name),
            (None, Some(csv)) => {
                let file_name = body.file_name.as_deref().unwrap_or("upload.csv");
                svc.create_session_csv(file_name, csv)
            }
            _ => {
                return Response::error(400, "provide exactly one of `preloaded` or `csv`");
            }
        };
        let id = match created {
            Ok(id) => id,
            Err(e) => return error_response(&svc, &e),
        };
        let session = svc.list_sessions().into_iter().find(|s| s.session_id == id);
        let Some(session) = session else {
            // Registry insert is visible before `create_session_*`
            // returns, so this cannot happen short of a service bug —
            // but a 500 beats panicking the HTTP worker.
            return Response::error(500, &format!("session {id} not listed after creation"));
        };
        let mut resp = Response::json(&CreateSessionResponse { session });
        resp.status = 201;
        resp
    });

    let svc = Arc::clone(&service);
    let router = router.route(Method::Get, "/sessions", move |_, _| {
        Response::json(&svc.list_sessions())
    });

    let svc = Arc::clone(&service);
    let router = router.route(Method::Post, "/sessions/{id}/jobs", move |req, params| {
        let sid = match parse_id(params, "id") {
            Ok(v) => v,
            Err(r) => return r,
        };
        let spec: JobSpec = match req.json() {
            Ok(s) => s,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        if spec.steps.is_empty() {
            return Response::error(400, "job spec has no steps");
        }
        match svc.submit(sid, spec) {
            Ok(job_id) => {
                let mut resp = Response::json(&SubmitJobResponse {
                    job_id,
                    session_id: sid,
                });
                resp.status = 202;
                resp
            }
            Err(e) => error_response(&svc, &e),
        }
    });

    let svc = Arc::clone(&service);
    let router = router.route(Method::Get, "/jobs", move |_, _| {
        Response::json(&svc.list_jobs())
    });

    let svc = Arc::clone(&service);
    let router = router.route(Method::Get, "/jobs/{id}", move |_, params| {
        let id = match parse_id(params, "id") {
            Ok(v) => v,
            Err(r) => return r,
        };
        match svc.status(id) {
            Ok(status) => Response::json(&status),
            Err(e) => error_response(&svc, &e),
        }
    });

    let svc = Arc::clone(&service);
    let router = router.route(Method::Get, "/jobs/{id}/result", move |_, params| {
        let id = match parse_id(params, "id") {
            Ok(v) => v,
            Err(r) => return r,
        };
        match svc.result(id) {
            Ok((state, outcome, error)) => {
                if !state.is_terminal() {
                    return Response::error(
                        409,
                        &format!("job {id} is {state}; result not available yet"),
                    );
                }
                Response::json(&JobResultResponse {
                    job_id: id,
                    state,
                    outcome,
                    error,
                })
            }
            Err(e) => error_response(&svc, &e),
        }
    });

    let svc = Arc::clone(&service);
    let router = router.route(Method::Get, "/jobs/{id}/events", move |_, params| {
        let id = match parse_id(params, "id") {
            Ok(v) => v,
            Err(r) => return r,
        };
        match svc.subscribe_job_events(id) {
            Ok(sub) => Response::stream("text/event-stream", JobEventsSse { sub }),
            Err(e) => error_response(&svc, &e),
        }
    });

    let svc = Arc::clone(&service);
    let router = router.route(Method::Get, "/alerts/events", move |_, _| {
        let sub = svc.subscribe_alerts();
        Response::stream("text/event-stream", AlertsSse { sub })
    });

    let svc = Arc::clone(&service);
    let router = router.route(Method::Get, "/health", move |_, _| {
        let report = svc.health_report();
        let mut resp = Response::json(&report.to_json());
        if report.verdict == datalens_health::Verdict::Hold {
            resp.status = 503;
            resp = resp.with_retry_after(report.retry_after_secs);
        }
        resp
    });

    let svc = Arc::clone(&service);
    router.route(Method::Delete, "/jobs/{id}", move |_, params| {
        let id = match parse_id(params, "id") {
            Ok(v) => v,
            Err(r) => return r,
        };
        match svc.cancel(id) {
            Ok(status) => Response::json(&status),
            Err(e) => error_response(&svc, &e),
        }
    })
}

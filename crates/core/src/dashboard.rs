//! Text renderer for the dashboard's main window (Figure 2): the four
//! central tabs — Data Overview, Data Profile, Error Detection Results,
//! DataSheets — plus the right-hand Data Quality panel.
//!
//! Substitution note: the original is a browser UI; the *information
//! architecture* is reproduced as terminal output (the evaluation never
//! measures the UI itself).

use crate::controller::DashboardController;
use crate::error::DataLensError;

/// The dashboard's tabs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tab {
    DataOverview,
    DataProfile,
    DetectionResults,
    DataSheets,
}

impl Tab {
    pub const ALL: [Tab; 4] = [
        Tab::DataOverview,
        Tab::DataProfile,
        Tab::DetectionResults,
        Tab::DataSheets,
    ];

    pub fn title(self) -> &'static str {
        match self {
            Tab::DataOverview => "Data Overview",
            Tab::DataProfile => "Data Profile",
            Tab::DetectionResults => "Error Detection Results",
            Tab::DataSheets => "DataSheets",
        }
    }
}

/// Render one tab.
pub fn render_tab(controller: &mut DashboardController, tab: Tab) -> Result<String, DataLensError> {
    let mut out = format!("━━━ {} ━━━\n", tab.title());
    match tab {
        Tab::DataOverview => {
            let state = controller.state()?;
            out.push_str(&format!(
                "dataset: {}   shape: {} rows × {} columns\n\n",
                state.table.name(),
                state.table.n_rows(),
                state.table.n_cols()
            ));
            out.push_str(&state.table.head(8).to_string());
            match &state.detections {
                Some(d) => out.push_str(&format!(
                    "\ndetected errors: {} cells across {} tools\n",
                    d.total(),
                    d.per_tool.len()
                )),
                None => out.push_str("\ndetected errors: (detection has not run)\n"),
            }
            if !state.tags.is_empty() {
                out.push_str(&format!("tagged values: {:?}\n", state.tags.values()));
            }
            out.push_str(
                "labeling: mark samples as true (dirty) / false (clean) in the labeling section\n",
            );
        }
        Tab::DataProfile => {
            let profile = controller.profile()?.clone();
            out.push_str(&profile.render_text());
            let rules = controller.rules()?;
            if !rules.is_empty() {
                out.push_str("\nFD rules (validate, modify, or reject):\n");
                for r in rules.rules() {
                    out.push_str(&format!(
                        "  [{:?}] {} (source: {:?}, g3 {:.3})\n",
                        r.status, r.fd, r.provenance, r.g3_error
                    ));
                }
            }
            let recs = controller.recommend_detection_tools()?;
            out.push_str("\nRecommended detection tools:\n");
            for r in recs {
                out.push_str(&format!("  {:<18} {}\n", r.tool, r.reason));
            }
        }
        Tab::DetectionResults => {
            let state = controller.state()?;
            match &state.detections {
                None => out.push_str("(run error detection first)\n"),
                Some(d) => {
                    out.push_str(&format!("total distinct error cells: {}\n\n", d.total()));
                    out.push_str("Distribution of detections across attributes:\n");
                    out.push_str(&d.render_distribution(&state.table));
                    // Explainability (paper future-work 2): why the first
                    // few cells were flagged.
                    let explanations = datalens_detect::explain_all(&state.table, d, 5);
                    if !explanations.is_empty() {
                        out.push_str("\nWhy were these cells flagged?\n");
                        for e in explanations {
                            out.push_str(&e.render());
                        }
                    }
                }
            }
        }
        Tab::DataSheets => {
            let sheet = controller.generate_datasheet()?;
            out.push_str(&sheet.to_json()?);
            out.push('\n');
        }
    }
    Ok(out)
}

/// Render the whole main window: all tabs plus the quality panel and the
/// engine's per-stage timing summary.
pub fn render_dashboard(controller: &mut DashboardController) -> Result<String, DataLensError> {
    let mut out = String::from("══════════ DataLens ══════════\n\n");
    for tab in Tab::ALL {
        out.push_str(&render_tab(controller, tab)?);
        out.push('\n');
    }
    out.push_str(&controller.quality()?.render_text());
    out.push('\n');
    out.push_str(&crate::engine::render_stage_reports(
        controller.stage_reports()?,
    ));
    Ok(out)
}

/// Render the "Jobs" panel: the job service's sessions, queue pressure,
/// and per-job progress (the server-side counterpart of the browser's
/// background-task list).
pub fn render_jobs_panel(service: &crate::jobs::JobService) -> String {
    let (queued, depth) = service.queue_stats();
    let mut out = String::from("── Jobs ──\n");
    out.push_str(&format!(
        "queue {queued}/{depth} waiting · {} workers\n",
        service.config().workers
    ));
    let sessions = service.list_sessions();
    if sessions.is_empty() {
        out.push_str("no sessions\n");
    }
    for s in sessions {
        out.push_str(&format!(
            "session s{}  {}  {}×{}  queued {}  {}  finished {}\n",
            s.session_id,
            s.dataset,
            s.rows,
            s.cols,
            s.queued,
            if s.running { "running" } else { "idle" },
            s.jobs_finished,
        ));
    }
    for j in service.list_jobs() {
        out.push_str(&format!(
            "  job #{} s{}  {:<9} {}/{}  {}{}\n",
            j.job_id,
            j.session_id,
            j.state.as_str(),
            j.steps_done,
            j.steps_total,
            j.spec,
            j.error
                .as_deref()
                .map(|e| format!("  ({e})"))
                .unwrap_or_default(),
        ));
    }
    out
}

/// Render the "Metrics" panel: a condensed summary of the observability
/// registry — request/connection counters, job-queue gauges, and the
/// mean latency of every histogram (the terminal counterpart of a
/// Grafana overview row; `GET /metrics` has the full buckets).
pub fn render_metrics_panel(registry: &datalens_obs::Registry) -> String {
    registry.render_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{DashboardConfig, DashboardController};

    fn loaded_controller() -> DashboardController {
        let mut c = DashboardController::new(DashboardConfig::default()).unwrap();
        c.ingest_csv_text(
            "demo.csv",
            "zip,city,pop\n1,ulm,120\n1,ulm,120\n2,bonn,99999\n2,bonn,330\n",
        )
        .unwrap();
        c
    }

    #[test]
    fn overview_tab_shows_table_and_status() {
        let mut c = loaded_controller();
        let text = render_tab(&mut c, Tab::DataOverview).unwrap();
        assert!(text.contains("Data Overview"));
        assert!(text.contains("4 rows × 3 columns"));
        assert!(text.contains("detection has not run"));
        c.run_detection(&["sd"]).unwrap();
        let text = render_tab(&mut c, Tab::DataOverview).unwrap();
        assert!(text.contains("detected errors"));
    }

    #[test]
    fn profile_tab_includes_rules_after_discovery() {
        let mut c = loaded_controller();
        c.discover_rules(crate::controller::RuleMiner::Tane)
            .unwrap();
        let text = render_tab(&mut c, Tab::DataProfile).unwrap();
        assert!(text.contains("Data Profile"));
        assert!(text.contains("FD rules"));
    }

    #[test]
    fn detection_tab_renders_distribution() {
        let mut c = loaded_controller();
        c.run_detection(&["sd", "mv_detector"]).unwrap();
        let text = render_tab(&mut c, Tab::DetectionResults).unwrap();
        assert!(text.contains("Distribution of detections"));
        assert!(text.contains("sd"));
    }

    #[test]
    fn datasheet_tab_is_json() {
        let mut c = loaded_controller();
        let text = render_tab(&mut c, Tab::DataSheets).unwrap();
        assert!(text.contains("\"dataset_name\""));
    }

    #[test]
    fn full_dashboard_renders_all_tabs() {
        let mut c = loaded_controller();
        c.run_detection(&["sd"]).unwrap();
        let text = render_dashboard(&mut c).unwrap();
        for tab in Tab::ALL {
            assert!(text.contains(tab.title()), "missing {:?}", tab);
        }
        assert!(text.contains("Data Quality"));
        // The engine's stage summary lists every executed stage.
        assert!(text.contains("Pipeline stages"));
        assert!(text.contains("detect:sd"));
        assert!(text.contains("consolidate"));
    }

    #[test]
    fn metrics_panel_reflects_job_runs() {
        use crate::jobs::{JobService, JobServiceConfig, JobSpec};
        use std::sync::Arc;

        let registry = Arc::new(datalens_obs::Registry::new());
        let empty = render_metrics_panel(&registry);
        assert!(empty.contains("no metrics"));

        let svc = JobService::new(JobServiceConfig {
            metrics: Some(Arc::clone(&registry)),
            ..JobServiceConfig::default()
        })
        .unwrap();
        let sid = svc
            .create_session_csv("demo.csv", "a,b\n1,x\n2,y\n,\n")
            .unwrap();
        let jid = svc.submit(sid, JobSpec::detect(&["mv_detector"])).unwrap();
        svc.wait(jid, Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let text = render_metrics_panel(&registry);
        assert!(text.contains("── Metrics ──"));
        assert!(text.contains("jobs_submitted_total"));
        assert!(text.contains("jobs_state_total{state=\"done\"}"));
        assert!(text.contains("jobs_queue_wait_ms"));
        assert!(text.contains("engine_stage_ms{stage=\"detect\"}"));
        // The health gate binds its verdict gauge eagerly, so the panel
        // shows the rollup (0 = pass) alongside the raw job metrics.
        assert!(text.contains("health_verdict"));
        assert!(text.contains("health_transitions_total"));
    }

    #[test]
    fn metrics_panel_includes_sse_stream_metrics() {
        use datalens_rest::{Router, Server, ServerConfig};
        use std::sync::Arc;

        // The server registers its streaming metrics eagerly, so the
        // panel shows them (as zeros) before any stream is opened.
        let registry = Arc::new(datalens_obs::Registry::new());
        let mut server = Server::start_on(
            "127.0.0.1:0",
            Router::new(),
            ServerConfig {
                workers: 1,
                metrics: Some(Arc::clone(&registry)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let text = render_metrics_panel(&registry);
        assert!(text.contains("sse_streams_active"));
        assert!(text.contains("sse_events_sent_total"));
        assert!(text.contains("sse_disconnects_total"));
        server.shutdown();
    }

    #[test]
    fn metrics_panel_shows_table_storage_gauges_after_profiling() {
        use crate::jobs::{JobService, JobServiceConfig, JobSpec};
        use std::sync::Arc;

        let registry = Arc::new(datalens_obs::Registry::new());
        let svc = JobService::new(JobServiceConfig {
            metrics: Some(Arc::clone(&registry)),
            ..JobServiceConfig::default()
        })
        .unwrap();
        let sid = svc
            .create_session_csv("demo.csv", "a,b\n1,x\n2,y\n,\n")
            .unwrap();
        let jid = svc.submit(sid, JobSpec::profile()).unwrap();
        svc.wait(jid, Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let text = render_metrics_panel(&registry);
        assert!(text.contains("table_chunks_total"));
        assert!(text.contains("table_resident_bytes"));
        assert!(registry.gauge("table_chunks_total").get() >= 2);
        assert!(registry.gauge("table_resident_bytes").get() > 0);
    }

    #[test]
    fn jobs_panel_lists_sessions_and_jobs() {
        use crate::jobs::{JobService, JobServiceConfig, JobSpec};

        let svc = JobService::new(JobServiceConfig::default()).unwrap();
        let empty = render_jobs_panel(&svc);
        assert!(empty.contains("no sessions"));
        let sid = svc
            .create_session_csv("demo.csv", "a,b\n1,x\n2,y\n,\n")
            .unwrap();
        let jid = svc.submit(sid, JobSpec::detect(&["mv_detector"])).unwrap();
        svc.wait(jid, Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let text = render_jobs_panel(&svc);
        assert!(text.contains("── Jobs ──"));
        assert!(text.contains("session s1  demo  3×2"));
        assert!(text.contains("job #1 s1  done"));
        assert!(text.contains("detect[mv_detector]"));
        assert!(text.contains("1/1"));
    }
}

//! Integration tests for the `datalens` CLI binary: every subcommand is
//! driven as a real subprocess the way a user would.

use std::process::{Command, Output};

fn datalens(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_datalens"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn demo_csv() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("datalens_cli_{}.csv", std::process::id()));
    std::fs::write(
        &path,
        "zip,city,pop\n1,ulm,120\n1,ulm,120\n2,bonn,99999\n2,bonn,330\n1,oops,\n",
    )
    .expect("write demo csv");
    path
}

#[test]
fn datasets_lists_preloaded() {
    let out = datalens(&["datasets"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["nasa", "beers", "hospital"] {
        assert!(text.contains(name), "missing {name} in {text}");
    }
}

#[test]
fn profile_renders_tab() {
    let csv = demo_csv();
    let out = datalens(&["profile", csv.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Data Profile"));
    assert!(text.contains("pop"));
}

#[test]
fn rules_with_approx_flag() {
    let csv = demo_csv();
    let out = datalens(&["rules", csv.to_str().unwrap(), "--approx", "0.3"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("-> "), "{text}");
}

#[test]
fn detect_with_tags_and_rules() {
    let csv = demo_csv();
    let out = datalens(&[
        "detect",
        csv.to_str().unwrap(),
        "--tools",
        "mv_detector,nadeef",
        "--tag",
        "99999",
        "--rule",
        "zip determines city",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Error Detection Results"));
    assert!(text.contains("Why were these cells flagged?"));
    assert!(text.contains("nadeef"));
}

#[test]
fn repair_writes_output_file() {
    let csv = demo_csv();
    let out_path =
        std::env::temp_dir().join(format!("datalens_cli_out_{}.csv", std::process::id()));
    let out = datalens(&[
        "repair",
        csv.to_str().unwrap(),
        "--tools",
        "mv_detector,sd",
        "--repairer",
        "standard_imputer",
        "-o",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).expect("output file exists");
    // The null pop cell was imputed: no empty trailing field remains.
    assert!(
        !written.lines().skip(1).any(|l| l.ends_with(',')),
        "{written}"
    );
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = datalens(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = datalens(&["profile", "/nonexistent/x.csv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

//! Content-addressed memoisation of profiling work.
//!
//! A [`ProfileCache`] remembers per-column profiles, per-chunk partial
//! statistics, and correlation-pair values across
//! [`crate::ProfileReport`] builds, so re-profiling a repaired table only
//! recomputes the columns a repair actually touched (plus the correlation
//! pairs involving them) — and within a touched column, only the edited
//! row-group chunk's partial statistics.
//!
//! Identity is content-addressed at **chunk** granularity: each chunk
//! gets a deterministic FNV-1a fingerprint over its dtype, length, and
//! logical value bits (dictionary layout does not participate), and a
//! column's fingerprint folds its chunk fingerprints in order. Chunks
//! are shared behind `Arc`s (copy-on-write), so the common case — a
//! repaired table whose untouched chunks still alias the original
//! allocations — is served by a pointer-identity fast path that never
//! rehashes the data: the cache keeps an `Arc<Chunk>` anchor per seen
//! chunk, which both keeps the allocation alive (so its address cannot
//! be recycled by a new chunk) and lets `Arc::ptr_eq` confirm the match.
//!
//! Determinism: the cache stores the exact values the profiler computed,
//! so a warm build is bit-identical to a cold one — a property pinned by
//! the profile determinism integration test.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use datalens_table::{Chunk, ChunkValues, Column, DataType};

use datalens_sketch::{column_seed, ColumnSketch};

use crate::approx::ProfileMode;
use crate::correlation::CorrelationKind;
use crate::report::{ColumnProfile, ProfileConfig};
use crate::stats::NumericPartial;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Minimal FNV-1a, so fingerprints are stable across runs and platforms
/// (`DefaultHasher` makes no such promise).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn dtype_tag(dtype: DataType) -> u64 {
    match dtype {
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Bool => 3,
        DataType::Str => 4,
    }
}

/// Deterministic content fingerprint of one chunk, over its *logical*
/// values: dictionary order and code assignment do not participate, so
/// two chunks holding the same strings fingerprint identically however
/// they were built.
pub fn chunk_fingerprint(chunk: &Chunk) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(dtype_tag(chunk.dtype()));
    h.write_u64(chunk.len() as u64);
    match chunk.values() {
        ChunkValues::Int(v) => {
            for (i, x) in v.iter().enumerate() {
                if chunk.is_valid(i) {
                    h.write(&[1]);
                    h.write_u64(*x as u64);
                } else {
                    h.write(&[0]);
                }
            }
        }
        ChunkValues::Float(v) => {
            for (i, x) in v.iter().enumerate() {
                if chunk.is_valid(i) {
                    h.write(&[1]);
                    h.write_u64(x.to_bits());
                } else {
                    h.write(&[0]);
                }
            }
        }
        ChunkValues::Bool(v) => {
            for (i, x) in v.iter().enumerate() {
                if chunk.is_valid(i) {
                    h.write(if *x { &[1, 1] } else { &[1, 0] });
                } else {
                    h.write(&[0]);
                }
            }
        }
        ChunkValues::Str { dict, codes } => {
            for (i, code) in codes.iter().enumerate() {
                if chunk.is_valid(i) {
                    let s = &dict[*code as usize];
                    h.write(&[1]);
                    h.write_u64(s.len() as u64);
                    h.write(s.as_bytes());
                } else {
                    h.write(&[0]);
                }
            }
        }
    }
    h.finish()
}

fn fold_fingerprint(column: &Column, mut chunk_fp: impl FnMut(&Arc<Chunk>) -> u64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(dtype_tag(column.dtype()));
    h.write_u64(column.len() as u64);
    for chunk in column.chunks() {
        h.write_u64(chunk_fp(chunk));
    }
    h.finish()
}

/// Deterministic content fingerprint of a column payload: a fold of its
/// chunk fingerprints in chunk order. Name-independent: two columns with
/// equal dtype, chunking and values fingerprint identically. (Chunk
/// boundaries participate — a rechunked column re-fingerprints, which
/// only costs hit rate, never correctness.)
pub fn fingerprint(column: &Column) -> u64 {
    fold_fingerprint(column, |c| chunk_fingerprint(c))
}

/// Hit/miss totals, split by what was looked up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub column_hits: u64,
    pub column_misses: u64,
    pub pair_hits: u64,
    pub pair_misses: u64,
    pub chunk_hits: u64,
    pub chunk_misses: u64,
    /// Per-chunk sketch-partial lookups (approx mode only; always zero
    /// in exact mode).
    pub sketch_hits: u64,
    pub sketch_misses: u64,
    /// Per-chunk sketch merges folded into column sketches (approx mode
    /// only).
    pub sketch_merges: u64,
}

impl CacheStats {
    pub fn hits(&self) -> u64 {
        self.column_hits + self.pair_hits + self.chunk_hits + self.sketch_hits
    }

    pub fn misses(&self) -> u64 {
        self.column_misses + self.pair_misses + self.chunk_misses + self.sketch_misses
    }
}

/// Key of a memoised column profile: the profile depends on the column's
/// name and content plus the config knobs that shape it — including the
/// profiling mode and (in approx mode) the sketch parameters and
/// per-column seed, so switching `exact` ↔ `approx` or changing a sketch
/// size can never serve a stale profile.
#[derive(Clone, PartialEq, Eq, Hash)]
struct ColumnKey {
    name: String,
    bins: usize,
    top_k: usize,
    mode: ProfileMode,
    /// Fingerprint of the sketch parameters + per-column seed in approx
    /// mode; a constant 0 in exact mode so exact entries are unaffected
    /// by sketch-parameter changes.
    sketch_fp: u64,
    fp: u64,
}

impl ColumnKey {
    fn new(column: &Column, config: &ProfileConfig, fp: u64) -> ColumnKey {
        let sketch_fp = match config.mode {
            ProfileMode::Exact => 0,
            ProfileMode::Approx => config.sketch.fingerprint(column_seed(column.name())),
        };
        ColumnKey {
            name: column.name().to_string(),
            bins: config.histogram_bins,
            top_k: config.top_k,
            mode: config.mode,
            sketch_fp,
            fp,
        }
    }
}

struct Inner {
    columns: HashMap<ColumnKey, ColumnProfile>,
    /// Chunk address → content fingerprint. The anchor `Arc<Chunk>`
    /// keeps the allocation alive, so an address in this map can never
    /// be recycled by a different chunk while the entry exists.
    chunk_ptr_fps: HashMap<usize, (Arc<Chunk>, u64)>,
    /// Chunk fingerprint → mergeable numeric partial statistics.
    chunk_partials: HashMap<u64, NumericPartial>,
    /// `(chunk content fingerprint, sketch params+seed fingerprint)` →
    /// per-chunk sketch bundle. The params+seed half is required: content
    /// fingerprints are name-independent while sketch seeds derive from
    /// the column name, so two identical-content columns with different
    /// names must not share a sketch partial.
    chunk_sketches: HashMap<(u64, u64), ColumnSketch>,
    pairs: HashMap<(CorrelationKind, u64, u64), f64>,
}

/// Thread-safe memo of per-column profiles, per-chunk partial stats and
/// correlation-pair values. Shared (behind an `Arc`) by every clone of
/// an engine, so sequential calls — profile, repair, re-profile — reuse
/// each other's work.
pub struct ProfileCache {
    inner: Mutex<Inner>,
    max_columns: usize,
    max_pairs: usize,
    column_hits: AtomicU64,
    column_misses: AtomicU64,
    pair_hits: AtomicU64,
    pair_misses: AtomicU64,
    chunk_hits: AtomicU64,
    chunk_misses: AtomicU64,
    sketch_hits: AtomicU64,
    sketch_misses: AtomicU64,
    sketch_merges: AtomicU64,
}

impl ProfileCache {
    pub fn new() -> ProfileCache {
        ProfileCache::with_capacity(4096, 65536)
    }

    /// A cache holding at most `max_columns` column profiles and
    /// `max_pairs` correlation values / chunk entries. Overflow clears
    /// the grown map wholesale — crude, but eviction order cannot affect
    /// results, only recompute cost.
    pub fn with_capacity(max_columns: usize, max_pairs: usize) -> ProfileCache {
        ProfileCache {
            inner: Mutex::new(Inner {
                columns: HashMap::new(),
                chunk_ptr_fps: HashMap::new(),
                chunk_partials: HashMap::new(),
                chunk_sketches: HashMap::new(),
                pairs: HashMap::new(),
            }),
            max_columns: max_columns.max(1),
            max_pairs: max_pairs.max(1),
            column_hits: AtomicU64::new(0),
            column_misses: AtomicU64::new(0),
            pair_hits: AtomicU64::new(0),
            pair_misses: AtomicU64::new(0),
            chunk_hits: AtomicU64::new(0),
            chunk_misses: AtomicU64::new(0),
            sketch_hits: AtomicU64::new(0),
            sketch_misses: AtomicU64::new(0),
            sketch_merges: AtomicU64::new(0),
        }
    }

    /// Content fingerprint of one chunk, served from the
    /// pointer-identity index (no rehash) when this exact allocation was
    /// seen before.
    pub fn chunk_fingerprint_of(&self, chunk: &Arc<Chunk>) -> u64 {
        let ptr = Arc::as_ptr(chunk) as usize;
        {
            let inner = self.inner.lock();
            if let Some((anchor, fp)) = inner.chunk_ptr_fps.get(&ptr) {
                if Arc::ptr_eq(anchor, chunk) {
                    return *fp;
                }
            }
        }
        // Hash outside the lock: fingerprinting is O(chunk length).
        let fp = chunk_fingerprint(chunk);
        let mut inner = self.inner.lock();
        if inner.chunk_ptr_fps.len() >= self.max_pairs {
            inner.chunk_ptr_fps.clear();
        }
        inner.chunk_ptr_fps.insert(ptr, (Arc::clone(chunk), fp));
        fp
    }

    /// Content fingerprint of `column`: the fold of its chunks'
    /// fingerprints, each served through the pointer fast path. An
    /// edited column re-hashes only the chunks the edit detached.
    pub fn fingerprint_of(&self, column: &Column) -> u64 {
        fold_fingerprint(column, |c| self.chunk_fingerprint_of(c))
    }

    /// Memoised numeric partial for a chunk fingerprint, if present.
    pub fn get_chunk_partial(&self, fp: u64) -> Option<NumericPartial> {
        let hit = self.inner.lock().chunk_partials.get(&fp).copied();
        match &hit {
            Some(_) => self.chunk_hits.fetch_add(1, Ordering::Relaxed),
            None => self.chunk_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Store a freshly computed chunk partial.
    pub fn put_chunk_partial(&self, fp: u64, partial: NumericPartial) {
        let mut inner = self.inner.lock();
        if inner.chunk_partials.len() >= self.max_pairs {
            inner.chunk_partials.clear();
        }
        inner.chunk_partials.insert(fp, partial);
    }

    /// Memoised per-chunk sketch bundle for `(chunk content fingerprint,
    /// sketch params+seed fingerprint)`, if present.
    pub fn get_chunk_sketch(&self, fp: u64, params_fp: u64) -> Option<ColumnSketch> {
        let hit = self
            .inner
            .lock()
            .chunk_sketches
            .get(&(fp, params_fp))
            .cloned();
        match &hit {
            Some(_) => self.sketch_hits.fetch_add(1, Ordering::Relaxed),
            None => self.sketch_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Store a freshly sketched chunk.
    pub fn put_chunk_sketch(&self, fp: u64, params_fp: u64, sketch: &ColumnSketch) {
        let mut inner = self.inner.lock();
        if inner.chunk_sketches.len() >= self.max_pairs {
            inner.chunk_sketches.clear();
        }
        inner.chunk_sketches.insert((fp, params_fp), sketch.clone());
    }

    /// Count sketch merges performed by a column fold (feeds the
    /// `profile_sketch_merges_total` engine metric).
    pub fn note_sketch_merges(&self, n: u64) {
        self.sketch_merges.fetch_add(n, Ordering::Relaxed);
    }

    /// Total resident bytes of every memoised per-chunk sketch (feeds
    /// the `sketch_bytes_resident` engine gauge).
    pub fn sketch_bytes_resident(&self) -> usize {
        self.inner
            .lock()
            .chunk_sketches
            .values()
            .map(ColumnSketch::resident_bytes)
            .sum()
    }

    /// Memoised profile for `column` under `config`, if present.
    pub fn get_column(&self, column: &Column, config: &ProfileConfig) -> Option<ColumnProfile> {
        let fp = self.fingerprint_of(column);
        let key = ColumnKey::new(column, config, fp);
        let hit = self.inner.lock().columns.get(&key).cloned();
        match &hit {
            Some(_) => self.column_hits.fetch_add(1, Ordering::Relaxed),
            None => self.column_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Store a freshly computed profile for `column` under `config`.
    pub fn put_column(&self, column: &Column, config: &ProfileConfig, profile: &ColumnProfile) {
        let fp = self.fingerprint_of(column);
        let key = ColumnKey::new(column, config, fp);
        let mut inner = self.inner.lock();
        if inner.columns.len() >= self.max_columns {
            inner.columns.clear();
        }
        inner.columns.insert(key, profile.clone());
    }

    /// Memoised correlation value for a fingerprint pair, if present.
    pub fn get_pair(&self, kind: CorrelationKind, fp_a: u64, fp_b: u64) -> Option<f64> {
        let hit = self.inner.lock().pairs.get(&(kind, fp_a, fp_b)).copied();
        match &hit {
            Some(_) => self.pair_hits.fetch_add(1, Ordering::Relaxed),
            None => self.pair_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Store a computed correlation value (`NaN` = undefined is stored
    /// too — recomputing it would yield the same `NaN`).
    pub fn put_pair(&self, kind: CorrelationKind, fp_a: u64, fp_b: u64, value: f64) {
        let mut inner = self.inner.lock();
        if inner.pairs.len() >= self.max_pairs {
            inner.pairs.clear();
        }
        inner.pairs.insert((kind, fp_a, fp_b), value);
    }

    /// Hit/miss counters since construction (monotonic; `clear` does not
    /// reset them).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            column_hits: self.column_hits.load(Ordering::Acquire),
            column_misses: self.column_misses.load(Ordering::Acquire),
            pair_hits: self.pair_hits.load(Ordering::Acquire),
            pair_misses: self.pair_misses.load(Ordering::Acquire),
            chunk_hits: self.chunk_hits.load(Ordering::Acquire),
            chunk_misses: self.chunk_misses.load(Ordering::Acquire),
            sketch_hits: self.sketch_hits.load(Ordering::Acquire),
            sketch_misses: self.sketch_misses.load(Ordering::Acquire),
            sketch_merges: self.sketch_merges.load(Ordering::Acquire),
        }
    }

    /// Drop every memoised entry (counters keep counting).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.columns.clear();
        inner.chunk_ptr_fps.clear();
        inner.chunk_partials.clear();
        inner.chunk_sketches.clear();
        inner.pairs.clear();
    }

    /// Number of memoised column profiles (for tests and benches).
    pub fn cached_columns(&self) -> usize {
        self.inner.lock().columns.len()
    }

    /// Number of memoised correlation pairs (for tests and benches).
    pub fn cached_pairs(&self) -> usize {
        self.inner.lock().pairs.len()
    }

    /// Number of memoised chunk partials (for tests and benches).
    pub fn cached_chunk_partials(&self) -> usize {
        self.inner.lock().chunk_partials.len()
    }

    /// Number of memoised per-chunk sketches (for tests and benches).
    pub fn cached_chunk_sketches(&self) -> usize {
        self.inner.lock().chunk_sketches.len()
    }
}

impl Default for ProfileCache {
    fn default() -> ProfileCache {
        ProfileCache::new()
    }
}

impl std::fmt::Debug for ProfileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ProfileCache")
            .field("columns", &self.cached_columns())
            .field("pairs", &self.cached_pairs())
            .field("chunk_partials", &self.cached_chunk_partials())
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ProfileReport;
    use datalens_table::{Table, Value};

    fn col(name: &str, vals: &[Option<i64>]) -> Column {
        Column::from_i64(name, vals.iter().copied())
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let a = col("a", &[Some(1), None, Some(3)]);
        let renamed = col("b", &[Some(1), None, Some(3)]);
        let changed = col("a", &[Some(1), None, Some(4)]);
        assert_eq!(fingerprint(&a), fingerprint(&renamed));
        assert_ne!(fingerprint(&a), fingerprint(&changed));
        // Dtype participates: Int[1] vs Float[1.0] must differ.
        let f = Column::from_f64("a", [Some(1.0), None, Some(3.0)]);
        assert_ne!(fingerprint(&a), fingerprint(&f));
    }

    #[test]
    fn fingerprint_distinguishes_null_layouts() {
        // [Some, None] vs [None, Some] and shifted string boundaries.
        let a = Column::from_str_vals("s", [Some("ab"), Some("c")]);
        let b = Column::from_str_vals("s", [Some("a"), Some("bc")]);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let c = col("x", &[Some(5), None]);
        let d = col("x", &[None, Some(5)]);
        assert_ne!(fingerprint(&c), fingerprint(&d));
    }

    #[test]
    fn chunk_fingerprint_ignores_dictionary_layout() {
        // Same logical strings through different build paths end up with
        // different dictionaries but identical fingerprints.
        let a = Column::from_str_vals("s", [Some("x"), Some("y"), Some("x")]);
        let mut b = Column::from_str_vals("s", [Some("y"), Some("y"), Some("x")]);
        b.set(0, Value::Str("x".into()));
        assert_eq!(
            chunk_fingerprint(&a.chunks()[0]),
            chunk_fingerprint(&b.chunks()[0])
        );
    }

    #[test]
    fn pointer_fast_path_skips_rehash_for_shared_payloads() {
        let cache = ProfileCache::new();
        let a = col("a", &[Some(1), Some(2)]);
        let shared = a.clone();
        assert_eq!(cache.fingerprint_of(&a), cache.fingerprint_of(&shared));
        // A detached copy with equal content still fingerprints equal.
        let mut detached = a.clone();
        detached.set(0, Value::Int(1));
        assert!(!a.shares_data_with(&detached));
        assert_eq!(cache.fingerprint_of(&a), cache.fingerprint_of(&detached));
    }

    #[test]
    fn chunk_partial_roundtrip_counts_hits_and_misses() {
        let cache = ProfileCache::new();
        let c = col("a", &[Some(1), Some(2), Some(3)]);
        let chunk = &c.chunks()[0];
        let fp = cache.chunk_fingerprint_of(chunk);
        assert!(cache.get_chunk_partial(fp).is_none());
        let mut vals = Vec::new();
        chunk.numeric_values_into(&mut vals);
        let partial = NumericPartial::of(&vals);
        cache.put_chunk_partial(fp, partial);
        assert_eq!(cache.get_chunk_partial(fp), Some(partial));
        let s = cache.stats();
        assert_eq!((s.chunk_hits, s.chunk_misses), (1, 1));
        assert_eq!(cache.cached_chunk_partials(), 1);
    }

    #[test]
    fn column_roundtrip_hits_after_miss() {
        let cache = ProfileCache::new();
        let config = ProfileConfig::default();
        let c = col("a", &[Some(1), Some(2), Some(2)]);
        assert!(cache.get_column(&c, &config).is_none());
        let t = Table::new("t", vec![c.clone()]).unwrap();
        let report = ProfileReport::build(&t, &config);
        cache.put_column(&c, &config, &report.columns[0]);
        let hit = cache.get_column(&c, &config).expect("cached");
        assert_eq!(hit, report.columns[0]);
        let s = cache.stats();
        assert_eq!((s.column_hits, s.column_misses), (1, 1));
    }

    #[test]
    fn config_change_is_a_miss() {
        let cache = ProfileCache::new();
        let config = ProfileConfig::default();
        let c = col("a", &[Some(1), Some(2), Some(3)]);
        let t = Table::new("t", vec![c.clone()]).unwrap();
        let report = ProfileReport::build(&t, &config);
        cache.put_column(&c, &config, &report.columns[0]);
        let other = ProfileConfig {
            histogram_bins: 3,
            ..ProfileConfig::default()
        };
        assert!(cache.get_column(&c, &other).is_none());
    }

    #[test]
    fn mode_and_sketch_params_participate_in_the_key() {
        // Regression: switching exact ↔ approx, or changing a sketch
        // parameter, must never serve a stale cached profile.
        use crate::approx::ProfileMode;
        use datalens_sketch::SketchParams;

        let cache = ProfileCache::new();
        let exact = ProfileConfig::default();
        let approx = ProfileConfig {
            mode: ProfileMode::Approx,
            ..ProfileConfig::default()
        };
        let c = col("a", &[Some(1), Some(2), Some(3)]);
        let t = Table::new("t", vec![c.clone()]).unwrap();

        let exact_profile = ProfileReport::build(&t, &exact).columns[0].clone();
        cache.put_column(&c, &exact, &exact_profile);
        assert!(
            cache.get_column(&c, &approx).is_none(),
            "approx lookup must not hit an exact entry"
        );

        let approx_profile = ProfileReport::build(&t, &approx).columns[0].clone();
        cache.put_column(&c, &approx, &approx_profile);
        assert_eq!(cache.get_column(&c, &approx), Some(approx_profile));
        assert_eq!(
            cache.get_column(&c, &exact),
            Some(exact_profile),
            "exact entry survives beside the approx one"
        );

        // Changing any sketch parameter re-keys approx entries...
        let approx_small = ProfileConfig {
            sketch: SketchParams {
                kll_k: 100,
                ..SketchParams::default()
            },
            ..approx.clone()
        };
        assert!(cache.get_column(&c, &approx_small).is_none());
        // ...but leaves exact entries alone (exact ignores sketch params).
        let exact_other_sketch = ProfileConfig {
            sketch: SketchParams {
                kll_k: 100,
                ..SketchParams::default()
            },
            ..ProfileConfig::default()
        };
        assert!(cache.get_column(&c, &exact_other_sketch).is_some());
    }

    #[test]
    fn chunk_sketches_are_keyed_by_params_and_seed() {
        // Two identical-content columns with different names share a
        // content fingerprint but must not share sketch partials (the
        // sketch seed derives from the column name).
        use datalens_sketch::{column_seed, SketchParams};

        let cache = ProfileCache::new();
        let params = SketchParams::default();
        let a = col("a", &[Some(1), Some(2)]);
        let b = col("b", &[Some(1), Some(2)]);
        let fp_a = cache.fingerprint_of(&a);
        let fp_b = cache.fingerprint_of(&b);
        assert_eq!(fp_a, fp_b, "content fingerprints are name-independent");

        let sketch_a = crate::approx::sketch_chunk(&a.chunks()[0], params, column_seed("a"));
        let chunk_fp = cache.chunk_fingerprint_of(&a.chunks()[0]);
        cache.put_chunk_sketch(chunk_fp, params.fingerprint(column_seed("a")), &sketch_a);
        assert!(cache
            .get_chunk_sketch(chunk_fp, params.fingerprint(column_seed("a")))
            .is_some());
        assert!(
            cache
                .get_chunk_sketch(chunk_fp, params.fingerprint(column_seed("b")))
                .is_none(),
            "a differently-seeded column must re-sketch"
        );
        assert_eq!(cache.cached_chunk_sketches(), 1);
        let s = cache.stats();
        assert_eq!((s.sketch_hits, s.sketch_misses), (1, 1));
    }

    #[test]
    fn pair_cache_stores_nan_verdicts() {
        let cache = ProfileCache::new();
        assert!(cache.get_pair(CorrelationKind::Pearson, 1, 2).is_none());
        cache.put_pair(CorrelationKind::Pearson, 1, 2, f64::NAN);
        let v = cache.get_pair(CorrelationKind::Pearson, 1, 2).expect("hit");
        assert!(v.is_nan());
        // Kind participates in the key.
        assert!(cache.get_pair(CorrelationKind::Spearman, 1, 2).is_none());
    }

    #[test]
    fn overflow_clears_rather_than_grows() {
        let cache = ProfileCache::with_capacity(2, 2);
        let config = ProfileConfig::default();
        for i in 0..5i64 {
            let c = col(&format!("c{i}"), &[Some(i), Some(i + 1)]);
            let t = Table::new("t", vec![c.clone()]).unwrap();
            let report = ProfileReport::build(&t, &config);
            cache.put_column(&c, &config, &report.columns[0]);
        }
        assert!(cache.cached_columns() <= 2);
        for i in 0..5u64 {
            cache.put_pair(CorrelationKind::Pearson, i, i + 1, 0.5);
        }
        assert!(cache.cached_pairs() <= 2);
        for i in 0..5u64 {
            cache.put_chunk_partial(i, NumericPartial::of(&[i as f64]));
        }
        assert!(cache.cached_chunk_partials() <= 2);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = ProfileCache::new();
        cache.put_pair(CorrelationKind::Pearson, 1, 2, 0.5);
        assert!(cache.get_pair(CorrelationKind::Pearson, 1, 2).is_some());
        cache.clear();
        assert_eq!(cache.cached_pairs(), 0);
        assert!(cache.get_pair(CorrelationKind::Pearson, 1, 2).is_none());
        let s = cache.stats();
        assert_eq!((s.pair_hits, s.pair_misses), (1, 1));
    }
}

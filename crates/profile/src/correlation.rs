//! Correlation measures between columns: Pearson, Spearman, and Cramér's V
//! — the three families ydata-profiling reports and the Data Profile tab
//! surfaces.

use serde::{Deserialize, Serialize};

use datalens_table::{DataType, Table};

/// Pearson correlation over pairwise-complete finite pairs; `None` when
/// fewer than two such pairs exist or either side is constant. Pairs with
/// a NaN or ±Inf member are dropped like nulls — a single non-finite
/// entry used to poison the whole coefficient to NaN.
pub fn pearson(x: &[Option<f64>], y: &[Option<f64>]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "length mismatch");
    pearson_complete(&finite_pairs(x, y))
}

/// Pairwise-complete `(x, y)` pairs with both members finite.
fn finite_pairs(x: &[Option<f64>], y: &[Option<f64>]) -> Vec<(f64, f64)> {
    x.iter()
        .zip(y)
        .filter_map(|(a, b)| Some(((*a)?, (*b)?)))
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .collect()
}

fn pearson_complete(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|(a, _)| a).sum::<f64>() / n;
    let my = pairs.iter().map(|(_, b)| b).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (a, b) in pairs {
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
        sxy += (a - mx) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation (Pearson over average ranks, handling ties).
/// Non-finite members are dropped pairwise, as in [`pearson`] — NaN is
/// unrankable and ±Inf would pin the extreme ranks.
pub fn spearman(x: &[Option<f64>], y: &[Option<f64>]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let pairs = finite_pairs(x, y);
    if pairs.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = pairs.iter().map(|(a, _)| *a).collect();
    let ys: Vec<f64> = pairs.iter().map(|(_, b)| *b).collect();
    let rx = ranks(&xs);
    let ry = ranks(&ys);
    let ranked: Vec<(f64, f64)> = rx.into_iter().zip(ry).collect();
    pearson_complete(&ranked)
}

/// Average (fractional) ranks with tie handling.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Cramér's V between two categorical variables (bias-corrected per
/// Bergsma 2013, as ydata-profiling uses). `None` when either variable has
/// a single level or there are no complete pairs.
pub fn cramers_v(x: &[Option<String>], y: &[Option<String>]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let pairs: Vec<(&String, &String)> = x
        .iter()
        .zip(y)
        .filter_map(|(a, b)| Some((a.as_ref()?, b.as_ref()?)))
        .collect();
    if pairs.is_empty() {
        return None;
    }
    let mut xs: Vec<&String> = pairs.iter().map(|(a, _)| *a).collect();
    xs.sort();
    xs.dedup();
    let mut ys: Vec<&String> = pairs.iter().map(|(_, b)| *b).collect();
    ys.sort();
    ys.dedup();
    let r = xs.len();
    let k = ys.len();
    if r < 2 || k < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mut observed = vec![vec![0.0f64; k]; r];
    for (a, b) in &pairs {
        let i = xs.binary_search(a).expect("level present");
        let j = ys.binary_search(b).expect("level present");
        observed[i][j] += 1.0;
    }
    let row_sums: Vec<f64> = observed.iter().map(|row| row.iter().sum()).collect();
    let col_sums: Vec<f64> = (0..k)
        .map(|j| observed.iter().map(|row| row[j]).sum())
        .collect();
    let mut chi2 = 0.0;
    for i in 0..r {
        for j in 0..k {
            let expected = row_sums[i] * col_sums[j] / n;
            if expected > 0.0 {
                chi2 += (observed[i][j] - expected).powi(2) / expected;
            }
        }
    }
    // Bias correction.
    let phi2 = chi2 / n;
    let phi2_corr = (phi2 - (r as f64 - 1.0) * (k as f64 - 1.0) / (n - 1.0)).max(0.0);
    let r_corr = r as f64 - (r as f64 - 1.0).powi(2) / (n - 1.0);
    let k_corr = k as f64 - (k as f64 - 1.0).powi(2) / (n - 1.0);
    let denom = (r_corr - 1.0).min(k_corr - 1.0);
    if denom <= 0.0 {
        return None;
    }
    Some((phi2_corr / denom).sqrt().min(1.0))
}

/// A symmetric correlation matrix with column labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationMatrix {
    pub columns: Vec<String>,
    /// `values[i][j]` = correlation between `columns[i]` and `columns[j]`,
    /// `NaN` where undefined.
    pub values: Vec<Vec<f64>>,
}

impl CorrelationMatrix {
    pub fn get(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.columns.iter().position(|c| c == a)?;
        let j = self.columns.iter().position(|c| c == b)?;
        let v = self.values[i][j];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }
}

/// Which correlation to compute across a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorrelationKind {
    Pearson,
    Spearman,
    CramersV,
}

/// Compute a correlation matrix across the relevant columns of `table`:
/// numeric columns for Pearson/Spearman, string columns for Cramér's V.
pub fn correlation_matrix(table: &Table, kind: CorrelationKind) -> CorrelationMatrix {
    match kind {
        CorrelationKind::Pearson | CorrelationKind::Spearman => {
            let cols: Vec<&datalens_table::Column> = table
                .columns()
                .iter()
                .filter(|c| c.dtype().is_numeric())
                .collect();
            let series: Vec<Vec<Option<f64>>> = cols
                .iter()
                .map(|c| c.iter().map(|v| v.as_f64()).collect())
                .collect();
            let names: Vec<String> = cols.iter().map(|c| c.name().to_string()).collect();
            let f = match kind {
                CorrelationKind::Pearson => pearson,
                _ => spearman,
            };
            let mut values = vec![vec![f64::NAN; names.len()]; names.len()];
            for i in 0..names.len() {
                values[i][i] = 1.0;
                for j in (i + 1)..names.len() {
                    let v = f(&series[i], &series[j]).unwrap_or(f64::NAN);
                    values[i][j] = v;
                    values[j][i] = v;
                }
            }
            CorrelationMatrix {
                columns: names,
                values,
            }
        }
        CorrelationKind::CramersV => {
            let cols: Vec<&datalens_table::Column> = table
                .columns()
                .iter()
                .filter(|c| c.dtype() == DataType::Str)
                .collect();
            let series: Vec<Vec<Option<String>>> = cols
                .iter()
                .map(|c| c.iter().map(|v| v.as_str().map(str::to_string)).collect())
                .collect();
            let names: Vec<String> = cols.iter().map(|c| c.name().to_string()).collect();
            let mut values = vec![vec![f64::NAN; names.len()]; names.len()];
            for i in 0..names.len() {
                values[i][i] = 1.0;
                for j in (i + 1)..names.len() {
                    let v = cramers_v(&series[i], &series[j]).unwrap_or(f64::NAN);
                    values[i][j] = v;
                    values[j][i] = v;
                }
            }
            CorrelationMatrix {
                columns: names,
                values,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn opt(v: &[f64]) -> Vec<Option<f64>> {
        v.iter().map(|&x| Some(x)).collect()
    }

    #[test]
    fn pearson_perfect_positive_negative() {
        let x = opt(&[1.0, 2.0, 3.0]);
        let y = opt(&[2.0, 4.0, 6.0]);
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = opt(&[6.0, 4.0, 2.0]);
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_skips_incomplete_pairs() {
        let x = vec![Some(1.0), None, Some(3.0), Some(4.0)];
        let y = vec![Some(1.0), Some(9.0), Some(3.0), Some(4.0)];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_pairs_are_dropped_not_poisonous() {
        // Regression: one NaN (or ±Inf) member used to turn the whole
        // coefficient into NaN (reported as None by the matrix layer).
        let x = vec![Some(1.0), Some(f64::NAN), Some(3.0), Some(4.0)];
        let y = vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let inf = vec![Some(f64::INFINITY), Some(2.0), Some(3.0), Some(4.0)];
        assert!((pearson(&inf, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&inf, &y).unwrap() - 1.0).abs() < 1e-12);
        // All pairs non-finite → nothing to correlate.
        let bad = vec![Some(f64::NAN), Some(f64::NEG_INFINITY)];
        assert!(pearson(&bad, &y[..2]).is_none());
    }

    #[test]
    fn pearson_undefined_for_constant() {
        let x = opt(&[1.0, 1.0, 1.0]);
        let y = opt(&[1.0, 2.0, 3.0]);
        assert!(pearson(&x, &y).is_none());
        assert!(pearson(&opt(&[1.0]), &opt(&[2.0])).is_none());
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = opt(&[1.0, 2.0, 3.0, 4.0]);
        let y = opt(&[1.0, 8.0, 27.0, 64.0]); // x³: nonlinear but monotone
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = opt(&[1.0, 2.0, 2.0, 3.0]);
        let y = opt(&[1.0, 2.0, 2.0, 3.0]);
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn cramers_v_perfect_association() {
        let x: Vec<Option<String>> = ["a", "a", "b", "b", "a", "b", "a", "b"]
            .iter()
            .map(|s| Some(s.to_string()))
            .collect();
        let y: Vec<Option<String>> = ["p", "p", "q", "q", "p", "q", "p", "q"]
            .iter()
            .map(|s| Some(s.to_string()))
            .collect();
        let v = cramers_v(&x, &y).unwrap();
        assert!(v > 0.9, "v = {v}");
    }

    #[test]
    fn cramers_v_independence_near_zero() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            x.push(Some(if i % 2 == 0 { "a" } else { "b" }.to_string()));
            y.push(Some(if (i / 2) % 2 == 0 { "p" } else { "q" }.to_string()));
        }
        let v = cramers_v(&x, &y).unwrap();
        assert!(v < 0.2, "v = {v}");
    }

    #[test]
    fn cramers_v_single_level_is_none() {
        let x = vec![Some("a".to_string()); 5];
        let y: Vec<Option<String>> = ["p", "q", "p", "q", "p"]
            .iter()
            .map(|s| Some(s.to_string()))
            .collect();
        assert!(cramers_v(&x, &y).is_none());
    }

    #[test]
    fn matrix_over_table() {
        let t = Table::new(
            "t",
            vec![
                Column::from_f64("a", [Some(1.0), Some(2.0), Some(3.0)]),
                Column::from_f64("b", [Some(2.0), Some(4.0), Some(6.0)]),
                Column::from_str_vals("s", [Some("x"), Some("y"), Some("x")]),
            ],
        )
        .unwrap();
        let m = correlation_matrix(&t, CorrelationKind::Pearson);
        assert_eq!(m.columns, vec!["a", "b"]);
        assert!((m.get("a", "b").unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(m.get("a", "a"), Some(1.0));
        assert_eq!(m.get("a", "s"), None);
        let mv = correlation_matrix(&t, CorrelationKind::CramersV);
        assert_eq!(mv.columns, vec!["s"]);
    }
}

//! The full profile report — the structure behind the "Data Profile" tab.

use serde::{Deserialize, Serialize};

use datalens_table::{DataType, Table};

use crate::alerts::{scan, Alert, AlertConfig};
use crate::correlation::{correlation_matrix, CorrelationKind, CorrelationMatrix};
use crate::histogram::Histogram;
use crate::stats::{categorical_stats, numeric_stats, CategoricalStats, NumericStats};

/// Profiling options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Histogram bin count for numeric columns.
    pub histogram_bins: usize,
    /// How many most-frequent values to keep per column.
    pub top_k: usize,
    pub alerts: AlertConfig,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            histogram_bins: 10,
            top_k: 10,
            alerts: AlertConfig::default(),
        }
    }
}

/// Profile of a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    pub name: String,
    pub dtype: DataType,
    pub null_count: usize,
    pub null_fraction: f64,
    pub distinct: usize,
    /// Numeric summary, present for int/float/bool columns with data.
    pub numeric: Option<NumericStats>,
    /// Frequency summary, always present.
    pub categorical: CategoricalStats,
    /// Histogram, present for numeric columns with data.
    pub histogram: Option<Histogram>,
}

/// Table-level overview statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    pub n_rows: usize,
    pub n_columns: usize,
    pub total_cells: usize,
    pub missing_cells: usize,
    pub missing_fraction: f64,
    pub duplicate_rows: usize,
}

/// The complete profiling report for a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    pub dataset: String,
    pub table: TableStats,
    pub columns: Vec<ColumnProfile>,
    pub pearson: CorrelationMatrix,
    pub spearman: CorrelationMatrix,
    pub cramers_v: CorrelationMatrix,
    pub alerts: Vec<Alert>,
}

impl ProfileReport {
    /// Profile `table` with the given configuration.
    pub fn build(table: &Table, config: &ProfileConfig) -> ProfileReport {
        let n_rows = table.n_rows();
        let n_columns = table.n_cols();
        let missing_cells = table.null_count();
        let total_cells = n_rows * n_columns;
        let duplicate_rows = table.duplicate_rows().len();

        let columns = table
            .columns()
            .iter()
            .map(|col| {
                let numeric = numeric_stats(col);
                let histogram = numeric
                    .as_ref()
                    .and_then(|_| Histogram::build(&col.numeric_values(), config.histogram_bins));
                let categorical = categorical_stats(col, config.top_k);
                ColumnProfile {
                    name: col.name().to_string(),
                    dtype: col.dtype(),
                    null_count: col.null_count(),
                    null_fraction: if n_rows == 0 {
                        0.0
                    } else {
                        col.null_count() as f64 / n_rows as f64
                    },
                    distinct: categorical.distinct,
                    numeric,
                    categorical,
                    histogram,
                }
            })
            .collect();

        ProfileReport {
            dataset: table.name().to_string(),
            table: TableStats {
                n_rows,
                n_columns,
                total_cells,
                missing_cells,
                missing_fraction: if total_cells == 0 {
                    0.0
                } else {
                    missing_cells as f64 / total_cells as f64
                },
                duplicate_rows,
            },
            columns,
            pearson: correlation_matrix(table, CorrelationKind::Pearson),
            spearman: correlation_matrix(table, CorrelationKind::Spearman),
            cramers_v: correlation_matrix(table, CorrelationKind::CramersV),
            alerts: scan(table, &config.alerts),
        }
    }

    /// Look up a column's profile by name.
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Render the report as a compact text summary (the Data Profile tab).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== Data Profile: {} ===\n", self.dataset));
        out.push_str(&format!(
            "rows: {}   columns: {}   missing: {}/{} ({:.1}%)   duplicate rows: {}\n\n",
            self.table.n_rows,
            self.table.n_columns,
            self.table.missing_cells,
            self.table.total_cells,
            self.table.missing_fraction * 100.0,
            self.table.duplicate_rows,
        ));
        for col in &self.columns {
            out.push_str(&format!(
                "-- {} ({})  nulls: {} ({:.1}%)  distinct: {}\n",
                col.name,
                col.dtype,
                col.null_count,
                col.null_fraction * 100.0,
                col.distinct,
            ));
            if let Some(n) = &col.numeric {
                out.push_str(&format!(
                    "   mean {:.4}  std {:.4}  min {:.4}  q1 {:.4}  median {:.4}  q3 {:.4}  max {:.4}\n",
                    n.mean, n.std, n.min, n.q1, n.median, n.q3, n.max,
                ));
            }
            if !col.categorical.top.is_empty() {
                let tops: Vec<String> = col
                    .categorical
                    .top
                    .iter()
                    .take(3)
                    .map(|(v, c)| format!("{v:?}×{c}"))
                    .collect();
                out.push_str(&format!("   top: {}\n", tops.join("  ")));
            }
            if let Some(h) = &col.histogram {
                for line in h.render_ascii(24).lines() {
                    out.push_str("   ");
                    out.push_str(line);
                    out.push('\n');
                }
                if h.nan_count > 0 {
                    out.push_str(&format!(
                        "   ! {} NaN value{} excluded from histogram\n",
                        h.nan_count,
                        if h.nan_count == 1 { "" } else { "s" },
                    ));
                }
            }
        }
        if !self.alerts.is_empty() {
            out.push_str("\nAlerts:\n");
            for a in &self.alerts {
                out.push_str(&format!(
                    "  [{:?}] {}{}\n",
                    a.kind,
                    a.column
                        .as_ref()
                        .map(|c| format!("{c}: "))
                        .unwrap_or_default(),
                    a.message
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn sample() -> Table {
        Table::new(
            "cities",
            vec![
                Column::from_str_vals("city", [Some("ulm"), Some("bonn"), None, Some("ulm")]),
                Column::from_f64("pop", [Some(120.0), Some(330.0), Some(310.0), Some(120.0)]),
                Column::from_i64("zip", [Some(89073), Some(53111), Some(55116), Some(89073)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn report_covers_all_columns() {
        let r = ProfileReport::build(&sample(), &ProfileConfig::default());
        assert_eq!(r.dataset, "cities");
        assert_eq!(r.columns.len(), 3);
        assert_eq!(r.table.n_rows, 4);
        assert_eq!(r.table.missing_cells, 1);
        assert!(r.column("pop").unwrap().numeric.is_some());
        assert!(r.column("city").unwrap().numeric.is_none());
        assert!(r.column("pop").unwrap().histogram.is_some());
    }

    #[test]
    fn missing_fraction_correct() {
        let r = ProfileReport::build(&sample(), &ProfileConfig::default());
        assert!((r.table.missing_fraction - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(r.column("city").unwrap().null_count, 1);
    }

    #[test]
    fn correlations_present_for_numeric_pairs() {
        let r = ProfileReport::build(&sample(), &ProfileConfig::default());
        assert!(r.pearson.get("pop", "zip").is_some());
        assert_eq!(r.pearson.columns.len(), 2);
    }

    #[test]
    fn render_text_mentions_columns_and_alerts() {
        let r = ProfileReport::build(&sample(), &ProfileConfig::default());
        let text = r.render_text();
        assert!(text.contains("city"));
        assert!(text.contains("pop"));
        assert!(text.contains("Data Profile: cities"));
    }

    #[test]
    fn empty_table_profile() {
        let schema = datalens_table::Schema::from_pairs([("x", DataType::Int)]).unwrap();
        let t = Table::empty("empty", &schema);
        let r = ProfileReport::build(&t, &ProfileConfig::default());
        assert_eq!(r.table.n_rows, 0);
        assert_eq!(r.table.missing_fraction, 0.0);
        assert!(r.column("x").unwrap().numeric.is_none());
    }

    #[test]
    fn report_serialises_to_json() {
        let r = ProfileReport::build(&sample(), &ProfileConfig::default());
        // serde round trip through the serde_json used in the delta crate
        // is covered by integration tests; here just check Serialize works
        // through a trivial serializer.
        let as_debug = format!("{r:?}");
        assert!(as_debug.contains("ProfileReport"));
    }
}

//! The full profile report — the structure behind the "Data Profile" tab.
//!
//! [`ProfileReport::build_with`] fans the per-column work and the
//! correlation matrices' `(i, j)` pairs out across scoped threads and can
//! memoise both through a [`ProfileCache`]. Results are always assembled
//! in input-index order, so the report is bit-identical at any thread
//! count and whether the cache was cold or warm.

use serde::{Deserialize, Serialize};

use datalens_table::{Column, DataType, Table};

use crate::alerts::{scan_with, Alert, AlertConfig};
use crate::approx::{approx_column_profile, ApproxColumnProfile, ProfileMode, SketchParams};
use crate::cache::ProfileCache;
use crate::correlation::{cramers_v, pearson, spearman, CorrelationKind, CorrelationMatrix};
use crate::histogram::Histogram;
use crate::stats::{categorical_stats, numeric_stats_chunked, CategoricalStats, NumericStats};

/// Profiling options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Histogram bin count for numeric columns.
    pub histogram_bins: usize,
    /// How many most-frequent values to keep per column.
    pub top_k: usize,
    pub alerts: AlertConfig,
    /// Which backend computes per-column statistics (exact by default).
    #[serde(default)]
    pub mode: ProfileMode,
    /// Sketch sizes used by [`ProfileMode::Approx`]; ignored in exact
    /// mode (and excluded from exact cache keys).
    #[serde(default)]
    pub sketch: SketchParams,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            histogram_bins: 10,
            top_k: 10,
            alerts: AlertConfig::default(),
            mode: ProfileMode::default(),
            sketch: SketchParams::default(),
        }
    }
}

/// Profile of a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    pub name: String,
    pub dtype: DataType,
    pub null_count: usize,
    pub null_fraction: f64,
    pub distinct: usize,
    /// Numeric summary, present for int/float/bool columns with data.
    pub numeric: Option<NumericStats>,
    /// Frequency summary, always present.
    pub categorical: CategoricalStats,
    /// Histogram, present for numeric columns with data.
    pub histogram: Option<Histogram>,
    /// Approximation metadata (estimates and their bounds), present only
    /// when the profile was built in [`ProfileMode::Approx`].
    #[serde(default)]
    pub approx: Option<ApproxColumnProfile>,
}

/// Table-level overview statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    pub n_rows: usize,
    pub n_columns: usize,
    pub total_cells: usize,
    pub missing_cells: usize,
    pub missing_fraction: f64,
    pub duplicate_rows: usize,
}

/// The complete profiling report for a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    pub dataset: String,
    pub table: TableStats,
    pub columns: Vec<ColumnProfile>,
    pub pearson: CorrelationMatrix,
    pub spearman: CorrelationMatrix,
    pub cramers_v: CorrelationMatrix,
    pub alerts: Vec<Alert>,
}

/// How [`ProfileReport::build_with`] schedules and memoises its work.
#[derive(Clone, Copy, Default)]
pub struct BuildOptions<'a> {
    /// Worker threads for the per-column and per-pair fan-out; `0` or
    /// `1` run fully sequentially.
    pub threads: usize,
    /// Memoise per-column profiles and correlation pairs across builds.
    pub cache: Option<&'a ProfileCache>,
}

impl ProfileReport {
    /// Profile `table` with the given configuration, sequentially and
    /// without memoisation.
    pub fn build(table: &Table, config: &ProfileConfig) -> ProfileReport {
        Self::build_with(table, config, &BuildOptions::default())
    }

    /// Profile `table`, fanning per-column stats/histograms and the
    /// three correlation matrices' pairs out across `opts.threads`
    /// scoped threads and reusing `opts.cache` entries where the content
    /// fingerprints match. Output is bit-identical to [`Self::build`]
    /// regardless of thread count or cache state: work units are
    /// independent and assembled in input-index order, and the cache
    /// stores the exact values a cold build computes.
    pub fn build_with(table: &Table, config: &ProfileConfig, opts: &BuildOptions) -> ProfileReport {
        let n_rows = table.n_rows();
        let n_columns = table.n_cols();
        let missing_cells = table.null_count();
        let total_cells = n_rows * n_columns;
        let duplicate_rows = table.duplicate_rows().len();

        let cols = table.columns();
        let columns: Vec<ColumnProfile> = map_indexed(cols.len(), opts.threads, |i| {
            profile_column(&cols[i], n_rows, config, opts.cache)
        });

        let (pearson, spearman, cramers_v) = correlation_matrices(table, opts);
        let alerts = scan_with(table, &config.alerts, &columns, &pearson, duplicate_rows);

        ProfileReport {
            dataset: table.name().to_string(),
            table: TableStats {
                n_rows,
                n_columns,
                total_cells,
                missing_cells,
                missing_fraction: if total_cells == 0 {
                    0.0
                } else {
                    missing_cells as f64 / total_cells as f64
                },
                duplicate_rows,
            },
            columns,
            pearson,
            spearman,
            cramers_v,
            alerts,
        }
    }

    /// Look up a column's profile by name.
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Render the report as a compact text summary (the Data Profile tab).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== Data Profile: {} ===\n", self.dataset));
        out.push_str(&format!(
            "rows: {}   columns: {}   missing: {}/{} ({:.1}%)   duplicate rows: {}\n\n",
            self.table.n_rows,
            self.table.n_columns,
            self.table.missing_cells,
            self.table.total_cells,
            self.table.missing_fraction * 100.0,
            self.table.duplicate_rows,
        ));
        for col in &self.columns {
            match &col.approx {
                Some(a) => out.push_str(&format!(
                    "-- {} ({})  nulls: {} ({:.1}%)  distinct: ~{} (±{:.0})\n",
                    col.name,
                    col.dtype,
                    col.null_count,
                    col.null_fraction * 100.0,
                    col.distinct,
                    a.distinct_bound.ceil(),
                )),
                None => out.push_str(&format!(
                    "-- {} ({})  nulls: {} ({:.1}%)  distinct: {}\n",
                    col.name,
                    col.dtype,
                    col.null_count,
                    col.null_fraction * 100.0,
                    col.distinct,
                )),
            }
            if let Some(n) = &col.numeric {
                out.push_str(&format!(
                    "   mean {:.4}  std {:.4}  min {:.4}  q1 {:.4}  median {:.4}  q3 {:.4}  max {:.4}\n",
                    n.mean, n.std, n.min, n.q1, n.median, n.q3, n.max,
                ));
            }
            if !col.categorical.top.is_empty() {
                let tops: Vec<String> = col
                    .categorical
                    .top
                    .iter()
                    .take(3)
                    .map(|(v, c)| format!("{v:?}×{c}"))
                    .collect();
                out.push_str(&format!("   top: {}\n", tops.join("  ")));
            }
            if let Some(h) = &col.histogram {
                for line in h.render_ascii(24).lines() {
                    out.push_str("   ");
                    out.push_str(line);
                    out.push('\n');
                }
                if h.non_finite_count > 0 {
                    out.push_str(&format!(
                        "   ! {} non-finite value{} excluded from histogram\n",
                        h.non_finite_count,
                        if h.non_finite_count == 1 { "" } else { "s" },
                    ));
                }
            }
        }
        let sketch_bytes: u64 = self
            .columns
            .iter()
            .filter_map(|c| c.approx.as_ref())
            .map(|a| a.sketch_bytes)
            .sum();
        if sketch_bytes > 0 {
            out.push_str(&format!(
                "\napprox mode: sketch bytes resident: {sketch_bytes} across {} columns\n",
                self.columns.len(),
            ));
        }
        if !self.alerts.is_empty() {
            out.push_str("\nAlerts:\n");
            for a in &self.alerts {
                out.push_str(&format!(
                    "  [{:?}] {}{}\n",
                    a.kind,
                    a.column
                        .as_ref()
                        .map(|c| format!("{c}: "))
                        .unwrap_or_default(),
                    a.message
                ));
            }
        }
        out
    }
}

/// Profile one column, consulting (and feeding) the cache when present.
fn profile_column(
    col: &Column,
    n_rows: usize,
    config: &ProfileConfig,
    cache: Option<&ProfileCache>,
) -> ColumnProfile {
    if let Some(cache) = cache {
        if let Some(hit) = cache.get_column(col, config) {
            return hit;
        }
    }
    let profile = compute_column_profile(col, n_rows, config, cache);
    if let Some(cache) = cache {
        cache.put_column(col, config, &profile);
    }
    profile
}

/// The per-column work: stats (chunk-merged, with per-chunk partials
/// memoised through `cache` when present), histogram, value frequencies.
pub(crate) fn compute_column_profile(
    col: &Column,
    n_rows: usize,
    config: &ProfileConfig,
    cache: Option<&ProfileCache>,
) -> ColumnProfile {
    if config.mode == ProfileMode::Approx {
        return approx_column_profile(col, n_rows, config, cache);
    }
    let numeric = numeric_stats_chunked(col, cache);
    let histogram = if config.histogram_bins == 0 {
        None
    } else {
        numeric
            .as_ref()
            .and_then(|_| Histogram::build(&col.numeric_values(), config.histogram_bins))
    };
    let categorical = categorical_stats(col, config.top_k);
    ColumnProfile {
        name: col.name().to_string(),
        dtype: col.dtype(),
        null_count: col.null_count(),
        null_fraction: if n_rows == 0 {
            0.0
        } else {
            col.null_count() as f64 / n_rows as f64
        },
        distinct: categorical.distinct,
        numeric,
        categorical,
        histogram,
        approx: None,
    }
}

/// Run `f(0)…f(n-1)` and collect the results in index order, fanning the
/// indices out across up to `threads` scoped threads in contiguous
/// chunks — the same pattern as the engine's detect fan-out, so assembly
/// order never depends on scheduling.
fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    if threads <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(i));
        }
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (c, out) in slots.chunks_mut(chunk).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    for (k, slot) in out.iter_mut().enumerate() {
                        *slot = Some(f(c * chunk + k));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        // lint:allow(panic-in-lib): scope() joins every spawned thread
        // before returning and the chunked iteration covers each slot
        // exactly once, so the slot is always filled.
        .map(|s| s.expect("every fan-out slot filled"))
        .collect()
}

/// Compute the Pearson, Spearman, and Cramér's V matrices, flattening
/// every upper-triangle `(kind, i, j)` pair into one task list that the
/// fan-out processes (and the cache memoises) independently.
fn correlation_matrices(
    table: &Table,
    opts: &BuildOptions,
) -> (CorrelationMatrix, CorrelationMatrix, CorrelationMatrix) {
    let num_cols: Vec<&Column> = table
        .columns()
        .iter()
        .filter(|c| c.dtype().is_numeric())
        .collect();
    let str_cols: Vec<&Column> = table
        .columns()
        .iter()
        .filter(|c| c.dtype() == DataType::Str)
        .collect();
    let num_series: Vec<Vec<Option<f64>>> = num_cols
        .iter()
        .map(|c| c.iter().map(|v| v.as_f64()).collect())
        .collect();
    let str_series: Vec<Vec<Option<String>>> = str_cols
        .iter()
        .map(|c| c.iter().map(|v| v.as_str().map(str::to_string)).collect())
        .collect();
    // Content fingerprints key the pair cache; the pointer fast path
    // makes this O(1) for columns the cache has already seen.
    let (num_fps, str_fps): (Vec<u64>, Vec<u64>) = match opts.cache {
        Some(cache) => (
            num_cols.iter().map(|c| cache.fingerprint_of(c)).collect(),
            str_cols.iter().map(|c| cache.fingerprint_of(c)).collect(),
        ),
        None => (Vec::new(), Vec::new()),
    };

    let mut tasks: Vec<(CorrelationKind, usize, usize)> = Vec::new();
    for kind in [CorrelationKind::Pearson, CorrelationKind::Spearman] {
        for i in 0..num_cols.len() {
            for j in (i + 1)..num_cols.len() {
                tasks.push((kind, i, j));
            }
        }
    }
    for i in 0..str_cols.len() {
        for j in (i + 1)..str_cols.len() {
            tasks.push((CorrelationKind::CramersV, i, j));
        }
    }

    let results: Vec<f64> = map_indexed(tasks.len(), opts.threads, |t| {
        let (kind, i, j) = tasks[t];
        let fps = match kind {
            CorrelationKind::CramersV => &str_fps,
            _ => &num_fps,
        };
        if let Some(cache) = opts.cache {
            if let Some(v) = cache.get_pair(kind, fps[i], fps[j]) {
                return v;
            }
        }
        let v = match kind {
            CorrelationKind::Pearson => pearson(&num_series[i], &num_series[j]),
            CorrelationKind::Spearman => spearman(&num_series[i], &num_series[j]),
            CorrelationKind::CramersV => cramers_v(&str_series[i], &str_series[j]),
        }
        .unwrap_or(f64::NAN);
        if let Some(cache) = opts.cache {
            cache.put_pair(kind, fps[i], fps[j], v);
        }
        v
    });

    let num_names: Vec<String> = num_cols.iter().map(|c| c.name().to_string()).collect();
    let str_names: Vec<String> = str_cols.iter().map(|c| c.name().to_string()).collect();
    let mut pearson_m = unit_diagonal_matrix(num_names.clone());
    let mut spearman_m = unit_diagonal_matrix(num_names);
    let mut cramers_m = unit_diagonal_matrix(str_names);
    for (&(kind, i, j), &v) in tasks.iter().zip(&results) {
        let m = match kind {
            CorrelationKind::Pearson => &mut pearson_m,
            CorrelationKind::Spearman => &mut spearman_m,
            CorrelationKind::CramersV => &mut cramers_m,
        };
        m.values[i][j] = v;
        m.values[j][i] = v;
    }
    (pearson_m, spearman_m, cramers_m)
}

/// An all-NaN matrix over `columns` with ones on the diagonal.
fn unit_diagonal_matrix(columns: Vec<String>) -> CorrelationMatrix {
    let n = columns.len();
    let mut values = vec![vec![f64::NAN; n]; n];
    for (i, row) in values.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    CorrelationMatrix { columns, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn sample() -> Table {
        Table::new(
            "cities",
            vec![
                Column::from_str_vals("city", [Some("ulm"), Some("bonn"), None, Some("ulm")]),
                Column::from_f64("pop", [Some(120.0), Some(330.0), Some(310.0), Some(120.0)]),
                Column::from_i64("zip", [Some(89073), Some(53111), Some(55116), Some(89073)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn report_covers_all_columns() {
        let r = ProfileReport::build(&sample(), &ProfileConfig::default());
        assert_eq!(r.dataset, "cities");
        assert_eq!(r.columns.len(), 3);
        assert_eq!(r.table.n_rows, 4);
        assert_eq!(r.table.missing_cells, 1);
        assert!(r.column("pop").unwrap().numeric.is_some());
        assert!(r.column("city").unwrap().numeric.is_none());
        assert!(r.column("pop").unwrap().histogram.is_some());
    }

    #[test]
    fn missing_fraction_correct() {
        let r = ProfileReport::build(&sample(), &ProfileConfig::default());
        assert!((r.table.missing_fraction - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(r.column("city").unwrap().null_count, 1);
    }

    #[test]
    fn correlations_present_for_numeric_pairs() {
        let r = ProfileReport::build(&sample(), &ProfileConfig::default());
        assert!(r.pearson.get("pop", "zip").is_some());
        assert_eq!(r.pearson.columns.len(), 2);
    }

    #[test]
    fn render_text_mentions_columns_and_alerts() {
        let r = ProfileReport::build(&sample(), &ProfileConfig::default());
        let text = r.render_text();
        assert!(text.contains("city"));
        assert!(text.contains("pop"));
        assert!(text.contains("Data Profile: cities"));
    }

    #[test]
    fn empty_table_profile() {
        let schema = datalens_table::Schema::from_pairs([("x", DataType::Int)]).unwrap();
        let t = Table::empty("empty", &schema);
        let r = ProfileReport::build(&t, &ProfileConfig::default());
        assert_eq!(r.table.n_rows, 0);
        assert_eq!(r.table.missing_fraction, 0.0);
        assert!(r.column("x").unwrap().numeric.is_none());
    }

    #[test]
    fn report_serialises_to_json() {
        let r = ProfileReport::build(&sample(), &ProfileConfig::default());
        // serde round trip through the serde_json used in the delta crate
        // is covered by integration tests; here just check Serialize works
        // through a trivial serializer.
        let as_debug = format!("{r:?}");
        assert!(as_debug.contains("ProfileReport"));
    }
}

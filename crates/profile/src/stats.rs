//! Per-column descriptive statistics.
//!
//! Two computation paths produce the same [`NumericStats`]:
//! [`numeric_stats_of`] over a flat slice, and the chunk-merge path
//! ([`NumericPartial`] per row-group chunk, folded with
//! [`NumericPartial::merge`] in chunk order). For a single-chunk column
//! the two are bit-identical — same accumulation order, same operations
//! — which is what keeps seed-scale profile reports byte-stable across
//! the chunked refactor. Order statistics (min/max/quantiles) and the
//! standardised moments (skewness/kurtosis) are always computed from the
//! full value sequence, so they are chunking-independent by
//! construction; only mean/variance go through the Chan-style merge,
//! whose last-bit rounding can differ from the flat path once a column
//! spans multiple chunks.

use serde::{Deserialize, Serialize};

use datalens_table::{Chunk, Column, DataType};

use crate::cache::ProfileCache;

/// Summary statistics for a numeric column (nulls and non-finite values
/// excluded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericStats {
    /// Number of finite values the statistics are computed over.
    pub count: usize,
    /// NaN/±Inf inputs excluded from every statistic — surfaced instead
    /// of silently poisoning mean/std/quantiles.
    pub non_finite: usize,
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    pub variance: f64,
    pub min: f64,
    pub max: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub iqr: f64,
    pub skewness: f64,
    pub kurtosis: f64,
    pub zeros: usize,
    pub negatives: usize,
    pub sum: f64,
}

/// Compute [`NumericStats`] over the non-null numeric values of a column.
/// Returns `None` when the column has no numeric values.
pub fn numeric_stats(column: &Column) -> Option<NumericStats> {
    let values = column.numeric_values();
    numeric_stats_of(&values)
}

/// Compute [`NumericStats`] over a raw slice. NaN and ±Inf entries are
/// filtered out (and counted in [`NumericStats::non_finite`]) the same
/// way [`crate::Histogram::build`] excludes them — a single NaN used to
/// turn mean/std/quantiles into NaN, and ±Inf pinned min/max. Returns
/// `None` when no finite values remain.
pub fn numeric_stats_of(raw: &[f64]) -> Option<NumericStats> {
    let mut values = Vec::with_capacity(raw.len());
    let mut non_finite = 0usize;
    for &v in raw {
        if v.is_finite() {
            values.push(v);
        } else {
            non_finite += 1;
        }
    }
    let values = &values[..];
    if values.is_empty() {
        return None;
    }
    let n = values.len() as f64;
    let sum: f64 = values.iter().sum();
    let mean = sum / n;
    let m2: f64 = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let std = m2.sqrt();
    let (skewness, kurtosis) = if std > 0.0 {
        let m3: f64 = values
            .iter()
            .map(|v| ((v - mean) / std).powi(3))
            .sum::<f64>()
            / n;
        let m4: f64 = values
            .iter()
            .map(|v| ((v - mean) / std).powi(4))
            .sum::<f64>()
            / n;
        (m3, m4 - 3.0)
    } else {
        (0.0, 0.0)
    };
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q1 = quantile_sorted(&sorted, 0.25);
    let median = quantile_sorted(&sorted, 0.5);
    let q3 = quantile_sorted(&sorted, 0.75);
    Some(NumericStats {
        count: values.len(),
        non_finite,
        mean,
        std,
        variance: m2,
        min: sorted[0],
        max: *sorted.last().expect("nonempty"),
        q1,
        median,
        q3,
        iqr: q3 - q1,
        skewness,
        kurtosis,
        zeros: values.iter().filter(|&&v| v == 0.0).count(),
        negatives: values.iter().filter(|&&v| v < 0.0).count(),
        sum,
    })
}

/// Mergeable partial statistics of one row-group chunk's finite values.
/// `mean`/`m2` combine Chan-style, the additive fields just sum — so a
/// column's moments fold deterministically in chunk order, and an edited
/// chunk invalidates only its own partial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericPartial {
    /// Finite values covered.
    pub count: usize,
    /// NaN/±Inf inputs excluded (and surfaced) like [`numeric_stats_of`].
    pub non_finite: usize,
    pub sum: f64,
    pub mean: f64,
    /// Sum of squared deviations from `mean` (not divided by count).
    pub m2: f64,
    pub min: f64,
    pub max: f64,
    pub zeros: usize,
    pub negatives: usize,
}

impl NumericPartial {
    /// Compute a partial over a raw value slice, filtering (and
    /// counting) non-finite entries exactly like [`numeric_stats_of`] —
    /// same accumulation order, so a single-chunk column's partial
    /// reproduces the flat path bit for bit.
    pub fn of(raw: &[f64]) -> NumericPartial {
        let mut values = Vec::with_capacity(raw.len());
        let mut non_finite = 0usize;
        for &v in raw {
            if v.is_finite() {
                values.push(v);
            } else {
                non_finite += 1;
            }
        }
        if values.is_empty() {
            return NumericPartial {
                count: 0,
                non_finite,
                sum: 0.0,
                mean: 0.0,
                m2: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                zeros: 0,
                negatives: 0,
            };
        }
        let n = values.len() as f64;
        let sum: f64 = values.iter().sum();
        let mean = sum / n;
        let m2: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
        NumericPartial {
            count: values.len(),
            non_finite,
            sum,
            mean,
            m2,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            zeros: values.iter().filter(|&&v| v == 0.0).count(),
            negatives: values.iter().filter(|&&v| v < 0.0).count(),
        }
    }

    /// Compute a partial over one chunk's non-null values. `None` for
    /// string chunks (no numeric view).
    pub fn of_chunk(chunk: &Chunk) -> Option<NumericPartial> {
        if chunk.dtype() == DataType::Str {
            return None;
        }
        let mut values = Vec::with_capacity(chunk.len());
        chunk.numeric_values_into(&mut values);
        Some(NumericPartial::of(&values))
    }

    /// Chan-style pairwise combination: exact for the additive fields,
    /// numerically stable for mean/M2. Merging with an empty partial
    /// returns the other side unchanged (up to summed additive fields),
    /// so folds never divide by zero.
    pub fn merge(&self, other: &NumericPartial) -> NumericPartial {
        let non_finite = self.non_finite + other.non_finite;
        if self.count == 0 {
            return NumericPartial {
                non_finite,
                ..*other
            };
        }
        if other.count == 0 {
            return NumericPartial {
                non_finite,
                ..*self
            };
        }
        let na = self.count as f64;
        let nb = other.count as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        NumericPartial {
            count: self.count + other.count,
            non_finite,
            sum: self.sum + other.sum,
            mean: self.mean + delta * nb / n,
            m2: self.m2 + other.m2 + delta * delta * na * nb / n,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            zeros: self.zeros + other.zeros,
            negatives: self.negatives + other.negatives,
        }
    }
}

/// Compute [`NumericStats`] chunk-wise: per-chunk [`NumericPartial`]s
/// (served from `cache` when warm, keyed by chunk fingerprint) folded in
/// chunk order for the moments, plus one pass over the finite values for
/// the order statistics and standardised moments. Returns `None` for
/// string columns or when no finite values exist.
///
/// For a single-chunk column this is bit-identical to
/// [`numeric_stats`]; for multi-chunk columns only mean/variance/std
/// (and the skew/kurt standardisation they feed) can differ in the last
/// bits through the merge.
pub fn numeric_stats_chunked(
    column: &Column,
    cache: Option<&ProfileCache>,
) -> Option<NumericStats> {
    if column.dtype() == DataType::Str {
        return None;
    }
    let mut merged: Option<NumericPartial> = None;
    let mut finite: Vec<f64> = Vec::new();
    let mut buf: Vec<f64> = Vec::new();
    for chunk in column.chunks() {
        buf.clear();
        chunk.numeric_values_into(&mut buf);
        let partial = match cache {
            Some(cache) => {
                let fp = cache.chunk_fingerprint_of(chunk);
                match cache.get_chunk_partial(fp) {
                    Some(p) => p,
                    None => {
                        let p = NumericPartial::of(&buf);
                        cache.put_chunk_partial(fp, p);
                        p
                    }
                }
            }
            None => NumericPartial::of(&buf),
        };
        merged = Some(match merged {
            Some(m) => m.merge(&partial),
            None => partial,
        });
        finite.extend(buf.iter().copied().filter(|v| v.is_finite()));
    }
    let merged = merged?;
    if merged.count == 0 {
        return None;
    }
    let n = merged.count as f64;
    let mean = merged.mean;
    let variance = merged.m2 / n;
    let std = variance.sqrt();
    let (skewness, kurtosis) = if std > 0.0 {
        let m3: f64 = finite
            .iter()
            .map(|v| ((v - mean) / std).powi(3))
            .sum::<f64>()
            / n;
        let m4: f64 = finite
            .iter()
            .map(|v| ((v - mean) / std).powi(4))
            .sum::<f64>()
            / n;
        (m3, m4 - 3.0)
    } else {
        (0.0, 0.0)
    };
    let mut sorted = finite;
    sorted.sort_by(f64::total_cmp);
    let q1 = quantile_sorted(&sorted, 0.25);
    let median = quantile_sorted(&sorted, 0.5);
    let q3 = quantile_sorted(&sorted, 0.75);
    Some(NumericStats {
        count: merged.count,
        non_finite: merged.non_finite,
        mean,
        std,
        variance,
        min: sorted[0],
        max: *sorted.last().expect("nonempty"),
        q1,
        median,
        q3,
        iqr: q3 - q1,
        skewness,
        kurtosis,
        zeros: merged.zeros,
        negatives: merged.negatives,
        sum: merged.sum,
    })
}

/// Linear-interpolation quantile over an ascending-sorted slice
/// (numpy's default "linear" method).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Summary statistics for a categorical (or any) column based on rendered
/// distinct values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoricalStats {
    pub count: usize,
    pub distinct: usize,
    /// Most frequent values with counts, descending, capped at `top_k`.
    pub top: Vec<(String, usize)>,
    /// Shannon entropy (bits) of the value distribution.
    pub entropy: f64,
    /// Length of the shortest / longest rendered value.
    pub min_length: usize,
    pub max_length: usize,
}

/// Compute categorical stats over non-null values, keeping the `top_k`
/// most frequent.
pub fn categorical_stats(column: &Column, top_k: usize) -> CategoricalStats {
    let counts = column.value_counts();
    let total: usize = counts.iter().map(|(_, c)| c).sum();
    let entropy = if total == 0 {
        0.0
    } else {
        -counts
            .iter()
            .map(|(_, c)| {
                let p = *c as f64 / total as f64;
                p * p.log2()
            })
            .sum::<f64>()
    };
    let lengths: Vec<usize> = counts
        .iter()
        .map(|(v, _)| v.render().chars().count())
        .collect();
    CategoricalStats {
        count: total,
        distinct: counts.len(),
        top: counts
            .iter()
            .take(top_k)
            .map(|(v, c)| (v.render(), *c))
            .collect(),
        entropy,
        min_length: lengths.iter().copied().min().unwrap_or(0),
        max_length: lengths.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    #[test]
    fn numeric_stats_basics() {
        let c = Column::from_f64("x", [Some(1.0), Some(2.0), Some(3.0), Some(4.0), None]);
        let s = numeric_stats(&c).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.q1, 1.75);
        assert_eq!(s.q3, 3.25);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.sum, 10.0);
    }

    #[test]
    fn zeros_negatives_counted() {
        let c = Column::from_i64("x", [Some(0), Some(-1), Some(-2), Some(5)]);
        let s = numeric_stats(&c).unwrap();
        assert_eq!(s.zeros, 1);
        assert_eq!(s.negatives, 2);
    }

    #[test]
    fn constant_column_zero_spread() {
        let c = Column::from_f64("x", [Some(7.0); 5]);
        let s = numeric_stats(&c).unwrap();
        assert_eq!(s.std, 0.0);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.kurtosis, 0.0);
        assert_eq!(s.iqr, 0.0);
    }

    #[test]
    fn skewness_sign_matches_tail() {
        let right_tail: Vec<Option<f64>> =
            vec![Some(1.0), Some(1.0), Some(1.0), Some(1.0), Some(100.0)];
        let s = numeric_stats(&Column::from_f64("x", right_tail)).unwrap();
        assert!(s.skewness > 0.0);
    }

    #[test]
    fn all_null_returns_none() {
        let c = Column::from_f64("x", [None, None]);
        assert!(numeric_stats(&c).is_none());
        let s = Column::from_str_vals("s", [Some("a")]);
        assert!(numeric_stats(&s).is_none());
    }

    #[test]
    fn non_finite_values_excluded_and_counted() {
        // Regression: NaN poisoned mean/std/quantiles, +Inf pinned max
        // and -Inf both pinned min and counted as a "negative".
        let c = Column::from_f64(
            "x",
            [
                Some(1.0),
                Some(f64::NAN),
                Some(3.0),
                Some(f64::INFINITY),
                Some(f64::NEG_INFINITY),
                None,
            ],
        );
        let s = numeric_stats(&c).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.non_finite, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!((s.min, s.max), (1.0, 3.0));
        assert_eq!(s.negatives, 0);
        assert!(s.std.is_finite() && s.median.is_finite());
    }

    #[test]
    fn all_non_finite_returns_none() {
        let c = Column::from_f64("x", [Some(f64::NAN), Some(f64::INFINITY)]);
        assert!(numeric_stats(&c).is_none());
    }

    #[test]
    fn quantile_interpolation() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 40.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 25.0);
        assert!((quantile_sorted(&sorted, 1.0 / 3.0) - 20.0).abs() < 1e-9);
        assert_eq!(quantile_sorted(&[5.0], 0.75), 5.0);
    }

    #[test]
    fn chunked_path_is_bit_identical_for_single_chunk_columns() {
        // Seed-scale columns fit one chunk, where the merge path must
        // reproduce the flat path exactly — every field, every bit.
        let vals: Vec<Option<f64>> = (0..500)
            .map(|i| {
                if i % 11 == 0 {
                    None
                } else if i % 97 == 0 {
                    Some(f64::NAN)
                } else {
                    Some((i as f64 * 0.37).sin() * 50.0 - 10.0)
                }
            })
            .collect();
        let c = Column::from_f64("x", vals);
        assert_eq!(c.chunks().len(), 1);
        let flat = numeric_stats(&c).unwrap();
        let chunked = numeric_stats_chunked(&c, None).unwrap();
        assert_eq!(
            serde_json::to_string(&flat).unwrap(),
            serde_json::to_string(&chunked).unwrap()
        );
    }

    #[test]
    fn merged_partials_agree_with_flat_stats_across_chunks() {
        let vals: Vec<Option<f64>> = (0..300)
            .map(|i| {
                if i % 13 == 0 {
                    None
                } else {
                    Some(i as f64 * 1.5 - 30.0)
                }
            })
            .collect();
        let c = Column::from_f64("x", vals).rechunk(37);
        assert!(c.chunks().len() > 1);
        let flat = numeric_stats(&c).unwrap();
        let chunked = numeric_stats_chunked(&c, None).unwrap();
        // Exact: counts, order statistics, additive tallies.
        assert_eq!(flat.count, chunked.count);
        assert_eq!(flat.non_finite, chunked.non_finite);
        assert_eq!((flat.min, flat.max), (chunked.min, chunked.max));
        assert_eq!(flat.median, chunked.median);
        assert_eq!(
            (flat.zeros, flat.negatives),
            (chunked.zeros, chunked.negatives)
        );
        // Merge-folded moments: equal up to last-bit rounding.
        assert!((flat.mean - chunked.mean).abs() <= 1e-9 * flat.mean.abs().max(1.0));
        assert!((flat.variance - chunked.variance).abs() <= 1e-9 * flat.variance.max(1.0));
        assert!((flat.skewness - chunked.skewness).abs() <= 1e-9);
    }

    #[test]
    fn partial_merge_handles_empty_sides() {
        let empty = NumericPartial::of(&[]);
        let vals = NumericPartial::of(&[1.0, 2.0, 3.0]);
        assert_eq!(empty.merge(&vals), vals);
        assert_eq!(vals.merge(&empty), vals);
        let nan_only = NumericPartial::of(&[f64::NAN]);
        let merged = nan_only.merge(&vals);
        assert_eq!(merged.count, 3);
        assert_eq!(merged.non_finite, 1);
        assert_eq!(merged.mean, 2.0);
    }

    #[test]
    fn partial_merge_is_chan_exact_on_balanced_halves() {
        let all: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let a = NumericPartial::of(&all[..32]);
        let b = NumericPartial::of(&all[32..]);
        let merged = a.merge(&b);
        let flat = NumericPartial::of(&all);
        assert_eq!(merged.count, flat.count);
        assert_eq!(merged.sum, flat.sum);
        assert_eq!(merged.mean, flat.mean);
        assert!((merged.m2 - flat.m2).abs() < 1e-9);
        assert_eq!((merged.min, merged.max), (flat.min, flat.max));
    }

    #[test]
    fn of_chunk_skips_string_chunks() {
        let s = Column::from_str_vals("s", [Some("a"), Some("b")]);
        assert!(NumericPartial::of_chunk(&s.chunks()[0]).is_none());
        let i = Column::from_i64("i", [Some(1), None, Some(3)]);
        let p = NumericPartial::of_chunk(&i.chunks()[0]).unwrap();
        assert_eq!(p.count, 2);
        assert_eq!(p.sum, 4.0);
    }

    #[test]
    fn categorical_stats_top_and_entropy() {
        let c = Column::from_str_vals(
            "s",
            [Some("a"), Some("a"), Some("b"), Some("a"), Some("c"), None],
        );
        let s = categorical_stats(&c, 2);
        assert_eq!(s.count, 5);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.top[0], ("a".to_string(), 3));
        assert_eq!(s.top.len(), 2);
        assert!(s.entropy > 0.0);
        assert_eq!(s.min_length, 1);
        assert_eq!(s.max_length, 1);
    }

    #[test]
    fn uniform_distribution_has_max_entropy() {
        let uniform = Column::from_str_vals("s", [Some("a"), Some("b"), Some("c"), Some("d")]);
        let skewed = Column::from_str_vals("s", [Some("a"), Some("a"), Some("a"), Some("b")]);
        assert!(categorical_stats(&uniform, 5).entropy > categorical_stats(&skewed, 5).entropy);
        assert!((categorical_stats(&uniform, 5).entropy - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_categorical_zero_entropy() {
        let c = Column::from_str_vals("s", [Some("only"), Some("only")]);
        assert_eq!(categorical_stats(&c, 5).entropy, 0.0);
    }
}

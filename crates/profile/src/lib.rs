//! # datalens-profile
//!
//! Automated data profiling — the reproduction's stand-in for the
//! ydata-profiling library the paper integrates (§3 "Automated Data
//! Profiling"). Produces the content of the dashboard's "Data Profile"
//! tab: descriptive statistics, per-column distributions, correlation
//! matrices (Pearson / Spearman / Cramér's V), missing-data analysis, and
//! flagged data-quality alerts.
//!
//! ```
//! use datalens_profile::{ProfileConfig, ProfileReport};
//! use datalens_table::{Column, Table};
//!
//! let t = Table::new("demo", vec![
//!     Column::from_f64("x", [Some(1.0), Some(2.0), None]),
//! ]).unwrap();
//! let report = ProfileReport::build(&t, &ProfileConfig::default());
//! assert_eq!(report.table.missing_cells, 1);
//! ```

pub mod alerts;
pub mod approx;
pub mod cache;
pub mod correlation;
pub mod histogram;
pub mod report;
pub mod stats;

pub use alerts::{Alert, AlertConfig, AlertKind};
pub use approx::{ApproxColumnProfile, ProfileMode, SketchParams};
pub use cache::{CacheStats, ProfileCache};
pub use correlation::{CorrelationKind, CorrelationMatrix};
pub use histogram::Histogram;
pub use report::{BuildOptions, ColumnProfile, ProfileConfig, ProfileReport, TableStats};
pub use stats::{CategoricalStats, NumericStats};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use datalens_table::{Column, Table};

    use crate::cache::ProfileCache;
    use crate::histogram::Histogram;
    use crate::report::{BuildOptions, ProfileConfig, ProfileReport};
    use crate::stats::{numeric_stats_of, quantile_sorted};

    proptest! {
        /// A parallel build — cold cache, then warm — serialises to the
        /// exact bytes of a sequential uncached build, on arbitrary
        /// small tables (NaN correlation entries print as `null`, so
        /// byte equality covers the undefined cells too).
        #[test]
        fn build_is_deterministic_across_threads_and_cache(
            ints in proptest::collection::vec(proptest::option::of(-100i64..100), 1..20),
            floats in proptest::collection::vec(proptest::option::of(-1e3f64..1e3), 1..20),
            strs in proptest::collection::vec(proptest::option::of("[a-c]{1,2}"), 1..20),
        ) {
            let n = ints.len().min(floats.len()).min(strs.len());
            let t = Table::new(
                "p",
                vec![
                    Column::from_i64("i", ints.into_iter().take(n)),
                    Column::from_f64("f", floats.into_iter().take(n)),
                    Column::from_str_vals("s", strs.into_iter().take(n)),
                ],
            )
            .unwrap();
            let config = ProfileConfig::default();
            let cold = serde_json::to_string(&ProfileReport::build(&t, &config)).unwrap();
            let cache = ProfileCache::new();
            let opts = BuildOptions { threads: 4, cache: Some(&cache) };
            let first = serde_json::to_string(&ProfileReport::build_with(&t, &config, &opts)).unwrap();
            let warm = serde_json::to_string(&ProfileReport::build_with(&t, &config, &opts)).unwrap();
            prop_assert_eq!(&cold, &first);
            prop_assert_eq!(&cold, &warm);
            // The warm build answered entirely from the cache.
            let stats = cache.stats();
            prop_assert_eq!(stats.column_hits, 3);
        }
        /// Histogram counts always sum to the input size and every count
        /// lands within the data range.
        #[test]
        fn histogram_conserves_mass(
            values in proptest::collection::vec(-1e4f64..1e4, 1..200),
            bins in 1usize..30,
        ) {
            let h = Histogram::build(&values, bins).unwrap();
            prop_assert_eq!(h.total(), values.len());
            prop_assert!(h.edges.windows(2).all(|w| w[0] <= w[1]));
        }

        /// Quantiles are monotone in q and bounded by min/max.
        #[test]
        fn quantiles_monotone(
            mut values in proptest::collection::vec(-1e4f64..1e4, 1..100),
        ) {
            values.sort_by(f64::total_cmp);
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
            let mut prev = f64::NEG_INFINITY;
            for &q in &qs {
                let v = quantile_sorted(&values, q);
                prop_assert!(v >= prev);
                prop_assert!(v >= values[0] && v <= *values.last().unwrap());
                prev = v;
            }
        }

        /// Numeric summary invariants: min ≤ q1 ≤ median ≤ q3 ≤ max, the
        /// mean lies within [min, max], and variance = std².
        #[test]
        fn stats_invariants(
            values in proptest::collection::vec(-1e4f64..1e4, 1..100),
        ) {
            let s = numeric_stats_of(&values).unwrap();
            prop_assert!(s.min <= s.q1 && s.q1 <= s.median);
            prop_assert!(s.median <= s.q3 && s.q3 <= s.max);
            prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!((s.variance - s.std * s.std).abs() < 1e-6 * s.variance.max(1.0));
        }
    }
}

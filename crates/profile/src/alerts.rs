//! Data-quality alerts, mirroring ydata-profiling's "warnings" panel: the
//! automatically flagged potential quality issues the paper says the
//! profile report surfaces.

use serde::{Deserialize, Serialize};

use datalens_table::{DataType, Table};

use crate::correlation::{correlation_matrix, CorrelationKind, CorrelationMatrix};
use crate::report::{compute_column_profile, ColumnProfile, ProfileConfig};
use crate::stats::categorical_stats;

/// One flagged issue about a column (or the whole table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    pub kind: AlertKind,
    /// Affected column, or `None` for table-level alerts.
    pub column: Option<String>,
    /// Human-readable explanation with the triggering numbers.
    pub message: String,
}

/// Category of a quality alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertKind {
    /// Column has a single distinct value.
    Constant,
    /// Column is entirely null.
    AllMissing,
    /// Null fraction exceeds the threshold.
    HighMissing,
    /// Distinct count ≈ row count on a string column.
    HighCardinality,
    /// |skewness| exceeds the threshold.
    Skewed,
    /// Column contains many zeros.
    ManyZeros,
    /// Two numeric columns are highly correlated.
    HighCorrelation,
    /// Table contains duplicate rows.
    DuplicateRows,
    /// A numeric column has a suspiciously heavy single value
    /// (possible disguised missing value sentinel).
    DominantValue,
}

/// Thresholds for the alert engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlertConfig {
    pub high_missing_fraction: f64,
    pub high_cardinality_fraction: f64,
    pub skew_threshold: f64,
    pub zeros_fraction: f64,
    pub correlation_threshold: f64,
    pub dominant_value_fraction: f64,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            high_missing_fraction: 0.2,
            high_cardinality_fraction: 0.9,
            skew_threshold: 2.0,
            zeros_fraction: 0.5,
            correlation_threshold: 0.95,
            dominant_value_fraction: 0.6,
        }
    }
}

/// Scan `table` and emit every triggered alert (deterministic order:
/// table-level first, then per column in schema order).
pub fn scan(table: &Table, config: &AlertConfig) -> Vec<Alert> {
    let n_rows = table.n_rows();
    // Only the pieces the rules read: top-1 frequencies, no histogram.
    let cfg = ProfileConfig {
        histogram_bins: 0,
        top_k: 1,
        alerts: config.clone(),
        ..ProfileConfig::default()
    };
    let columns: Vec<ColumnProfile> = table
        .columns()
        .iter()
        .map(|c| compute_column_profile(c, n_rows, &cfg, None))
        .collect();
    let pearson = correlation_matrix(table, CorrelationKind::Pearson);
    scan_with(
        table,
        config,
        &columns,
        &pearson,
        table.duplicate_rows().len(),
    )
}

/// The alert rules, evaluated over already-computed per-column profiles
/// and a Pearson matrix — [`crate::ProfileReport::build_with`] calls
/// this so the alert pass adds no recomputation on top of the profile.
pub(crate) fn scan_with(
    table: &Table,
    config: &AlertConfig,
    columns: &[ColumnProfile],
    pearson: &CorrelationMatrix,
    duplicate_rows: usize,
) -> Vec<Alert> {
    let mut alerts = Vec::new();
    let rows = table.n_rows();

    if duplicate_rows > 0 {
        alerts.push(Alert {
            kind: AlertKind::DuplicateRows,
            column: None,
            message: format!("{duplicate_rows} duplicate rows out of {rows}"),
        });
    }

    for (col, profile) in table.columns().iter().zip(columns) {
        let name = profile.name.clone();
        let nulls = profile.null_count;
        if rows > 0 && nulls == rows {
            alerts.push(Alert {
                kind: AlertKind::AllMissing,
                column: Some(name.clone()),
                message: "all values missing".into(),
            });
            continue;
        }
        if rows > 0 {
            let frac = nulls as f64 / rows as f64;
            if frac >= config.high_missing_fraction && nulls > 0 {
                alerts.push(Alert {
                    kind: AlertKind::HighMissing,
                    column: Some(name.clone()),
                    message: format!("{:.1}% missing ({nulls}/{rows})", frac * 100.0),
                });
            }
        }

        let cat = &profile.categorical;
        // The profile was built with the caller's `top_k`; recover the
        // top-1 entry if it was configured away.
        let top = if cat.top.is_empty() && cat.distinct > 0 {
            categorical_stats(col, 1).top
        } else {
            cat.top.clone()
        };
        if cat.distinct == 1 && cat.count > 1 {
            if let Some((top_val, _)) = top.first() {
                alerts.push(Alert {
                    kind: AlertKind::Constant,
                    column: Some(name.clone()),
                    message: format!("constant value {top_val:?}"),
                });
            }
        }
        if col.dtype() == DataType::Str
            && cat.count > 10
            && cat.distinct as f64 >= config.high_cardinality_fraction * cat.count as f64
        {
            alerts.push(Alert {
                kind: AlertKind::HighCardinality,
                column: Some(name.clone()),
                message: format!("{} distinct of {} values", cat.distinct, cat.count),
            });
        }
        if cat.distinct > 1 {
            if let Some((top_val, top_count)) = top.first() {
                let frac = *top_count as f64 / cat.count.max(1) as f64;
                if frac >= config.dominant_value_fraction && col.dtype().is_numeric() {
                    alerts.push(Alert {
                        kind: AlertKind::DominantValue,
                        column: Some(name.clone()),
                        message: format!(
                            "value {top_val:?} accounts for {:.1}% of entries (possible sentinel)",
                            frac * 100.0
                        ),
                    });
                }
            }
        }

        if let Some(stats) = &profile.numeric {
            if stats.skewness.abs() >= config.skew_threshold && stats.count > 2 {
                alerts.push(Alert {
                    kind: AlertKind::Skewed,
                    column: Some(name.clone()),
                    message: format!("skewness {:.2}", stats.skewness),
                });
            }
            if stats.count > 0 {
                let zfrac = stats.zeros as f64 / stats.count as f64;
                if zfrac >= config.zeros_fraction && stats.zeros > 0 && cat.distinct > 1 {
                    alerts.push(Alert {
                        kind: AlertKind::ManyZeros,
                        column: Some(name.clone()),
                        message: format!("{:.1}% zeros", zfrac * 100.0),
                    });
                }
            }
        }
    }

    // Cross-column: high pairwise Pearson correlation.
    for i in 0..pearson.columns.len() {
        for j in (i + 1)..pearson.columns.len() {
            let v = pearson.values[i][j];
            if v.is_finite() && v.abs() >= config.correlation_threshold {
                alerts.push(Alert {
                    kind: AlertKind::HighCorrelation,
                    column: Some(pearson.columns[i].clone()),
                    message: format!(
                        "highly correlated with {:?} (r = {v:.3})",
                        pearson.columns[j]
                    ),
                });
            }
        }
    }

    alerts
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalens_table::Column;

    fn has(alerts: &[Alert], kind: AlertKind, column: Option<&str>) -> bool {
        alerts
            .iter()
            .any(|a| a.kind == kind && a.column.as_deref() == column)
    }

    #[test]
    fn flags_constant_and_all_missing() {
        let t = Table::new(
            "t",
            vec![
                Column::from_str_vals("const", [Some("x"), Some("x"), Some("x")]),
                Column::from_f64("gone", [None, None, None]),
                Column::from_i64("ok", [Some(1), Some(2), Some(3)]),
            ],
        )
        .unwrap();
        let alerts = scan(&t, &AlertConfig::default());
        assert!(has(&alerts, AlertKind::Constant, Some("const")));
        assert!(has(&alerts, AlertKind::AllMissing, Some("gone")));
        assert!(!has(&alerts, AlertKind::Constant, Some("ok")));
    }

    #[test]
    fn flags_high_missing() {
        let t = Table::new(
            "t",
            vec![Column::from_i64("m", [Some(1), None, None, Some(4)])],
        )
        .unwrap();
        let alerts = scan(&t, &AlertConfig::default());
        assert!(has(&alerts, AlertKind::HighMissing, Some("m")));
    }

    #[test]
    fn flags_duplicates() {
        let t = Table::new(
            "t",
            vec![Column::from_i64("x", [Some(1), Some(1), Some(2)])],
        )
        .unwrap();
        let alerts = scan(&t, &AlertConfig::default());
        assert!(has(&alerts, AlertKind::DuplicateRows, None));
    }

    #[test]
    fn flags_high_cardinality_strings() {
        let vals: Vec<Option<String>> = (0..20).map(|i| Some(format!("id_{i}"))).collect();
        let t = Table::new("t", vec![Column::from_str_vals("id", vals)]).unwrap();
        let alerts = scan(&t, &AlertConfig::default());
        assert!(has(&alerts, AlertKind::HighCardinality, Some("id")));
    }

    #[test]
    fn flags_high_correlation_pair() {
        let a: Vec<Option<f64>> = (0..30).map(|i| Some(i as f64)).collect();
        let b: Vec<Option<f64>> = (0..30).map(|i| Some(i as f64 * 2.0 + 1.0)).collect();
        let t = Table::new(
            "t",
            vec![Column::from_f64("a", a), Column::from_f64("b", b)],
        )
        .unwrap();
        let alerts = scan(&t, &AlertConfig::default());
        assert!(has(&alerts, AlertKind::HighCorrelation, Some("a")));
    }

    #[test]
    fn flags_sentinel_dominant_value() {
        let mut vals: Vec<Option<i64>> = vec![Some(-999); 8];
        vals.extend([Some(1), Some(2), Some(3)]);
        let t = Table::new("t", vec![Column::from_i64("v", vals)]).unwrap();
        let alerts = scan(&t, &AlertConfig::default());
        assert!(has(&alerts, AlertKind::DominantValue, Some("v")));
    }

    #[test]
    fn clean_table_minimal_alerts() {
        let t = Table::new(
            "t",
            vec![
                Column::from_f64("a", (0..20).map(|i| Some(i as f64)).collect::<Vec<_>>()),
                Column::from_str_vals(
                    "c",
                    (0..20)
                        .map(|i| Some(["x", "y", "z"][i % 3]))
                        .collect::<Vec<_>>(),
                ),
            ],
        )
        .unwrap();
        let alerts = scan(&t, &AlertConfig::default());
        assert!(alerts.is_empty(), "unexpected alerts: {alerts:?}");
    }
}

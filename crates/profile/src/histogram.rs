//! Histograms for the Data Profile tab's distribution panels.

use serde::{Deserialize, Serialize};

/// An equal-width histogram over numeric values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bin edges, length `bins + 1`, ascending.
    pub edges: Vec<f64>,
    /// Counts per bin, length `bins`.
    pub counts: Vec<usize>,
    /// NaN/±Inf inputs excluded from the bins — surfaced so the profile
    /// tab can alert instead of silently mis-plotting.
    pub non_finite_count: usize,
}

impl Histogram {
    /// Build a histogram with `bins` equal-width bins spanning the data
    /// range. The final bin is closed on both sides (max lands in it).
    /// Non-finite values are excluded from the bins and reported via
    /// [`Histogram::non_finite_count`] — the float-to-bin cast used to
    /// dump NaNs into bin 0, and a single ±Inf stretched the edges so
    /// every finite value collapsed into one bin. Returns `None` on
    /// empty (or all-non-finite) input; constant data yields a single
    /// bin.
    pub fn build(values: &[f64], bins: usize) -> Option<Histogram> {
        if bins == 0 {
            return None;
        }
        let non_finite_count = values.iter().filter(|v| !v.is_finite()).count();
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if min == max {
            return Some(Histogram {
                edges: vec![min, max],
                counts: vec![finite.len()],
                non_finite_count,
            });
        }
        let width = (max - min) / bins as f64;
        let edges: Vec<f64> = (0..=bins).map(|i| min + width * i as f64).collect();
        let mut counts = vec![0usize; bins];
        for &v in &finite {
            let mut bin = ((v - min) / width) as usize;
            if bin >= bins {
                bin = bins - 1;
            }
            counts[bin] += 1;
        }
        Some(Histogram {
            edges,
            counts,
            non_finite_count,
        })
    }

    pub fn n_bins(&self) -> usize {
        self.counts.len()
    }

    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Render an ASCII bar chart (one line per bin), for the text dashboard.
    pub fn render_ascii(&self, max_width: usize) -> String {
        let max_count = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c * max_width).div_ceil(max_count).min(max_width));
            out.push_str(&format!(
                "[{:>10.3}, {:>10.3}{} {:<w$} {}\n",
                self.edges[i],
                self.edges[i + 1],
                if i + 1 == self.counts.len() { "]" } else { ")" },
                bar,
                c,
                w = max_width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fill() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 10).unwrap();
        assert_eq!(h.n_bins(), 10);
        assert_eq!(h.total(), 100);
        assert!(h.counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let h = Histogram::build(&[0.0, 10.0], 5).unwrap();
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.counts[0], 1);
    }

    #[test]
    fn constant_data_single_bin() {
        let h = Histogram::build(&[3.0, 3.0, 3.0], 10).unwrap();
        assert_eq!(h.n_bins(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn empty_or_zero_bins_is_none() {
        assert!(Histogram::build(&[], 10).is_none());
        assert!(Histogram::build(&[1.0], 0).is_none());
    }

    #[test]
    fn ascii_render_contains_bars() {
        let h = Histogram::build(&[1.0, 1.0, 1.0, 5.0], 2).unwrap();
        let text = h.render_ascii(20);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains('#'));
    }

    #[test]
    fn nans_are_excluded_and_counted() {
        // Regression: NaN used to land in bin 0 via the float-to-usize
        // cast, silently skewing the lowest bin.
        let h = Histogram::build(&[f64::NAN, 0.0, 10.0, f64::NAN, 10.0], 2).unwrap();
        assert_eq!(h.non_finite_count, 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts, vec![1, 2]);
        let clean = Histogram::build(&[1.0, 2.0], 2).unwrap();
        assert_eq!(clean.non_finite_count, 0);
    }

    #[test]
    fn all_nan_input_is_none() {
        assert!(Histogram::build(&[f64::NAN, f64::NAN], 4).is_none());
        assert!(Histogram::build(&[f64::INFINITY, f64::NEG_INFINITY], 4).is_none());
    }

    #[test]
    fn non_finite_does_not_poison_edges() {
        // With NaN present, min/max must come from the finite values.
        let h = Histogram::build(&[f64::NAN, 2.0, 6.0], 2).unwrap();
        assert_eq!(h.edges.first().copied(), Some(2.0));
        assert_eq!(h.edges.last().copied(), Some(6.0));
        // ±Inf used to stretch the range so every finite value fell
        // into a single bin (and the float-to-bin cast misfiled ±Inf).
        let h = Histogram::build(&[f64::INFINITY, f64::NEG_INFINITY, 2.0, 6.0], 2).unwrap();
        assert_eq!(h.non_finite_count, 2);
        assert_eq!(h.edges.first().copied(), Some(2.0));
        assert_eq!(h.edges.last().copied(), Some(6.0));
        assert_eq!(h.counts, vec![1, 1]);
    }
}

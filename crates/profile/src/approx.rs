//! Approximate profiling: the bounded-memory `ProfileReport` backend.
//!
//! Instead of exact O(rows)-memory statistics, each column is summarised
//! by a [`ColumnSketch`] (HLL distinct, KLL quantiles, space-saving
//! top-k, deterministic sample, exact streaming moments) built **per
//! row-group chunk** in the same chunk-fold shape as
//! [`crate::stats::numeric_stats_chunked`], memoised in the
//! [`ProfileCache`] beside the numeric partials, and merged in chunk
//! order — so editing one chunk re-sketches only that chunk and the
//! report is bit-identical at any thread count, cold or warm cache.
//!
//! Error bounds (documented and property-tested in `datalens-sketch`):
//! distinct counts within ±1.6 % RSE (precision 12), quantiles within
//! ~1 % rank error (k = 200), top-k counts over-reported by at most
//! `n / 64`. Moments (mean/std/skew/kurtosis) are exact up to
//! floating-point rounding; min/max are exact.

use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;

use serde::{Deserialize, Error as SerdeError, JsonValue, Serialize};

use datalens_table::chunk::RawRef;
use datalens_table::{Chunk, Column, DataType, Value};

pub use datalens_sketch::SketchParams;
use datalens_sketch::{column_seed, ColumnSketch};

use crate::cache::ProfileCache;
use crate::histogram::Histogram;
use crate::report::{ColumnProfile, ProfileConfig};
use crate::stats::{CategoricalStats, NumericStats};

/// Which backend computes per-column statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProfileMode {
    /// Exact statistics: O(rows) time and memory per column.
    #[default]
    Exact,
    /// Sketched statistics: one bounded-memory pass; see the module docs
    /// for the error bounds.
    Approx,
}

impl ProfileMode {
    pub fn as_str(self) -> &'static str {
        match self {
            ProfileMode::Exact => "exact",
            ProfileMode::Approx => "approx",
        }
    }
}

impl fmt::Display for ProfileMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ProfileMode {
    type Err = String;

    fn from_str(s: &str) -> Result<ProfileMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "exact" => Ok(ProfileMode::Exact),
            "approx" | "approximate" | "sketch" => Ok(ProfileMode::Approx),
            other => Err(format!("unknown profile mode {other:?} (exact|approx)")),
        }
    }
}

impl Serialize for ProfileMode {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.as_str().to_string())
    }
}

impl Deserialize for ProfileMode {
    fn from_json_value(v: &JsonValue) -> Result<ProfileMode, SerdeError> {
        match v {
            JsonValue::Str(s) => ProfileMode::from_str(s).map_err(SerdeError::new),
            other => Err(SerdeError::new(format!(
                "expected profile mode string, got {}",
                other.kind_name()
            ))),
        }
    }
}

/// The approximation metadata attached to a [`ColumnProfile`] built in
/// [`ProfileMode::Approx`] — the estimate *and* its documented bound, so
/// consumers can render `distinct ≈ N ± B` honestly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproxColumnProfile {
    /// Raw HLL distinct estimate (before rounding into `distinct`).
    pub distinct_est: f64,
    /// Absolute ± bound on `distinct_est` at ~95 % confidence
    /// (two relative standard errors).
    pub distinct_bound: f64,
    /// Documented normalized rank-error bound of the quantile estimates.
    pub quantile_rank_eps: f64,
    /// Maximum over-report of any `top` count (`n / capacity`).
    pub top_max_overcount: u64,
    /// Deterministic pseudo-uniform value sample (bottom-k by hash).
    pub sample: Vec<String>,
    /// Resident bytes of this column's merged sketch bundle.
    pub sketch_bytes: u64,
}

/// Build one chunk's sketch bundle: nulls feed the null tally, values
/// feed the categorical sketches via the same rendering the exact
/// profiler's `top` listing uses, numeric values additionally feed
/// KLL + moments.
pub(crate) fn sketch_chunk(chunk: &Chunk, params: SketchParams, seed: u64) -> ColumnSketch {
    let mut sketch = ColumnSketch::new(params, seed);
    let mut buf = String::new();
    for row in 0..chunk.len() {
        match chunk.raw_at(row) {
            RawRef::Null => sketch.push_null(),
            RawRef::Str(s) => sketch.push_rendered(s),
            RawRef::Int(v) => {
                buf.clear();
                let _ = write!(buf, "{v}");
                sketch.push_numeric(&buf, v as f64);
            }
            RawRef::Bool(b) => {
                sketch.push_numeric(if b { "true" } else { "false" }, f64::from(b));
            }
            RawRef::Float(v) => {
                // Render through Value so floats match the exact
                // profiler's formatting ("1.0", not "1").
                sketch.push_numeric(&Value::Float(v).render(), v);
            }
        }
    }
    sketch
}

/// Fold a column's per-chunk sketches (served from `cache` when warm,
/// keyed by chunk content fingerprint + params/seed fingerprint) in
/// chunk order into one merged [`ColumnSketch`].
pub(crate) fn fold_column_sketch(
    column: &Column,
    params: SketchParams,
    cache: Option<&ProfileCache>,
) -> ColumnSketch {
    let seed = column_seed(column.name());
    let params_fp = params.fingerprint(seed);
    let mut merged = ColumnSketch::new(params, seed);
    let mut merges = 0u64;
    for chunk in column.chunks() {
        let sketch = match cache {
            Some(cache) => {
                let fp = cache.chunk_fingerprint_of(chunk);
                match cache.get_chunk_sketch(fp, params_fp) {
                    Some(s) => s,
                    None => {
                        let s = sketch_chunk(chunk, params, seed);
                        cache.put_chunk_sketch(fp, params_fp, &s);
                        s
                    }
                }
            }
            None => sketch_chunk(chunk, params, seed),
        };
        merged.merge(&sketch);
        merges += 1;
    }
    if let Some(cache) = cache {
        cache.note_sketch_merges(merges);
    }
    merged
}

/// The approximate equivalent of
/// [`crate::report::compute_column_profile`]: one bounded-memory pass
/// per chunk, everything else derived from the merged sketch bundle.
pub(crate) fn approx_column_profile(
    column: &Column,
    n_rows: usize,
    config: &ProfileConfig,
    cache: Option<&ProfileCache>,
) -> ColumnProfile {
    let sketch = fold_column_sketch(column, config.sketch, cache);
    let moments = sketch.moments();
    let is_numeric = column.dtype() != DataType::Str;

    let numeric = if is_numeric && moments.count() > 0 {
        let kll = sketch.kll();
        let q1 = kll.quantile(0.25).unwrap_or(moments.min());
        let median = kll.quantile(0.5).unwrap_or(moments.min());
        let q3 = kll.quantile(0.75).unwrap_or(moments.max());
        Some(NumericStats {
            count: moments.count() as usize,
            non_finite: moments.non_finite() as usize,
            mean: moments.mean(),
            std: moments.std(),
            variance: moments.variance(),
            min: moments.min(),
            max: moments.max(),
            q1,
            median,
            q3,
            iqr: q3 - q1,
            skewness: moments.skewness(),
            kurtosis: moments.kurtosis(),
            zeros: moments.zeros() as usize,
            negatives: moments.negatives() as usize,
            sum: moments.sum(),
        })
    } else {
        None
    };

    let histogram = if config.histogram_bins == 0 || numeric.is_none() {
        None
    } else {
        histogram_from_sketch(&sketch, config.histogram_bins)
    };

    let distinct_est = sketch.distinct_estimate();
    let distinct = distinct_est.round() as usize;
    let top: Vec<(String, usize)> = sketch
        .topk()
        .top(config.top_k)
        .into_iter()
        .map(|(v, c)| (v, c as usize))
        .collect();
    let (min_length, max_length) = sketch
        .length_range()
        .map(|(lo, hi)| (lo as usize, hi as usize))
        .unwrap_or((0, 0));
    let categorical = CategoricalStats {
        count: sketch.values() as usize,
        distinct,
        top,
        entropy: entropy_estimate(&sketch),
        min_length,
        max_length,
    };

    let approx = ApproxColumnProfile {
        distinct_est,
        distinct_bound: distinct_est * 2.0 * sketch.hll().relative_standard_error(),
        quantile_rank_eps: sketch.kll().rank_error_bound(),
        top_max_overcount: sketch.topk().max_overcount(),
        sample: sketch.reservoir().values(),
        sketch_bytes: sketch.resident_bytes() as u64,
    };

    ColumnProfile {
        name: column.name().to_string(),
        dtype: column.dtype(),
        null_count: sketch.nulls() as usize,
        null_fraction: if n_rows == 0 {
            0.0
        } else {
            sketch.nulls() as f64 / n_rows as f64
        },
        distinct,
        numeric,
        categorical,
        histogram,
        approx: Some(approx),
    }
}

/// Shannon entropy (bits) estimated from the space-saving counters: the
/// tracked values' probabilities, with the untracked remainder spread
/// uniformly over the estimated remaining distinct values. Exact when
/// the column has fewer distinct values than the sketch capacity.
fn entropy_estimate(sketch: &ColumnSketch) -> f64 {
    let total = sketch.topk().count();
    if total == 0 {
        return 0.0;
    }
    let mut entropy = 0.0f64;
    let mut tracked_count = 0u64;
    let mut tracked_values = 0usize;
    for (_, e) in sketch.topk().entries() {
        // Use the lower bound (count − overcount) for the per-value mass
        // so churned-through rare values do not masquerade as heavy.
        let c = e.count - e.overcount;
        if c > 0 {
            let p = c as f64 / total as f64;
            entropy -= p * p.log2();
        }
        tracked_count += c;
        tracked_values += 1;
    }
    let rest_mass = total.saturating_sub(tracked_count) as f64 / total as f64;
    let rest_distinct = (sketch.distinct_estimate() - tracked_values as f64).max(0.0);
    if rest_mass > 0.0 && rest_distinct >= 1.0 {
        // Uniform spread over the remaining distinct values.
        let p = rest_mass / rest_distinct;
        entropy -= rest_distinct * p * p.log2();
    }
    entropy.max(0.0)
}

/// Reconstruct an equal-width histogram from the KLL CDF between the
/// exact min and max: bin counts are differences of rounded cumulative
/// ranks, so they are non-negative and sum exactly to the value count.
fn histogram_from_sketch(sketch: &ColumnSketch, bins: usize) -> Option<Histogram> {
    let moments = sketch.moments();
    let n = moments.count();
    if n == 0 || bins == 0 {
        return None;
    }
    let (min, max) = (moments.min(), moments.max());
    let non_finite_count = moments.non_finite() as usize;
    if min == max {
        return Some(Histogram {
            edges: vec![min, max],
            counts: vec![n as usize],
            non_finite_count,
        });
    }
    let kll = sketch.kll();
    let width = (max - min) / bins as f64;
    let edges: Vec<f64> = (0..=bins)
        .map(|i| {
            if i == bins {
                max
            } else {
                min + width * i as f64
            }
        })
        .collect();
    // Cumulative counts at each interior edge from the sketch CDF; the
    // outer edges are pinned to 0 and n so the counts always total n.
    let mut cum: Vec<u64> = Vec::with_capacity(bins + 1);
    cum.push(0);
    for edge in edges.iter().take(bins).skip(1) {
        let c = (kll.rank(*edge) * n as f64).round() as u64;
        let floor = *cum.last().unwrap_or(&0);
        cum.push(c.clamp(floor, n));
    }
    cum.push(n);
    let counts: Vec<usize> = cum.windows(2).map(|w| (w[1] - w[0]) as usize).collect();
    Some(Histogram {
        edges,
        counts,
        non_finite_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BuildOptions, ProfileReport};
    use datalens_table::Table;

    fn table() -> Table {
        let n = 600;
        Table::new(
            "approx-t",
            vec![
                Column::from_i64("id", (0..n).map(Some)),
                Column::from_f64(
                    "metric",
                    (0..n).map(|i| {
                        if i % 13 == 0 {
                            None
                        } else {
                            Some((i % 50) as f64 * 0.5)
                        }
                    }),
                ),
                Column::from_str_vals(
                    "cat",
                    (0..n).map(|i| Some(["red", "green", "blue"][(i % 3) as usize])),
                ),
            ],
        )
        .unwrap()
    }

    fn approx_config() -> ProfileConfig {
        ProfileConfig {
            mode: ProfileMode::Approx,
            ..ProfileConfig::default()
        }
    }

    #[test]
    fn mode_round_trips_through_serde_and_str() {
        for mode in [ProfileMode::Exact, ProfileMode::Approx] {
            let json = serde_json::to_string(&mode).unwrap();
            let back: ProfileMode = serde_json::from_str(&json).unwrap();
            assert_eq!(back, mode);
            assert_eq!(mode.as_str().parse::<ProfileMode>().unwrap(), mode);
        }
        assert_eq!(
            serde_json::to_string(&ProfileMode::Approx).unwrap(),
            "\"approx\""
        );
        assert!("bogus".parse::<ProfileMode>().is_err());
    }

    #[test]
    fn approx_report_estimates_are_close_to_exact() {
        let t = table();
        let exact = ProfileReport::build(&t, &ProfileConfig::default());
        let approx = ProfileReport::build(&t, &approx_config());
        for (e, a) in exact.columns.iter().zip(&approx.columns) {
            assert_eq!(e.name, a.name);
            assert_eq!(e.null_count, a.null_count);
            assert!(a.approx.is_some(), "approx metadata missing on {}", a.name);
            // Small columns sit in HLL's linear-counting regime: near-exact.
            let rel = (a.distinct as f64 - e.distinct as f64).abs() / e.distinct.max(1) as f64;
            assert!(
                rel <= 0.02,
                "{}: distinct {} vs {}",
                a.name,
                a.distinct,
                e.distinct
            );
        }
        // Exact numeric moments match to rounding.
        let en = exact.column("metric").unwrap().numeric.as_ref().unwrap();
        let an = approx.column("metric").unwrap().numeric.as_ref().unwrap();
        assert_eq!(en.count, an.count);
        assert!((en.mean - an.mean).abs() < 1e-9);
        assert!((en.std - an.std).abs() < 1e-9);
        assert_eq!((en.min, en.max), (an.min, an.max));
        assert_eq!((en.zeros, en.negatives), (an.zeros, an.negatives));
        // Top values agree exactly (distinct counts below capacity).
        let ec = &exact.column("cat").unwrap().categorical;
        let ac = &approx.column("cat").unwrap().categorical;
        assert_eq!(ec.top, ac.top);
        assert_eq!(
            (ec.min_length, ec.max_length),
            (ac.min_length, ac.max_length)
        );
        // Exact mode carries no approx metadata.
        assert!(exact.columns.iter().all(|c| c.approx.is_none()));
    }

    #[test]
    fn approx_histogram_counts_sum_to_value_count() {
        let t = table();
        let approx = ProfileReport::build(&t, &approx_config());
        let col = approx.column("metric").unwrap();
        let h = col.histogram.as_ref().unwrap();
        let n = col.numeric.as_ref().unwrap().count;
        assert_eq!(h.total(), n);
        assert_eq!(h.n_bins(), 10);
        assert!(h.counts.iter().all(|&c| c <= n));
    }

    #[test]
    fn approx_is_deterministic_across_threads_and_cache() {
        let t = table();
        let config = approx_config();
        let baseline = ProfileReport::build(&t, &config);
        let cache = ProfileCache::new();
        for threads in [1usize, 2, 8] {
            for _ in 0..2 {
                let r = ProfileReport::build_with(
                    &t,
                    &config,
                    &BuildOptions {
                        threads,
                        cache: Some(&cache),
                    },
                );
                assert_eq!(
                    serde_json::to_string(&r).unwrap(),
                    serde_json::to_string(&baseline).unwrap(),
                    "threads={threads}"
                );
            }
        }
        // Cold builds sketch each column once; warm builds hit at the
        // column level before ever reaching the chunk sketches.
        let stats = cache.stats();
        assert_eq!(stats.sketch_misses, 3);
        assert!(stats.column_hits > 0);
    }

    #[test]
    fn editing_one_chunk_resketches_only_that_chunk() {
        let n = 240;
        let t = Table::new(
            "chunks",
            vec![Column::from_i64("v", (0..n).map(Some)).rechunk(60)],
        )
        .unwrap();
        assert_eq!(t.columns()[0].chunks().len(), 4);
        let cache = ProfileCache::new();
        let config = approx_config();
        let opts = BuildOptions {
            threads: 1,
            cache: Some(&cache),
        };
        ProfileReport::build_with(&t, &config, &opts);
        let cold = cache.stats();
        assert_eq!(cold.sketch_misses, 4);

        let mut edited = t.clone();
        edited
            .set(datalens_table::CellRef { row: 130, col: 0 }, Value::Int(-1))
            .unwrap();
        ProfileReport::build_with(&edited, &config, &opts);
        let warm = cache.stats();
        assert_eq!(
            warm.sketch_misses - cold.sketch_misses,
            1,
            "one chunk re-sketched"
        );
        assert_eq!(
            warm.sketch_hits - cold.sketch_hits,
            3,
            "three chunks reused"
        );
    }

    #[test]
    fn all_null_and_constant_columns_profile_cleanly() {
        let t = Table::new(
            "degenerate",
            vec![
                Column::from_f64("nulls", (0..50).map(|_| None)),
                Column::from_i64("constant", (0..50).map(|_| Some(7))),
            ],
        )
        .unwrap();
        let r = ProfileReport::build(&t, &approx_config());
        let nulls = r.column("nulls").unwrap();
        assert_eq!(nulls.null_count, 50);
        assert_eq!(nulls.distinct, 0);
        assert!(nulls.numeric.is_none());
        assert!(nulls.histogram.is_none());
        let constant = r.column("constant").unwrap();
        assert_eq!(constant.distinct, 1);
        let cn = constant.numeric.as_ref().unwrap();
        assert_eq!((cn.min, cn.max, cn.median), (7.0, 7.0, 7.0));
        assert_eq!(cn.std, 0.0);
        let h = constant.histogram.as_ref().unwrap();
        assert_eq!(h.counts, vec![50]);
    }
}
